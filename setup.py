"""Shim for environments without the ``wheel`` package (offline installs).

Core metadata stays minimal here; this file enables
``pip install -e . --no-use-pep517`` / ``python setup.py develop`` and
declares the optional extras:

* ``fast`` — NumPy, unlocking the trial-stacked vectorized kernel
  (``kernel="vectorized"``, plus automatic cell stacking in batch
  sweeps).  Everything else runs on the pure-Python engines, so the
  core install has zero third-party runtime dependencies.
* ``lint`` — mypy, for the static-typing leg of the CI lint gate
  (``repro lint`` itself is dependency-free; see LINTING.md).
"""

from setuptools import setup

setup(
    extras_require={
        "fast": ["numpy>=1.22"],
        "lint": ["mypy>=1.0"],
    },
)
