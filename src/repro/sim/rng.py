"""Deterministic randomness derivation.

Every random stream in a run is derived from the run seed and a scope
tuple (e.g. ``("ball", pid)`` or ``("adversary",)``) through SHA-256, so:

* runs are bit-reproducible across platforms and Python versions,
* processes cannot accidentally share a stream, and
* the adversary's randomness is independent of the processes'.
"""

from __future__ import annotations

import hashlib
import random
from typing import Hashable


def derive_seed(seed: int, *scope: Hashable) -> int:
    """Derive a child seed from ``seed`` and a scope path, stably."""
    material = repr((int(seed),) + tuple(repr(part) for part in scope))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, *scope: Hashable) -> random.Random:
    """A fresh :class:`random.Random` seeded from ``seed`` and ``scope``."""
    return random.Random(derive_seed(seed, *scope))
