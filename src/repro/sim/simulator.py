"""The lock-step round engine.

One :meth:`Simulation.step` executes a full round of the Section 3 model:

1. every *running* process (alive, not halted) composes its broadcast;
2. the adversary inspects the round (including the outbox) and returns a
   crash plan, which the engine validates and clamps against the budget;
3. inboxes are built: a healthy sender reaches every alive process, a
   crashing sender reaches only the receivers the adversary chose (crash
   while broadcasting); senders always know their own message;
4. every surviving, non-halted process consumes its inbox.

Halted processes stay silent but remain "alive" — distinguishing a
terminated peer from a crashed one is the algorithm's problem, exactly as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan, clamp_plan
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import ProcessId, require_distinct
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.process import SyncProcess
from repro.sim.trace import Trace

#: Observers run after every round with (simulation, round_no).
Observer = Callable[["Simulation", int], None]


@dataclass
class SimulationResult:
    """Outcome of a completed run."""

    rounds: int
    decisions: Dict[ProcessId, Any]
    crashed: FrozenSet[ProcessId]
    halted: FrozenSet[ProcessId]
    metrics: SimulationMetrics
    trace: Optional[Trace] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    #: All participating pids.  The simulator always fills this in; when a
    #: hand-built result leaves it None, the decision keys stand in — but
    #: then a process that crashed before deciding and was dropped from
    #: ``decisions`` would silently vanish from the correct set.
    participants: Optional[FrozenSet[ProcessId]] = None

    @property
    def correct(self) -> FrozenSet[ProcessId]:
        """Processes that never crashed, over *all* participants."""
        pids = self.participants if self.participants is not None else self.decisions
        return frozenset(pid for pid in pids if pid not in self.crashed)


class Simulation:
    """Drives a set of :class:`SyncProcess` against an adversary."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        *,
        adversary: Optional[Adversary] = None,
        crash_budget: Optional[int] = None,
        max_rounds: int = 10_000,
        trace: Optional[Trace] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        require_distinct([p.pid for p in processes])
        if not processes:
            raise ConfigurationError("a simulation needs at least one process")
        n = len(processes)
        if crash_budget is None:
            crash_budget = n - 1  # the paper's t < n default
        if not 0 <= crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; got t={crash_budget}, n={n}"
            )
        self._procs: Dict[ProcessId, SyncProcess] = {p.pid: p for p in processes}
        self._adversary = adversary
        self._budget = crash_budget
        self._max_rounds = max_rounds
        self._trace = trace
        self._observers = list(observers)
        self._crashed: Set[ProcessId] = set()
        self._round = 0
        self._metrics = SimulationMetrics()

    # ------------------------------------------------------------- inspection
    @property
    def round_no(self) -> int:
        """Rounds executed so far."""
        return self._round

    @property
    def processes(self) -> Mapping[ProcessId, SyncProcess]:
        """All processes by pid (read-only use)."""
        return self._procs

    @property
    def crashed(self) -> FrozenSet[ProcessId]:
        """Pids crashed so far."""
        return frozenset(self._crashed)

    @property
    def metrics(self) -> SimulationMetrics:
        """Per-round counters collected so far."""
        return self._metrics

    def alive(self) -> List[ProcessId]:
        """Pids that have not crashed (halted processes included)."""
        return [pid for pid in self._procs if pid not in self._crashed]

    def running(self) -> List[ProcessId]:
        """Pids that are alive and have not halted."""
        return [
            pid
            for pid, proc in self._procs.items()
            if pid not in self._crashed and not proc.halted
        ]

    # ---------------------------------------------------------------- driving
    def step(self) -> bool:
        """Execute one round.  Returns True while any process keeps running."""
        running = self.running()
        if not running:
            return False
        self._round += 1
        round_no = self._round

        outbox: Dict[ProcessId, Any] = {}
        for pid in running:
            payload = self._procs[pid].compose(round_no)
            if payload is not None:
                outbox[pid] = payload

        plan = self._plan_crashes(round_no, running, outbox)
        for victim in plan:
            self._crashed.add(victim)
            if self._trace is not None:
                self._trace.record(
                    round_no, "crash", pid=victim, receivers=sorted(plan[victim], key=repr)
                )

        alive_now = [pid for pid in self._procs if pid not in self._crashed]
        receivers = [pid for pid in alive_now if not self._procs[pid].halted]

        # Receivers with the same delivery signature (the set of crashing
        # senders whose broadcast still reaches them) share one inbox dict.
        # This keeps delivery O(n + crashes * n) per round instead of
        # O(n^2), and lets the shared-view store key its memo on inbox
        # object identity.  Inboxes are shared: processes must treat them
        # as read-only, which SyncProcess implementations do.
        base_inbox: Dict[ProcessId, Any] = {
            sender: payload for sender, payload in outbox.items() if sender not in plan
        }
        inbox_by_signature: Dict[FrozenSet[ProcessId], Dict[ProcessId, Any]] = {}
        delivered = 0
        deliveries: List[Any] = []  # (receiver, inbox) pairs
        for receiver in receivers:
            signature = frozenset(
                victim
                for victim, kept in plan.items()
                if receiver in kept and victim in outbox
            )
            inbox = inbox_by_signature.get(signature)
            if inbox is None:
                if signature:
                    inbox = dict(base_inbox)
                    for victim in signature:
                        inbox[victim] = outbox[victim]
                else:
                    inbox = base_inbox
                inbox_by_signature[signature] = inbox
            deliveries.append((receiver, inbox))
            delivered += len(inbox)

        for receiver, inbox in deliveries:
            proc = self._procs[receiver]
            proc.deliver(round_no, inbox)
            if self._trace is not None and proc.halted:
                self._trace.record(round_no, "halt", pid=receiver, decision=proc.decision)

        # Deliveries are done, so the running set is stable for the rest
        # of the round: compute it once for metrics, trace, and the
        # return value.
        running_after = len(self.running())
        self._metrics.record(
            RoundMetrics(
                round_no=round_no,
                messages_sent=len(outbox),
                messages_delivered=delivered,
                crashes=len(plan),
                alive_after=len(alive_now),
                running_after=running_after,
            )
        )
        if self._trace is not None:
            self._trace.record(
                round_no,
                "round",
                sent=len(outbox),
                crashes=len(plan),
                running=running_after,
            )
        for observer in self._observers:
            observer(self, round_no)
        return bool(running_after)

    def run(self) -> SimulationResult:
        """Run rounds until everyone halts or crashes; raise past the limit."""
        while True:
            if self._round >= self._max_rounds:
                raise RoundLimitExceeded(self._max_rounds, len(self.running()))
            if not self.step():
                break
        decisions = {pid: proc.decision for pid, proc in self._procs.items()}
        halted = frozenset(pid for pid, proc in self._procs.items() if proc.halted)
        return SimulationResult(
            rounds=self._round,
            decisions=decisions,
            crashed=self.crashed,
            halted=halted,
            metrics=self._metrics,
            trace=self._trace,
            participants=frozenset(self._procs),
        )

    # ---------------------------------------------------------------- private
    def _plan_crashes(
        self,
        round_no: int,
        running: Sequence[ProcessId],
        outbox: Mapping[ProcessId, Any],
    ) -> CrashPlan:
        if self._adversary is None:
            return {}
        remaining = self._budget - len(self._crashed)
        if remaining <= 0:
            return {}
        ctx = AdversaryContext(
            round_no=round_no,
            running=tuple(running),
            alive=tuple(self.alive()),
            outbox=dict(outbox),
            crashed_so_far=frozenset(self._crashed),
            budget_remaining=remaining,
            processes=self._procs,
        )
        plan = self._adversary.plan(ctx) or {}
        return clamp_plan(plan, alive=self.alive(), budget_remaining=remaining)
