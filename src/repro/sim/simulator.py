"""The lock-step round engine.

One :meth:`Simulation.step` executes a full round of the Section 3 model:

1. every *running* process (alive, not halted) composes its broadcast;
2. the adversary inspects the round (including the outbox) and returns a
   fault plan, which the engine validates and clamps against the crash
   budget and the per-family fault budgets;
3. inboxes are built: a healthy sender reaches every alive process, a
   crashing sender reaches only the receivers the adversary chose (crash
   while broadcasting), an omitted link drops, a delayed link arrives up
   to Δ rounds late, a corrupted sender's payload is rewritten for every
   receiver but itself; senders always know their own message;
4. every surviving, non-halted process consumes its inbox.

Halted processes stay silent but remain "alive" — distinguishing a
terminated peer from a crashed one is the algorithm's problem, exactly as
in the paper.  Crash-only rounds take the original delivery path
unchanged; the generalized path only runs when a round actually carries
omission/delay/corruption faults or late arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from repro.adversary.base import (
    Adversary,
    AdversaryContext,
    FaultBudget,
    FaultPlan,
    clamp_fault_plan,
)
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import ProcessId, require_distinct
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.process import SyncProcess
from repro.sim.trace import Trace

#: Observers run after every round with (simulation, round_no).
Observer = Callable[["Simulation", int], None]


@dataclass
class SimulationResult:
    """Outcome of a completed run."""

    rounds: int
    decisions: Dict[ProcessId, Any]
    crashed: FrozenSet[ProcessId]
    halted: FrozenSet[ProcessId]
    metrics: SimulationMetrics
    trace: Optional[Trace] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    #: All participating pids.  The simulator always fills this in; when a
    #: hand-built result leaves it None, the decision keys stand in — but
    #: then a process that crashed before deciding and was dropped from
    #: ``decisions`` would silently vanish from the correct set.
    participants: Optional[FrozenSet[ProcessId]] = None

    @property
    def correct(self) -> FrozenSet[ProcessId]:
        """Processes that never crashed, over *all* participants."""
        pids = self.participants if self.participants is not None else self.decisions
        return frozenset(pid for pid in pids if pid not in self.crashed)


class Simulation:
    """Drives a set of :class:`SyncProcess` against an adversary."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        *,
        adversary: Optional[Adversary] = None,
        crash_budget: Optional[int] = None,
        max_rounds: int = 10_000,
        trace: Optional[Trace] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        require_distinct([p.pid for p in processes])
        if not processes:
            raise ConfigurationError("a simulation needs at least one process")
        n = len(processes)
        if crash_budget is None:
            crash_budget = n - 1  # the paper's t < n default
        if not 0 <= crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; got t={crash_budget}, n={n}"
            )
        self._procs: Dict[ProcessId, SyncProcess] = {p.pid: p for p in processes}
        self._adversary = adversary
        self._budget = crash_budget
        self._max_rounds = max_rounds
        self._trace = trace
        self._observers = list(observers)
        self._crashed: Set[ProcessId] = set()
        self._round = 0
        self._metrics = SimulationMetrics()
        # Fault-plan state beyond crashes: the adversary's declared
        # per-family budget, run totals for clamping, the first round
        # each sender was silenced by omission (monitor annotation), and
        # the pending-delivery buffer of delayed messages, keyed by
        # arrival round -> receiver -> [(sender, payload), ...].
        self._fault_budget: FaultBudget = (
            adversary.fault_budget() if adversary is not None else FaultBudget()
        )
        self._omissions_used = 0
        self._corrupted: Set[ProcessId] = set()
        self._silenced_round: Dict[ProcessId, int] = {}
        self._pending: Dict[int, Dict[ProcessId, List[Any]]] = {}

    # ------------------------------------------------------------- inspection
    @property
    def round_no(self) -> int:
        """Rounds executed so far."""
        return self._round

    @property
    def processes(self) -> Mapping[ProcessId, SyncProcess]:
        """All processes by pid (read-only use)."""
        return self._procs

    @property
    def crashed(self) -> FrozenSet[ProcessId]:
        """Pids crashed so far."""
        return frozenset(self._crashed)

    @property
    def metrics(self) -> SimulationMetrics:
        """Per-round counters collected so far."""
        return self._metrics

    @property
    def silenced_rounds(self) -> Dict[ProcessId, int]:
        """First round each sender was silenced by omission (not crashed)."""
        return dict(self._silenced_round)

    @property
    def corrupted(self) -> FrozenSet[ProcessId]:
        """Senders whose payloads the adversary has corrupted so far."""
        return frozenset(self._corrupted)

    def alive(self) -> List[ProcessId]:
        """Pids that have not crashed (halted processes included)."""
        return [pid for pid in self._procs if pid not in self._crashed]

    def running(self) -> List[ProcessId]:
        """Pids that are alive and have not halted."""
        return [
            pid
            for pid, proc in self._procs.items()
            if pid not in self._crashed and not proc.halted
        ]

    # ---------------------------------------------------------------- driving
    def step(self) -> bool:
        """Execute one round.  Returns True while any process keeps running."""
        running = self.running()
        if not running:
            return False
        self._round += 1
        round_no = self._round

        outbox: Dict[ProcessId, Any] = {}
        for pid in running:
            payload = self._procs[pid].compose(round_no)
            if payload is not None:
                outbox[pid] = payload

        fault = self._plan_faults(round_no, running, outbox)
        plan = fault.crashes
        for victim in plan:
            self._crashed.add(victim)
            if self._trace is not None:
                self._trace.record(
                    round_no, "crash", pid=victim, receivers=sorted(plan[victim], key=repr)
                )

        alive_now = [pid for pid in self._procs if pid not in self._crashed]
        receivers = [pid for pid in alive_now if not self._procs[pid].halted]
        pending_now = self._pending.pop(round_no, None)

        omitted = delayed = corrupted = 0
        if fault.crash_only and not pending_now:
            # Crash-only rounds keep the original delivery path verbatim.
            # Receivers with the same delivery signature (the set of
            # crashing senders whose broadcast still reaches them) share
            # one inbox dict.  This keeps delivery O(n + crashes * n) per
            # round instead of O(n^2), and lets the shared-view store key
            # its memo on inbox object identity.  Inboxes are shared:
            # processes must treat them as read-only, which SyncProcess
            # implementations do.
            base_inbox: Dict[ProcessId, Any] = {
                sender: payload for sender, payload in outbox.items() if sender not in plan
            }
            inbox_by_signature: Dict[FrozenSet[ProcessId], Dict[ProcessId, Any]] = {}
            delivered = 0
            deliveries: List[Any] = []  # (receiver, inbox) pairs
            for receiver in receivers:
                signature = frozenset(
                    victim
                    for victim, kept in plan.items()
                    if receiver in kept and victim in outbox
                )
                inbox = inbox_by_signature.get(signature)
                if inbox is None:
                    if signature:
                        inbox = dict(base_inbox)
                        for victim in signature:
                            inbox[victim] = outbox[victim]
                    else:
                        inbox = base_inbox
                    inbox_by_signature[signature] = inbox
                deliveries.append((receiver, inbox))
                delivered += len(inbox)
        else:
            deliveries, delivered, omitted, delayed, corrupted = self._deliver_faulty(
                round_no, outbox, receivers, fault, pending_now
            )

        for receiver, inbox in deliveries:
            proc = self._procs[receiver]
            proc.deliver(round_no, inbox)
            if self._trace is not None and proc.halted:
                self._trace.record(round_no, "halt", pid=receiver, decision=proc.decision)

        # Deliveries are done, so the running set is stable for the rest
        # of the round: compute it once for metrics, trace, and the
        # return value.
        running_after = len(self.running())
        self._metrics.record(
            RoundMetrics(
                round_no=round_no,
                messages_sent=len(outbox),
                messages_delivered=delivered,
                crashes=len(plan),
                alive_after=len(alive_now),
                running_after=running_after,
                omissions=omitted,
                delayed=delayed,
                corruptions=corrupted,
            )
        )
        if self._trace is not None:
            self._trace.record(
                round_no,
                "round",
                sent=len(outbox),
                crashes=len(plan),
                running=running_after,
            )
        for observer in self._observers:
            observer(self, round_no)
        return bool(running_after)

    def run(self) -> SimulationResult:
        """Run rounds until everyone halts or crashes; raise past the limit."""
        while True:
            if self._round >= self._max_rounds:
                raise RoundLimitExceeded(self._max_rounds, len(self.running()))
            if not self.step():
                break
        decisions = {pid: proc.decision for pid, proc in self._procs.items()}
        halted = frozenset(pid for pid, proc in self._procs.items() if proc.halted)
        return SimulationResult(
            rounds=self._round,
            decisions=decisions,
            crashed=self.crashed,
            halted=halted,
            metrics=self._metrics,
            trace=self._trace,
            participants=frozenset(self._procs),
        )

    # ---------------------------------------------------------------- private
    def _plan_faults(
        self,
        round_no: int,
        running: Sequence[ProcessId],
        outbox: Mapping[ProcessId, Any],
    ) -> FaultPlan:
        if self._adversary is None:
            return FaultPlan()
        remaining = self._budget - len(self._crashed)
        if remaining <= 0 and tuple(self._adversary.fault_families()) == ("crash",):
            # Crash-only adversaries are never consulted past the budget
            # (preserving the original engine's RNG consumption exactly);
            # fault adversaries still plan their other families.
            return FaultPlan()
        budget = self._fault_budget
        ctx = AdversaryContext(
            round_no=round_no,
            running=tuple(running),
            alive=tuple(self.alive()),
            outbox=dict(outbox),
            crashed_so_far=frozenset(self._crashed),
            budget_remaining=max(0, remaining),
            processes=self._procs,
            omission_budget_remaining=(
                None
                if budget.omissions is None
                else max(0, budget.omissions - self._omissions_used)
            ),
            delay_bound=budget.delay_bound,
            corrupted_so_far=frozenset(self._corrupted),
        )
        plan = self._adversary.plan_faults(ctx) or FaultPlan()
        clamped = clamp_fault_plan(
            plan,
            alive=self.alive(),
            budget_remaining=max(0, remaining),
            budget=budget,
            omissions_used=self._omissions_used,
            corrupted_so_far=frozenset(self._corrupted),
        )
        self._omissions_used += sum(len(d) for d in clamped.omissions.values())
        self._corrupted.update(clamped.corruptions)
        return clamped

    def _deliver_faulty(
        self,
        round_no: int,
        outbox: Mapping[ProcessId, Any],
        receivers: Sequence[ProcessId],
        fault: FaultPlan,
        pending_now: Optional[Dict[ProcessId, List[Any]]],
    ) -> Any:
        """Build inboxes for a round with non-crash faults or late arrivals.

        Semantics, per (sender, receiver) link:

        * a crash victim reaches only the receivers its plan kept;
        * an omitted link delivers nothing — the receiver sees silence,
          exactly as for a crash, but the sender stays alive (and always
          hears itself: self-links are never maskable);
        * a delayed link delivers nothing now; the payload (corrupted
          form included) arrives ``d`` rounds later, unless a fresher
          same-sender message lands in the arrival round's inbox first;
        * a corrupted sender's payload is rewritten for every receiver
          except the sender itself, which keeps the original.

        Inboxes are still shared by delivery signature; only corrupt
        senders' own inboxes and late-arrival receivers get private
        copies.
        """
        plan = fault.crashes
        omissions = fault.omissions
        delays = fault.delays
        corruptions = fault.corruptions
        receiver_set = set(receivers)

        corrupted = 0
        for sender in corruptions:
            if sender in outbox:
                corrupted += 1
                if self._trace is not None:
                    self._trace.record(round_no, "corrupt", pid=sender)

        omitted = 0
        for sender in sorted(omissions, key=repr):
            if sender not in outbox:
                continue
            drops = len(omissions[sender] & receiver_set)
            if drops:
                omitted += drops
                self._silenced_round.setdefault(sender, round_no)
                if self._trace is not None:
                    self._trace.record(
                        round_no,
                        "omit",
                        pid=sender,
                        dropped=sorted(omissions[sender] & receiver_set, key=repr),
                    )

        delayed = 0
        for link in sorted(delays, key=repr):
            sender, target = link
            if sender not in outbox or target not in receiver_set:
                continue
            payload = corruptions[sender] if sender in corruptions else outbox[sender]
            self._pending.setdefault(round_no + delays[link], {}).setdefault(
                target, []
            ).append((sender, payload))
            delayed += 1
            if self._trace is not None:
                self._trace.record(
                    round_no,
                    "delay",
                    pid=sender,
                    receiver=target,
                    until=round_no + delays[link],
                )

        special = set()
        for sender in plan:
            if sender in outbox:
                special.add(sender)
        for sender in omissions:
            if sender in outbox:
                special.add(sender)
        for sender, _target in delays:
            if sender in outbox:
                special.add(sender)

        base_inbox: Dict[ProcessId, Any] = {}
        for sender, payload in outbox.items():
            if sender in special:
                continue
            base_inbox[sender] = (
                corruptions[sender] if sender in corruptions else payload
            )

        def reaches(sender: ProcessId, receiver: ProcessId) -> bool:
            if sender in plan and receiver not in plan[sender]:
                return False
            if receiver in omissions.get(sender, ()):
                return False
            if (sender, receiver) in delays:
                return False
            return True

        inbox_by_signature: Dict[FrozenSet[ProcessId], Dict[ProcessId, Any]] = {}
        deliveries: List[Any] = []
        delivered = 0
        for receiver in receivers:
            signature = frozenset(s for s in special if reaches(s, receiver))
            inbox = inbox_by_signature.get(signature)
            if inbox is None:
                if signature:
                    inbox = dict(base_inbox)
                    for sender in signature:
                        inbox[sender] = (
                            corruptions[sender]
                            if sender in corruptions
                            else outbox[sender]
                        )
                else:
                    inbox = base_inbox
                inbox_by_signature[signature] = inbox
            private: Optional[Dict[ProcessId, Any]] = None
            if receiver in corruptions and receiver in outbox:
                # The sender keeps its own original payload.
                private = dict(inbox)
                private[receiver] = outbox[receiver]
            if pending_now:
                for sender, payload in pending_now.get(receiver, ()):
                    current = private if private is not None else inbox
                    if sender in current:
                        continue  # a fresher same-round message wins
                    if private is None:
                        private = dict(inbox)
                    private[sender] = payload
            final = private if private is not None else inbox
            deliveries.append((receiver, final))
            delivered += len(final)
        return deliveries, delivered, omitted, delayed, corrupted
