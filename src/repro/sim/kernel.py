"""Pluggable simulation kernels.

A *kernel* is one way of executing a fully-described renaming run.  The
**reference** kernel is the executable specification: one
:class:`~repro.sim.process.SyncProcess` per participant driven by the
lock-step :class:`~repro.sim.simulator.Simulation` against the adversary.
The **columnar** kernel is an optimized implementation for the runs that
dominate large-``n`` sweeps — failure-free Balls-into-Leaves-family
executions — representing the whole population as flat arrays (see
:mod:`repro.core.columnar`).

The two are differentially checked to be bit-identical on every run the
fast path supports (``tests/sim/test_kernel_equivalence.py``), in the
spirit of spec-vs-implementation runtime checking: the reference engine
stays the ground truth, the columnar engine earns its speed by agreeing
with it.

The **vectorized** kernel (:mod:`repro.sim.vectorized`) is the
trial-stacked NumPy engine: it executes a whole cell of failure-free
trials as one array program and is what scenario-matrix sweeps dispatch
to cell-granularly.  As a per-run kernel it is a one-trial stack —
available so ``kernel="vectorized"`` composes with every entry point,
but ``auto`` keeps single runs on the columnar engine (stacking pays
off across trials, not within one).

Selection: callers say ``kernel="auto"`` (the default everywhere) to get
the columnar engine whenever it models the run and the reference engine
otherwise (batch sweeps additionally upgrade whole eligible cells to the
vectorized engine — bit-identical, so invisible); ``"reference"`` pins
the spec; ``"columnar"`` / ``"vectorized"`` pin a fast path and raise
:class:`~repro.errors.KernelUnsupported` with the rejection reason when
the run is out of scope (for the vectorized kernel that includes a
missing NumPy install — it is the ``pip install .[fast]`` extra).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError, KernelUnsupported
from repro.ids import ProcessId
from repro.sim.simulator import SimulationResult
from repro.sim.trace import Trace

#: Kernel names accepted by :func:`select_kernel`, the runner, the batch
#: engine, and the CLI.
KERNEL_CHOICES = ("auto", "reference", "columnar", "vectorized")


@dataclass(frozen=True)
class KernelRequest:
    """One fully-resolved execution, independent of how it is run.

    Built by :func:`repro.sim.runner.run_renaming` after defaulting: the
    crash budget and round limit are concrete numbers, and ``policy`` is
    the algorithm's Balls-into-Leaves path policy (``None`` for non-BiL
    algorithms such as ``flood``).
    """

    algorithm: str
    ids: Tuple[ProcessId, ...]
    seed: int
    policy: Optional[str]
    adversary: Optional[Adversary] = None
    crash_budget: int = 0
    max_rounds: int = 10_000
    view_mode: str = "shared"
    halt_on_name: bool = False
    check_invariants: bool = False
    collect_phase_stats: bool = False
    trace: Optional[Trace] = None
    #: Trace capture mode ("off"/"cheap"/"full").  ``cheap`` lets the
    #: fast kernels append per-round deltas into ``trace`` from their
    #: flat arrays; ``full`` means ``trace`` wants the reference
    #: engine's message-level instrumentation and pins the spec engine.
    trace_mode: str = "off"
    #: Runtime invariant monitoring mode ("off"/"cheap"/"full"); "cheap"
    #: runs the flat-array predicates of :mod:`repro.monitor.invariants`
    #: on any kernel, "full" pins the reference engine's instrumented
    #: movement audit on top of them.
    monitor: str = "off"

    @property
    def n(self) -> int:
        """Number of participants."""
        return len(self.ids)


@dataclass
class KernelRun:
    """What a kernel produces: the result plus runner-level extras."""

    result: SimulationResult
    last_round_named: Optional[int] = None
    phase_stats: List[Any] = field(default_factory=list)
    kernel: str = "reference"
    #: Structured :class:`repro.monitor.invariants.Violation` records
    #: collected by the run's monitors (empty when monitoring is off or
    #: every invariant held).
    violations: List[Any] = field(default_factory=list)


class SimulationKernel(ABC):
    """One execution strategy for a :class:`KernelRequest`."""

    name: str = "abstract"

    @abstractmethod
    def rejects(self, request: KernelRequest) -> Optional[str]:
        """Why this kernel cannot model ``request`` (None = it can)."""

    @abstractmethod
    def run(self, request: KernelRequest) -> KernelRun:
        """Execute the run.  Callers must have checked :meth:`rejects`."""


def _kernels():
    # Imported lazily: the concrete kernels pull in the process machinery
    # and the array engines, which themselves import from repro.sim.
    from repro.sim.columnar import ColumnarKernel
    from repro.sim.reference import ReferenceKernel
    from repro.sim.vectorized import VectorizedKernel

    return {
        "reference": ReferenceKernel(),
        "columnar": ColumnarKernel(),
        "vectorized": VectorizedKernel(),
    }


def select_kernel(name: str, request: KernelRequest) -> SimulationKernel:
    """Resolve a kernel name against one request.

    ``"auto"`` prefers the columnar fast path and falls back to the
    reference engine for runs it rejects; pinning ``"columnar"`` or
    ``"vectorized"`` turns the rejection into an explicit
    :class:`KernelUnsupported`.  (Cell-level ``auto`` upgrades to the
    vectorized engine happen in :mod:`repro.sim.batch`, which sees whole
    cells; a single request has no trials to stack.)
    """
    if name not in KERNEL_CHOICES:
        raise ConfigurationError(
            f"unknown kernel {name!r}; choose from {KERNEL_CHOICES}"
        )
    kernels = _kernels()
    if name == "reference":
        return kernels["reference"]
    if name == "vectorized":
        vectorized = kernels["vectorized"]
        reason = vectorized.rejects(request)
        if reason is not None:
            raise KernelUnsupported("vectorized", reason)
        return vectorized
    columnar = kernels["columnar"]
    reason = columnar.rejects(request)
    if reason is None:
        return columnar
    if name == "columnar":
        raise KernelUnsupported("columnar", reason)
    return kernels["reference"]
