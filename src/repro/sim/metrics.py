"""Round and run metrics collected by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class RoundMetrics:
    """What happened in one lock-step round."""

    round_no: int
    messages_sent: int = 0
    messages_delivered: int = 0
    crashes: int = 0
    alive_after: int = 0
    running_after: int = 0
    #: Fault-family counters (0 on crash-only rounds): sender->receiver
    #: links dropped by omission, links deferred by bounded delay, and
    #: senders whose payload the adversary rewrote this round.
    omissions: int = 0
    delayed: int = 0
    corruptions: int = 0


@dataclass
class SimulationMetrics:
    """Aggregated counters for a whole run."""

    rounds: List[RoundMetrics] = field(default_factory=list)

    def record(self, round_metrics: RoundMetrics) -> None:
        """Append one round's counters."""
        self.rounds.append(round_metrics)

    @property
    def total_rounds(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def total_messages_sent(self) -> int:
        """Broadcast count summed over senders (one broadcast = one send)."""
        return sum(r.messages_sent for r in self.rounds)

    @property
    def total_messages_delivered(self) -> int:
        """Point-to-point deliveries summed over the run."""
        return sum(r.messages_delivered for r in self.rounds)

    @property
    def total_crashes(self) -> int:
        """Processes crashed by the adversary over the run."""
        return sum(r.crashes for r in self.rounds)

    @property
    def total_omissions(self) -> int:
        """Links dropped by omission over the run."""
        return sum(r.omissions for r in self.rounds)

    @property
    def total_delayed(self) -> int:
        """Links deferred by bounded delay over the run."""
        return sum(r.delayed for r in self.rounds)

    @property
    def total_corruptions(self) -> int:
        """Per-round corrupted-sender events over the run."""
        return sum(r.corruptions for r in self.rounds)
