"""Synchronous message-passing substrate (the model of Section 3).

Computation proceeds in lock-step rounds.  Each round every running
process composes one broadcast, the adversary decides who crashes and
which receivers still get a crashing sender's message, messages are
delivered, and every surviving process takes a step.  Crashed processes
stop and never recover.

The engine is deterministic given a seed: process randomness comes from
:func:`repro.sim.rng.derive_rng`, so every experiment in this repository
is exactly reproducible.
"""

from repro.sim.process import SyncProcess
from repro.sim.simulator import Simulation, SimulationResult
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.kernel import (
    KERNEL_CHOICES,
    KernelRequest,
    KernelRun,
    SimulationKernel,
    select_kernel,
)
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.trace import Trace, TraceEvent
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.runner import RenamingRun, run_renaming, ALGORITHMS
from repro.sim.batch import (
    AdversarySpec,
    BatchResult,
    CellKey,
    CellStats,
    MultiprocessingExecutor,
    ScenarioMatrix,
    SerialExecutor,
    TrialResult,
    TrialSpec,
    plan_tasks,
    run_batch,
    run_cell,
    run_trial,
)
from repro.sim.vectorized import (
    StackedCellRun,
    run_stacked_cell,
    vectorized_available,
)

__all__ = [
    "SyncProcess",
    "Simulation",
    "SimulationResult",
    "derive_rng",
    "derive_seed",
    "KERNEL_CHOICES",
    "KernelRequest",
    "KernelRun",
    "SimulationKernel",
    "select_kernel",
    "RoundMetrics",
    "SimulationMetrics",
    "Trace",
    "TraceEvent",
    "RenamingSpec",
    "check_renaming",
    "RenamingRun",
    "run_renaming",
    "ALGORITHMS",
    "AdversarySpec",
    "BatchResult",
    "CellKey",
    "CellStats",
    "MultiprocessingExecutor",
    "ScenarioMatrix",
    "SerialExecutor",
    "TrialResult",
    "TrialSpec",
    "plan_tasks",
    "run_batch",
    "run_cell",
    "run_trial",
    "StackedCellRun",
    "run_stacked_cell",
    "vectorized_available",
]
