"""The reference kernel: the lock-step engine as executable specification.

This is the faithful Section 3 execution extracted from the original
``run_renaming`` body: build one process per participant, drive the
:class:`~repro.sim.simulator.Simulation` against the adversary, collect
observers.  It models *every* run — all algorithms, adversaries, traces,
phase statistics — and serves as the ground truth the columnar fast path
is differentially checked against.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import KernelRequest, KernelRun, SimulationKernel
from repro.sim.simulator import Simulation, SimulationResult


class ReferenceKernel(SimulationKernel):
    """One process object per participant, dict inboxes, full generality."""

    name = "reference"

    def rejects(self, request: KernelRequest) -> Optional[str]:
        return None  # the reference engine models everything

    def run(self, request: KernelRequest) -> KernelRun:
        observers = []
        stats_observer = None
        monitor = None
        if request.policy is not None:
            from repro.core.balls_into_leaves import build_balls_into_leaves
            from repro.core.config import BallsIntoLeavesConfig
            from repro.core.instrumentation import TreeStatsObserver

            config = BallsIntoLeavesConfig(
                path_policy=request.policy,
                view_mode=request.view_mode,
                # "full" monitoring is exactly the instrumented reference
                # movement audit, whatever the caller's check_invariants.
                check_invariants=(
                    request.check_invariants or request.monitor == "full"
                ),
                halt_on_name=request.halt_on_name,
            )
            processes, store = build_balls_into_leaves(
                request.ids, seed=request.seed, config=config
            )
            if request.collect_phase_stats:
                stats_observer = TreeStatsObserver(store)
                observers.append(stats_observer)
            if request.monitor != "off":
                from repro.monitor.invariants import (
                    ReferenceMonitorAdapter,
                    RunMonitor,
                )
                from repro.tree.topology import cached_topology

                monitor = RunMonitor(
                    sorted(request.ids),
                    cached_topology(request.n).arrays(),
                    halt_on_name=request.halt_on_name,
                )
                observers.append(ReferenceMonitorAdapter(monitor))
        else:
            processes = build_baseline_processes(request)

        simulation = Simulation(
            processes,
            adversary=request.adversary,
            crash_budget=request.crash_budget,
            max_rounds=request.max_rounds,
            trace=request.trace,
            observers=observers,
        )
        result = simulation.run()
        return KernelRun(
            result=result,
            last_round_named=_last_round_named(simulation, result),
            phase_stats=list(stats_observer.phases) if stats_observer else [],
            kernel=self.name,
            violations=[] if monitor is None else monitor.violations,
        )


def _build_flood(request: KernelRequest):
    from repro.baselines.flood_consensus import build_flood_renaming

    return build_flood_renaming(request.ids, crash_budget=request.crash_budget)


def _build_approx_agreement(request: KernelRequest):
    from repro.baselines.approximate_agreement import (
        build_seeded_approx_agreement,
    )

    return build_seeded_approx_agreement(
        request.ids, seed=request.seed, crash_budget=request.crash_budget
    )


def _build_parallel_retry(request: KernelRequest):
    from repro.loadbalance.processes import build_parallel_retry

    return build_parallel_retry(request.ids, seed=request.seed)


#: Baseline (non-Balls-into-Leaves) workloads the reference kernel can
#: execute, keyed by algorithm name.  Builders are lazy so the kernel
#: module stays import-light.
BASELINE_BUILDERS = {
    "flood": _build_flood,
    "approx-agreement": _build_approx_agreement,
    "parallel-retry": _build_parallel_retry,
}


def build_baseline_processes(request: KernelRequest):
    """Instantiate the process list of a policy-free workload."""
    try:
        builder = BASELINE_BUILDERS[request.algorithm]
    except KeyError:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"no baseline process builder for algorithm "
            f"{request.algorithm!r}; known: {sorted(BASELINE_BUILDERS)}"
        ) from None
    return builder(request)


def _last_round_named(simulation: Simulation, result: SimulationResult) -> Optional[int]:
    """Latest round at which a correct ball fixed its name (BiL only)."""
    last: Optional[int] = None
    for pid, proc in simulation.processes.items():
        if pid in result.crashed:
            continue
        named = getattr(proc, "round_named", None)
        if named is not None and (last is None or named > last):
            last = named
    return last
