"""Renaming specification checker (Section 3).

Validates a :class:`~repro.sim.simulator.SimulationResult` against the
three conditions of the renaming problem:

* **Termination** — every correct (never-crashed) process decided.
* **Validity** — every decision is a name in ``0..m-1`` (0-based here).
* **Uniqueness** — no two correct processes share a name.

Crashed processes may have decided before crashing; their names are
reported but not constrained (the paper's conditions quantify over correct
processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SpecViolation
from repro.ids import Name, ProcessId
from repro.sim.simulator import SimulationResult


@dataclass(frozen=True)
class RenamingSpec:
    """The instance parameters: ``n`` participants, ``m`` target names."""

    n: int
    namespace_size: Optional[int] = None

    @property
    def m(self) -> int:
        """Target namespace size (``n`` for tight renaming)."""
        return self.namespace_size if self.namespace_size is not None else self.n

    @property
    def tight(self) -> bool:
        """True when ``m == n`` (tight/strong/perfect renaming)."""
        return self.m == self.n


def check_renaming(result: SimulationResult, spec: RenamingSpec) -> Dict[ProcessId, Name]:
    """Raise :class:`SpecViolation` on any violated condition.

    Returns the mapping of correct processes to their decided names.
    """
    problems: List[str] = []
    correct = result.correct

    decided: Dict[ProcessId, Name] = {}
    for pid in correct:
        name = result.decisions.get(pid)
        if name is None:
            problems.append(f"termination: correct process {pid!r} never decided")
            continue
        decided[pid] = name

    for pid, name in decided.items():
        if not isinstance(name, int) or not 0 <= name < spec.m:
            problems.append(
                f"validity: process {pid!r} decided {name!r}, outside 0..{spec.m - 1}"
            )

    owners: Dict[Name, ProcessId] = {}
    for pid in sorted(decided, key=repr):
        name = decided[pid]
        if name in owners:
            problems.append(
                f"uniqueness: processes {owners[name]!r} and {pid!r} both decided {name}"
            )
        else:
            owners[name] = pid

    for pid in correct:
        if result.decisions.get(pid) is not None and pid not in result.halted:
            problems.append(f"termination: correct process {pid!r} decided but never halted")

    if problems:
        raise SpecViolation("; ".join(problems))
    return decided
