"""Parallel trial engine: scenario matrices over algorithm x adversary x n x seed.

Every claim in the paper is a w.h.p. statement over many independent
executions, so every experiment is, at heart, a seed sweep.  This module
makes those sweeps first-class:

* :class:`TrialSpec` — one fully-described execution (algorithm, size,
  seed, adversary), picklable so it can cross process boundaries;
* :class:`ScenarioMatrix` — expands an algorithm x size x adversary x
  seed grid into trial specs with deterministic per-trial seeds;
* :class:`SerialExecutor` / :class:`MultiprocessingExecutor` — pluggable
  backends that map :func:`run_trial` over the specs, chunked, preserving
  input order so results are independent of the backend;
* :class:`BatchResult` — the aggregated outcome, grouped into per-cell
  round/failure/message statistics ready for :mod:`repro.analysis.tables`.

Determinism is the design invariant: a matrix expands to the same specs
on every platform, each trial's randomness is derived only from its spec
(via :func:`repro.sim.rng.derive_seed` in ``"derived"`` seed mode, or the
historical ``base_seed * 100_003 + trial`` schedule in ``"legacy"`` mode),
and executors preserve order — so serial and multiprocessing backends
produce identical :class:`BatchResult` cells, byte for byte.

Execution is *cell-granular* where it pays: consecutive trials of one
failure-free cell are stacked into a single
:func:`repro.sim.vectorized.run_stacked_cell` pass (NumPy installed,
``kernel`` in ``{"auto", "vectorized"}``), so a sweep dispatches whole
cells — chunked across workers — instead of pickling every
:class:`TrialSpec` individually.  The stacked engine is bit-identical to
the per-trial kernels, so the upgrade changes wall-clock only; cells the
vectorized engine rejects (crashes, non-BiL algorithms, missing NumPy)
keep the per-trial path and its ``auto`` kernel selection.
"""

from __future__ import annotations

import ast
import hashlib
import multiprocessing
import operator
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import config as repro_config
from repro.adversary.base import Adversary
from repro.adversary.corruption import CorruptingAdversary
from repro.adversary.delay import BoundedDelayAdversary
from repro.adversary.omission import (
    IIDOmissionAdversary,
    TargetedOmissionAdversary,
)
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.analysis.stats import TrialStats, summarize
from repro.analysis.tables import Table
from repro.errors import (
    ConfigurationError,
    RoundLimitExceeded,
    SimulationError,
    SpecViolation,
)
from repro.ids import Name, ProcessId, sparse_ids
from repro.sim.rng import derive_seed
from repro.sim.runner import ALGORITHMS, default_round_limit, run_renaming
from repro.sim.trace import Trace, check_trace_mode

# --------------------------------------------------------------- seed schedules

#: Seed-derivation modes for a matrix: "legacy" reproduces the historical
#: per-experiment schedule (byte-identical tables with the old serial
#: loops); "derived" hashes the whole cell coordinate through SHA-256 so
#: every cell gets an independent stream.
SEED_MODES = ("legacy", "derived")


def legacy_trial_seeds(base_seed: int, trials: int) -> List[int]:
    """The historical seed schedule shared by every experiment sweep."""
    return [base_seed * 100_003 + trial for trial in range(trials)]


def derived_trial_seed(
    base_seed: int, algorithm: str, n: int, adversary_key: str, trial: int
) -> int:
    """An independent per-cell, per-trial seed (SHA-256 derivation)."""
    return derive_seed(base_seed, "trial", algorithm, n, adversary_key, trial)


# ----------------------------------------------------------- adversary registry

#: Adversary builders by name: ``builder(seed, **params) -> Optional[Adversary]``.
#: Builders are module-level so specs naming them stay picklable.
AdversaryBuilder = Callable[..., Optional[Adversary]]


def _build_none(seed: int) -> Optional[Adversary]:
    return None


def _build_random(
    seed: int,
    rate: float = 0.05,
    delivery: str = "split",
    max_crashes: Optional[int] = None,
) -> Adversary:
    return RandomCrashAdversary(rate, delivery=delivery, max_crashes=max_crashes, seed=seed)


def _build_targeted(
    seed: int, max_crashes: Optional[int] = None, every_k_phases: int = 1
) -> Adversary:
    return TargetedPriorityAdversary(
        max_crashes=max_crashes, every_k_phases=every_k_phases, seed=seed
    )


def _build_sandwich(
    seed: int, max_crashes: Optional[int] = None, every_k_rounds: int = 2
) -> Adversary:
    return SandwichAdversary(max_crashes=max_crashes, every_k_rounds=every_k_rounds, seed=seed)


def _build_half_split(
    seed: int,
    victims_per_round: int = 1,
    max_crashes: Optional[int] = None,
    last_round: Optional[int] = None,
) -> Adversary:
    """Round-1 strike by default; ``last_round`` strikes every odd round up to it."""
    rounds = None
    if last_round is not None:
        rounds = frozenset({1} | set(range(3, last_round, 2)))
    return HalfSplitAdversary(
        rounds=rounds,
        victims_per_round=victims_per_round,
        max_crashes=max_crashes,
        seed=seed,
    )


def _build_schedule(seed: int, n: int = 0, events: Tuple = ()) -> Adversary:
    """A searched fault schedule (:mod:`repro.search.schedule`), bound to
    the trial's ``sparse_ids(n)`` population — the builder lives here so
    worker processes resolve it when unpickling a spec."""
    from repro.search.schedule import Schedule

    return Schedule.from_params(n=n, events=events).compile(sparse_ids(n))


def _build_omission(
    seed: int,
    p: float = 0.1,
    max_omissions: Optional[int] = None,
    first: Optional[int] = None,
    last: Optional[int] = None,
) -> Adversary:
    """I.i.d. per-link message loss (``omission:p=0.1,first=2,last=12``)."""
    rounds = None
    if first is not None or last is not None:
        rounds = (1 if first is None else first, 10**9 if last is None else last)
    return IIDOmissionAdversary(
        p, max_omissions=max_omissions, rounds=rounds, seed=seed
    )


def _build_omission_targeted(
    seed: int, count: int = 1, first: Optional[int] = None, last: Optional[int] = None
) -> Adversary:
    """Sustained silencing of the lowest-labelled senders
    (``omission-targeted:count=2,first=2,last=9``)."""
    rounds = None
    if first is not None or last is not None:
        rounds = (1 if first is None else first, 10**9 if last is None else last)
    return TargetedOmissionAdversary(count=count, rounds=rounds, seed=seed)


def _build_delay(seed: int, d: int = 1, rate: float = 0.2) -> Adversary:
    """Bounded-delay partial synchrony (``delay:d=2,rate=0.3``)."""
    return BoundedDelayAdversary(d, rate=rate, seed=seed)


def _build_corrupt(
    seed: int, b: int = 1, mode: str = "stall", rate: float = 0.25
) -> Adversary:
    """Byzantine-lite value corruption (``corrupt:b=1,mode=replay``)."""
    return CorruptingAdversary(b, mode=mode, rate=rate, seed=seed)


ADVERSARY_BUILDERS: Dict[str, AdversaryBuilder] = {
    "none": _build_none,
    "random": _build_random,
    "targeted": _build_targeted,
    "sandwich": _build_sandwich,
    "half-split": _build_half_split,
    "schedule": _build_schedule,
    "omission": _build_omission,
    "omission-targeted": _build_omission_targeted,
    "delay": _build_delay,
    "corrupt": _build_corrupt,
}


@dataclass(frozen=True)
class AdversarySpec:
    """A named, parameterized adversary — hashable and picklable.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs can be
    dict keys and cross process boundaries; :meth:`build` instantiates a
    fresh adversary for one trial, seeded with that trial's seed.
    """

    name: str = "none"
    params: Tuple[Tuple[str, Any], ...] = ()
    label: Optional[str] = None

    @classmethod
    def of(cls, name: str, *, label: Optional[str] = None, **params: Any) -> "AdversarySpec":
        """Build a spec, validating the adversary name."""
        if name not in ADVERSARY_BUILDERS:
            raise ConfigurationError(
                f"unknown adversary {name!r}; choose from {sorted(ADVERSARY_BUILDERS)}"
            )
        return cls(name=name, params=tuple(sorted(params.items())), label=label)

    @classmethod
    def parse(cls, text: str) -> "AdversarySpec":
        """Parse the CLI grammar ``name[:key=value[,key=value...]]``.

        Values go through :func:`ast.literal_eval` when possible (so
        ``rate=0.2`` is a float) and stay strings otherwise.
        """
        name, _, raw_params = text.partition(":")
        params: Dict[str, Any] = {}
        if raw_params:
            for item in raw_params.split(","):
                key, sep, raw_value = item.partition("=")
                if not sep or not key:
                    raise ConfigurationError(
                        f"bad adversary parameter {item!r} in {text!r}; "
                        "expected name:key=value[,key=value...]"
                    )
                try:
                    value = ast.literal_eval(raw_value)
                except (SyntaxError, ValueError):
                    value = raw_value
                params[key.strip()] = value
        return cls.of(name.strip(), **params)

    @property
    def key(self) -> str:
        """The display / cell-grouping label."""
        if self.label is not None:
            return self.label
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}:{rendered}"

    def build(self, seed: int) -> Optional[Adversary]:
        """A fresh adversary instance for one trial."""
        builder = ADVERSARY_BUILDERS.get(self.name)
        if builder is None:
            raise ConfigurationError(
                f"unknown adversary {self.name!r}; choose from {sorted(ADVERSARY_BUILDERS)}"
            )
        try:
            return builder(seed, **dict(self.params))
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"bad parameters for adversary {self.name!r}: {error} "
                f"(accepted: {_builder_params(builder)})"
            ) from None


def _builder_params(builder: AdversaryBuilder) -> str:
    """The builder's accepted parameter names, for error messages."""
    import inspect

    names = [
        name
        for name in inspect.signature(builder).parameters
        if name != "seed"
    ]
    return ", ".join(names) if names else "none"


#: Anything coercible to an AdversarySpec in matrix/CLI construction.
AdversaryLike = Union[str, AdversarySpec]


def as_adversary_spec(value: AdversaryLike) -> AdversarySpec:
    """Coerce a string (CLI grammar) or spec to an :class:`AdversarySpec`."""
    if isinstance(value, AdversarySpec):
        return value
    return AdversarySpec.parse(value)


# -------------------------------------------------------------------- the trial


class CellKey(NamedTuple):
    """Coordinates of one matrix cell (seed dimension aggregated away)."""

    algorithm: str
    n: int
    adversary: str


@dataclass(frozen=True)
class TrialSpec:
    """One fully-described execution; picklable, hashable, deterministic."""

    algorithm: str
    n: int
    seed: int
    adversary: AdversarySpec = AdversarySpec()
    halt_on_name: bool = False
    crash_budget: Optional[int] = None
    check: bool = True
    #: Kernel selection: "auto" (stacked vectorized cells for eligible
    #: failure-free batches, columnar when it models the run, reference
    #: otherwise), or a pinned "reference" / "columnar" / "vectorized"
    #: (pinned fast paths raise KernelUnsupported on rejected cells).
    kernel: str = "auto"
    #: Counterexample-mining mode: capture simulation/spec failures as
    #: data (:attr:`TrialResult.error`) instead of letting one poisoned
    #: trial abort a whole batch.  A deadlocked run (the round limit) is
    #: exactly what an adversary search hopes to find.
    capture_errors: bool = False
    #: Runtime invariant monitoring ("off"/"cheap"/"full"); findings land
    #: in :attr:`TrialResult.violations` and the jsonl rows.
    monitor: str = "off"
    #: Event capture ("off"/"cheap"/"full"); a cheap trace rides the fast
    #: kernels, a full one pins the reference engine.  The recorded trace
    #: lands in :attr:`TrialResult.trace`.
    trace: str = "off"

    @property
    def cell(self) -> CellKey:
        """The matrix cell this trial belongs to."""
        return CellKey(self.algorithm, self.n, self.adversary.key)

    def digest(self) -> str:
        """Short content address of the *execution* this spec describes.

        Covers exactly the fields that determine the run's outcome
        (algorithm, n, seed, adversary, halt_on_name, crash_budget,
        kernel-visible knobs) — observation modes (``trace``,
        ``monitor``) and error handling (``check``, ``capture_errors``)
        are excluded, since the byte-identity guarantees pin that they
        never change results.  Trace and scenario files are
        content-addressed by this digest.
        """
        canonical = repr(
            (
                self.algorithm,
                self.n,
                self.seed,
                self.adversary.key,
                self.halt_on_name,
                self.crash_budget,
            )
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class TrialResult:
    """Scalar outcome of one trial — small enough to ship between processes."""

    # repro: lint-ok[K203] composite, flattened into the row as its own field columns
    spec: TrialSpec
    rounds: int
    failures: int
    messages_sent: int
    messages_delivered: int
    last_round_named: Optional[int]
    # repro: lint-ok[K203] unbounded (n entries per trial); rows stay scalar by contract
    names: Tuple[Tuple[ProcessId, Name], ...]
    #: Which kernel actually executed the trial (resolved from the spec's
    #: "auto" where applicable).
    kernel: str = "reference"
    #: ``"ErrorType: message"`` when the spec ran with
    #: ``capture_errors=True`` and the execution failed (deadlock, spec
    #: violation); None for a clean run.
    error: Optional[str] = None
    #: The monitor mode the trial ran under.
    monitor: str = "off"
    #: Rendered invariant-monitor findings ("round R [invariant] ...");
    #: always empty when monitoring was off or every invariant held.
    violations: Tuple[str, ...] = ()
    #: Fault-family counters, zero on crash-only runs: sender->receiver
    #: links dropped by omission, links deferred by bounded delay, and
    #: per-round corrupted-sender events.
    omissions: int = 0
    delayed: int = 0
    corrupted: int = 0
    #: The adversary's declared :class:`~repro.adversary.base.FaultBudget`
    #: rendered compactly ("omissions=48,delay_bound=2"; "" = default).
    fault_budget: str = ""
    #: The recorded event trace when the spec asked for one (None under
    #: ``trace="off"``; captured-error rows keep the events recorded up
    #: to the failure).  Rows serialize the
    #: spec's trace *mode*; the events themselves persist through the
    #: trace-file writers, content-addressed by ``spec.digest()``.  The
    #: row carries the spec's trace *mode*, not the events.
    trace: Optional[Trace] = None

    @property
    def cell(self) -> CellKey:
        """The matrix cell this result belongs to."""
        return self.spec.cell

    def to_row(self) -> Dict[str, Any]:
        """This trial as a flat JSON-ready dict (one ``--out .jsonl`` line).

        Every :class:`TrialSpec`/:class:`TrialResult` field appears here
        (the K203 lint rule enforces it), so a row alone replays its
        trial: the spec columns are the inputs, the rest the outcome.
        """
        return {
            "algorithm": self.spec.algorithm,
            "n": self.spec.n,
            "adversary": self.spec.adversary.key,
            "seed": self.spec.seed,
            "halt_on_name": self.spec.halt_on_name,
            "crash_budget": self.spec.crash_budget,
            "check": self.spec.check,
            "capture_errors": self.spec.capture_errors,
            "kernel": self.kernel,
            "rounds": self.rounds,
            "failures": self.failures,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "last_round_named": self.last_round_named,
            "error": self.error,
            "monitor": self.monitor,
            "violations": list(self.violations),
            "omissions": self.omissions,
            "delayed": self.delayed,
            "corrupted": self.corrupted,
            "fault_budget": self.fault_budget,
            "trace": self.spec.trace,
        }


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one spec end to end (module-level so executors can pickle it)."""
    adversary = spec.adversary.build(spec.seed)
    fault_budget = "" if adversary is None else adversary.fault_budget().describe()
    try:
        run = run_renaming(
            spec.algorithm,
            sparse_ids(spec.n),
            seed=spec.seed,
            adversary=adversary,
            crash_budget=spec.crash_budget,
            halt_on_name=spec.halt_on_name,
            check=spec.check,
            kernel=spec.kernel,
            monitor=spec.monitor,
            trace=spec.trace,
        )
    except (SimulationError, SpecViolation) as error:
        if not spec.capture_errors:
            raise
        # The round budget a deadlocked run exhausted: the worst legal
        # round count, so rounds-style objectives rank it above any
        # terminating execution.
        limit = (
            error.limit
            if isinstance(error, RoundLimitExceeded)
            else default_round_limit(spec.n, spec.crash_budget)
        )
        return TrialResult(
            spec=spec,
            rounds=limit,
            failures=0,
            messages_sent=0,
            messages_delivered=0,
            last_round_named=None,
            names=(),
            kernel=spec.kernel,
            error=f"{type(error).__name__}: {error}",
            monitor=spec.monitor,
            violations=tuple(
                v.render() for v in getattr(error, "violations", ())
            ),
            fault_budget=fault_budget,
            # The events recorded up to the failure (runner hangs the
            # sink on the error): a deadlock's trace is the interesting
            # one, so captured-error rows keep it.
            trace=getattr(error, "partial_trace", None),
        )
    return TrialResult(
        spec=spec,
        rounds=run.rounds,
        failures=run.failures,
        messages_sent=run.metrics.total_messages_sent,
        messages_delivered=run.metrics.total_messages_delivered,
        last_round_named=run.last_round_named,
        names=tuple(sorted(run.names.items(), key=lambda item: repr(item[0]))),
        kernel=run.kernel,
        monitor=run.monitor,
        violations=tuple(v.render() for v in run.violations),
        omissions=run.metrics.total_omissions,
        delayed=run.metrics.total_delayed,
        corrupted=run.metrics.total_corruptions,
        fault_budget=fault_budget,
        trace=run.trace,
    )


# --------------------------------------------------------- stacked cell tasks

#: One executor work item: a lone spec (per-trial path) or a tuple of
#: same-cell specs executed as one vectorized stack.
Task = Union[TrialSpec, Tuple[TrialSpec, ...]]

#: Stream budget (trials x n) of one stacked call; bounds the resident
#: MT state (~2.5 KB per stream) while leaving whole cells intact at
#: sweep sizes.  Override with the REPRO_VEC_MAX_STREAMS environment
#: variable (read through the :mod:`repro.config` seam).
DEFAULT_MAX_STREAMS = repro_config.DEFAULT_MAX_STREAMS

_max_streams = repro_config.vec_max_streams

#: Minimum stream count (trials x n) below which a *crash* cell stays on
#: the per-trial columnar path.  The crash stack pays fixed per-round
#: costs (adversary planning, class-matrix bookkeeping) that only
#: amortize across enough streams; measured crossover on one core sits
#: between 512 and 1024 streams, above which stacking wins 1.3-2.8x.
#: Failure-free stacks amortize from far smaller cells and take no
#: floor.  Override with REPRO_VEC_CRASH_MIN_STREAMS (0 = always stack).
DEFAULT_CRASH_MIN_STREAMS = repro_config.DEFAULT_CRASH_MIN_STREAMS

_crash_min_streams = repro_config.crash_min_streams


def _cell_config(spec: TrialSpec) -> Tuple[Any, ...]:
    """Everything but the seed: trials agreeing here can stack."""
    return (
        spec.algorithm,
        spec.n,
        spec.adversary,
        spec.halt_on_name,
        spec.crash_budget,
        spec.check,
        spec.kernel,
        spec.capture_errors,
        spec.monitor,
        spec.trace,
    )


def _mixed_cell_config(spec: TrialSpec) -> Tuple[Any, ...]:
    """The cell configuration up to the adversary.

    Hunt generations evaluate many one-of-a-kind crash schedules against
    one cell shape; grouping on this key (``mixed`` task planning) lets
    those stack with per-trial adversaries where :func:`_cell_config`
    grouping would leave every candidate on the per-trial path.
    """
    return (
        spec.algorithm,
        spec.n,
        spec.halt_on_name,
        spec.crash_budget,
        spec.check,
        spec.kernel,
        spec.capture_errors,
        spec.monitor,
        spec.trace,
    )


def _stackable(spec: TrialSpec) -> bool:
    """Can trials shaped like ``spec`` run as one vectorized cell?

    Delegates the supported-grid decision to the kernel's own rejection
    logic so the batch upgrade and an explicitly pinned
    ``kernel="vectorized"`` accept exactly the same cells.
    """
    if spec.kernel not in ("auto", "vectorized"):
        return False
    from repro.sim.kernel import KernelRequest
    from repro.sim.vectorized import cell_rejection

    policy = ALGORITHMS.get(spec.algorithm)
    budget = spec.n - 1 if spec.crash_budget is None else spec.crash_budget
    request = KernelRequest(
        algorithm=spec.algorithm,
        ids=tuple(sparse_ids(spec.n)),
        seed=spec.seed,
        policy=policy,
        adversary=spec.adversary.build(spec.seed),
        crash_budget=budget,
        halt_on_name=spec.halt_on_name,
        monitor=spec.monitor,
        trace=None if spec.trace == "off" else Trace(),
        trace_mode=spec.trace,
    )
    return cell_rejection(request) is None


def plan_tasks(
    specs: Sequence[TrialSpec], *, parts: int = 1, mixed: bool = False
) -> List[Task]:
    """Fold runs of same-cell specs into stacked tasks, order-preserving.

    ``parts`` splits large stacks (one per worker, roughly) so a single
    big cell still spreads across a pool; every stack additionally
    respects the :data:`DEFAULT_MAX_STREAMS` memory budget.  Specs the
    vectorized engine cannot stack stay individual trials.

    ``mixed`` groups on :func:`_mixed_cell_config` instead — trials of
    one cell shape stack even when each carries its own adversary spec
    (the hunt batching hint), provided every adversary in the run shares
    a name (so one certification answer covers the group).

    Crash groups additionally respect the
    :data:`DEFAULT_CRASH_MIN_STREAMS` floor: below it the stacked crash
    engine's fixed per-round costs outweigh the amortization, so small
    crash cells keep the per-trial columnar path (a pure scheduling
    choice — the engines are bit-identical).
    """
    tasks: List[Task] = []
    specs = list(specs)
    max_streams = _max_streams()
    config_of = _mixed_cell_config if mixed else _cell_config
    i = 0
    while i < len(specs):
        spec = specs[i]
        j = i + 1
        config = config_of(spec)
        while j < len(specs) and config_of(specs[j]) == config:
            if mixed and specs[j].adversary.name != spec.adversary.name:
                break
            j += 1
        group = specs[i:j]
        stacks = len(group) >= 2 and _stackable(spec)
        if stacks and spec.adversary.name != "none":
            # Crash stacks only pay above the stream floor; smaller
            # crash cells keep per-trial columnar speed (bit-identical
            # either way — the floor is purely a scheduling choice).
            stacks = len(group) * spec.n >= _crash_min_streams()
        if stacks:
            chunk = max(1, max_streams // max(1, spec.n))
            if parts > 1:
                chunk = max(1, min(chunk, -(-len(group) // parts)))
            # Split pieces stay stacked even when a remainder has one
            # trial: chunking must never change the executing kernel.
            for k in range(0, len(group), chunk):
                tasks.append(tuple(group[k : k + chunk]))
        else:
            tasks.extend(group)
        i = j
    return tasks


def run_cell(specs: Sequence[TrialSpec]) -> List[TrialResult]:
    """Execute one stacked cell (module-level: picklable).

    All specs must share a cell configuration up to the adversary
    (:func:`plan_tasks` guarantees it; direct callers are checked); the
    stacked engines are bit-identical to the scalar kernels, so each
    returned :class:`TrialResult` equals the :func:`run_trial` outcome
    of its spec except for the ``kernel`` label.  Crash cells build one
    adversary per trial from that trial's seed — exactly the instance
    :func:`run_trial` would hand its kernel.
    """
    from repro.adversary.none import NoFailures
    from repro.sim.vectorized import run_stacked_cell

    spec = specs[0]
    for other in specs[1:]:
        if _mixed_cell_config(other) != _mixed_cell_config(spec):
            raise ConfigurationError(
                "run_cell needs same-cell specs (only seeds and certified "
                f"adversaries may differ); got {_cell_config(spec)} and "
                f"{_cell_config(other)}"
            )
    adversaries = [s.adversary.build(s.seed) for s in specs]
    crashy = any(
        adv is not None and type(adv) is not NoFailures for adv in adversaries
    )
    if crashy:
        return _run_crash_cell(specs, adversaries)
    cell = run_stacked_cell(
        sparse_ids(spec.n),
        [s.seed for s in specs],
        policy=ALGORITHMS[spec.algorithm],
        halt_on_name=spec.halt_on_name,
        crash_budget=spec.crash_budget,
        monitor=spec.monitor,
    )
    if spec.check:
        cell.check()
    labels = cell.labels
    # repr-sort of the (shared) labels once per cell, not once per trial;
    # itemgetter picks each trial's decisions in that order at C speed.
    order = sorted(range(len(labels)), key=lambda i: repr(labels[i]))
    ordered_labels = tuple(labels[i] for i in order)
    pick = operator.itemgetter(*order) if len(order) > 1 else None
    rounds = cell.rounds.tolist()
    sent = cell.messages_sent.tolist()
    delivered = cell.messages_delivered.tolist()
    decisions = cell.decisions.tolist()
    results = []
    for t, trial_spec in enumerate(specs):
        row = decisions[t]
        picked = pick(row) if pick is not None else (row[order[0]],)
        results.append(
            TrialResult(
                spec=trial_spec,
                rounds=rounds[t],
                failures=0,
                messages_sent=sent[t],
                messages_delivered=delivered[t],
                last_round_named=cell.last_round_named(t),
                names=tuple(zip(ordered_labels, picked)),
                kernel="vectorized",
                monitor=spec.monitor,
                violations=tuple(
                    v.render() for v in cell.violations(t)
                ),
                trace=cell.trace(t) if spec.trace == "cheap" else None,
            )
        )
    return results


def _run_crash_cell(
    specs: Sequence[TrialSpec], adversaries: Sequence[Any]
) -> List[TrialResult]:
    """One stacked crash cell, trial faults resolved in serial order.

    The stacked engine flags an overrun trial instead of raising, so the
    per-trial semantics of the serial loop are reproduced here: ascending
    trial order, a trial's :class:`RoundLimitExceeded` before its spec
    check, and — under ``capture_errors`` — the exact error rows
    :func:`run_trial` would have produced, without re-running anything.
    """
    from repro.sim.vectorized import run_stacked_cell

    spec = specs[0]
    cell = run_stacked_cell(
        sparse_ids(spec.n),
        [s.seed for s in specs],
        policy=ALGORITHMS[spec.algorithm],
        halt_on_name=spec.halt_on_name,
        crash_budget=spec.crash_budget,
        monitor=spec.monitor,
        adversaries=adversaries,
    )
    labels = cell.labels
    order = sorted(range(len(labels)), key=lambda i: repr(labels[i]))
    rounds = cell.rounds.tolist()
    failures = cell.failures.tolist()
    sent = cell.messages_sent.tolist()
    delivered = cell.messages_delivered.tolist()
    decisions = cell.decisions.tolist()
    crashed = cell.crashed.tolist()
    overrun = cell.overrun.tolist()
    spec_ok = cell.spec_ok() if spec.check else None
    results = []
    for t, trial_spec in enumerate(specs):
        error: Optional[Exception] = None
        if overrun[t]:
            error = RoundLimitExceeded(
                cell.limit, int(cell.running_at_limit[t])
            )
        elif spec_ok is not None and not bool(spec_ok[t]):
            try:
                cell.check_trial(t)
            except SpecViolation as violation:
                error = violation
        if error is not None:
            if not trial_spec.capture_errors:
                raise error
            limit = (
                error.limit
                if isinstance(error, RoundLimitExceeded)
                else default_round_limit(trial_spec.n, trial_spec.crash_budget)
            )
            results.append(
                TrialResult(
                    spec=trial_spec,
                    rounds=limit,
                    failures=0,
                    messages_sent=0,
                    messages_delivered=0,
                    last_round_named=None,
                    names=(),
                    kernel=trial_spec.kernel,
                    error=f"{type(error).__name__}: {error}",
                    monitor=trial_spec.monitor,
                    violations=tuple(
                        v.render() for v in getattr(error, "violations", ())
                    ),
                )
            )
            continue
        row = decisions[t]
        crashed_row = crashed[t]
        results.append(
            TrialResult(
                spec=trial_spec,
                rounds=rounds[t],
                failures=failures[t],
                messages_sent=sent[t],
                messages_delivered=delivered[t],
                last_round_named=cell.last_round_named(t),
                names=tuple(
                    (labels[i], row[i])
                    for i in order
                    if not crashed_row[i] and row[i] >= 0
                ),
                kernel="vectorized",
                monitor=trial_spec.monitor,
                violations=(),
                trace=(
                    cell.trace(t) if trial_spec.trace == "cheap" else None
                ),
            )
        )
    return results


def _run_task(task: Task) -> List[TrialResult]:
    """One executor work item (module-level so pools can pickle it)."""
    if isinstance(task, TrialSpec):
        return [run_trial(task)]
    try:
        return run_cell(task)
    except (SimulationError, SpecViolation):
        if not task[0].capture_errors:
            raise
        # The stacked engine fails the whole cell at once; re-run its
        # trials individually so only the poisoned ones become error
        # rows (run_trial captures per spec, bit-identical otherwise).
        return [run_trial(spec) for spec in task]


# -------------------------------------------------------------------- executors


class SerialExecutor:
    """Run trials in-process, one after another."""

    name = "serial"

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Map :func:`run_trial` over ``specs`` in order."""
        return [run_trial(spec) for spec in specs]

    def run_tasks(self, tasks: Sequence[Task]) -> List[TrialResult]:
        """Execute planned tasks in order (stacked cells inline)."""
        results: List[TrialResult] = []
        for task in tasks:
            results.extend(_run_task(task))
        return results


class MultiprocessingExecutor:
    """Run trials across a :mod:`multiprocessing` pool, chunked.

    ``Pool.map`` preserves input order, so cells come back in exactly the
    order the serial executor would produce — determinism under
    parallelism.  Work ships as *chunks* of tasks per worker (``~4`` per
    worker by default, tunable via ``chunksize``), so a worker executes a
    run of same-``n`` trials back to back and its process-local
    :func:`~repro.tree.topology.cached_topology` is built once per size
    instead of once per submission.  Falls back to in-process execution
    for tiny batches where pool startup would dominate.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunksize: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.start_method = start_method

    def _resolved_chunksize(self, items: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        # ~4 chunks per worker balances load without drowning in IPC.
        return max(1, items // (self.workers * 4))

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialResult]:
        """Map :func:`run_trial` over ``specs``, preserving order."""
        specs = list(specs)
        if self.workers == 1 or len(specs) <= 1:
            return SerialExecutor().run(specs)
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=self.workers) as pool:
            return pool.map(run_trial, specs, self._resolved_chunksize(len(specs)))

    def run_tasks(self, tasks: Sequence[Task]) -> List[TrialResult]:
        """Execute planned tasks across the pool, preserving order."""
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            return SerialExecutor().run_tasks(tasks)
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=self.workers) as pool:
            nested = pool.map(_run_task, tasks, self._resolved_chunksize(len(tasks)))
        return [result for chunk in nested for result in chunk]


#: Executor names accepted by :func:`as_executor` and the CLI.
EXECUTORS = ("serial", "process")


def as_executor(
    value: Union[None, str, SerialExecutor, MultiprocessingExecutor],
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
):
    """Coerce a name / None / executor instance to an executor object."""
    if value is None:
        if workers is not None and workers > 1:
            return MultiprocessingExecutor(workers, chunksize=chunksize)
        return SerialExecutor()
    if isinstance(value, str):
        if value == "serial":
            return SerialExecutor()
        if value == "process":
            return MultiprocessingExecutor(workers, chunksize=chunksize)
        raise ConfigurationError(
            f"unknown executor {value!r}; choose from {EXECUTORS}"
        )
    if hasattr(value, "run"):
        return value
    raise ConfigurationError(f"not an executor: {value!r}")


# -------------------------------------------------------------- scenario matrix


@dataclass(frozen=True)
class ScenarioMatrix:
    """An algorithm x size x adversary x seed grid of trials."""

    algorithms: Tuple[str, ...]
    sizes: Tuple[int, ...]
    adversaries: Tuple[AdversarySpec, ...] = (AdversarySpec(),)
    trials: int = 1
    base_seed: int = 0
    seed_mode: str = "legacy"
    halt_on_name: bool = False
    crash_budget: Optional[int] = None
    check: bool = True
    capture_errors: bool = False
    kernel: str = "auto"
    monitor: str = "off"
    trace: str = "off"

    @classmethod
    def build(
        cls,
        algorithms: Iterable[str],
        sizes: Iterable[int],
        adversaries: Iterable[AdversaryLike] = ("none",),
        *,
        trials: int = 1,
        base_seed: int = 0,
        seed_mode: str = "legacy",
        halt_on_name: bool = False,
        crash_budget: Optional[int] = None,
        check: bool = True,
        capture_errors: bool = False,
        kernel: str = "auto",
        monitor: str = "off",
        trace: str = "off",
    ) -> "ScenarioMatrix":
        """Validate and normalize a grid definition."""
        algorithms = tuple(algorithms)
        sizes = tuple(int(n) for n in sizes)
        adversary_specs = tuple(as_adversary_spec(adv) for adv in adversaries)
        for algorithm in algorithms:
            if algorithm not in ALGORITHMS:
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
                )
        if not algorithms or not sizes or not adversary_specs:
            raise ConfigurationError("a scenario matrix needs >= 1 of every dimension")
        for n in sizes:
            if n < 1:
                raise ConfigurationError(f"sizes must be >= 1, got {n}")
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        if seed_mode not in SEED_MODES:
            raise ConfigurationError(
                f"unknown seed mode {seed_mode!r}; choose from {SEED_MODES}"
            )
        from repro.sim.kernel import KERNEL_CHOICES

        if kernel not in KERNEL_CHOICES:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; choose from {KERNEL_CHOICES}"
            )
        from repro.monitor.invariants import check_monitor_mode

        check_monitor_mode(monitor)
        check_trace_mode(trace)
        return cls(
            algorithms=algorithms,
            sizes=sizes,
            adversaries=adversary_specs,
            trials=trials,
            base_seed=base_seed,
            seed_mode=seed_mode,
            halt_on_name=halt_on_name,
            crash_budget=crash_budget,
            check=check,
            capture_errors=capture_errors,
            kernel=kernel,
            monitor=monitor,
            trace=trace,
        )

    def __len__(self) -> int:
        return len(self.algorithms) * len(self.sizes) * len(self.adversaries) * self.trials

    def trial_seed(self, algorithm: str, n: int, adversary: AdversarySpec, trial: int) -> int:
        """The seed of one trial under this matrix's seed mode."""
        if self.seed_mode == "legacy":
            return self.base_seed * 100_003 + trial
        return derived_trial_seed(self.base_seed, algorithm, n, adversary.key, trial)

    def expand(self) -> List[TrialSpec]:
        """All trial specs, cells in grid order, seeds ascending per cell."""
        specs: List[TrialSpec] = []
        for algorithm in self.algorithms:
            for n in self.sizes:
                for adversary in self.adversaries:
                    for trial in range(self.trials):
                        specs.append(
                            TrialSpec(
                                algorithm=algorithm,
                                n=n,
                                seed=self.trial_seed(algorithm, n, adversary, trial),
                                adversary=adversary,
                                halt_on_name=self.halt_on_name,
                                crash_budget=self.crash_budget,
                                check=self.check,
                                capture_errors=self.capture_errors,
                                kernel=self.kernel,
                                monitor=self.monitor,
                                trace=self.trace,
                            )
                        )
        return specs


# ----------------------------------------------------------------- batch result


@dataclass(frozen=True)
class CellStats:
    """Aggregated statistics of one matrix cell."""

    key: CellKey
    count: int
    rounds: TrialStats
    failures: TrialStats
    messages_sent: TrialStats
    messages_delivered: TrialStats


@dataclass
class BatchResult:
    """All trial results of one batch, with per-cell aggregation."""

    trials: List[TrialResult] = field(default_factory=list)
    executor: str = "serial"
    elapsed: float = 0.0

    def __len__(self) -> int:
        return len(self.trials)

    def cells(self) -> Dict[CellKey, List[TrialResult]]:
        """Results grouped by cell, preserving trial order within each."""
        grouped: Dict[CellKey, List[TrialResult]] = {}
        for result in self.trials:
            grouped.setdefault(result.cell, []).append(result)
        return grouped

    def cell(
        self, algorithm: str, n: int, adversary: AdversaryLike = "none"
    ) -> List[TrialResult]:
        """Results of one cell (raises on an empty/unknown cell)."""
        key = CellKey(algorithm, int(n), as_adversary_spec(adversary).key)
        results = [result for result in self.trials if result.cell == key]
        if not results:
            raise ConfigurationError(f"no trials in cell {key}")
        return results

    def stats(self, algorithm: str, n: int, adversary: AdversaryLike = "none") -> CellStats:
        """Aggregated statistics of one cell."""
        return self._stats(self.cell(algorithm, n, adversary))

    def cell_stats(self) -> List[CellStats]:
        """Statistics of every cell, in first-seen (grid) order."""
        return [self._stats(results) for results in self.cells().values()]

    def to_table(self, title: str = "scenario matrix") -> Table:
        """One row per cell, ready for experiment reports."""
        table = Table(
            title,
            [
                "algorithm",
                "n",
                "adversary",
                "trials",
                "mean rounds",
                "p95",
                "max",
                "mean f",
                "mean deliveries",
            ],
            notes=(
                f"executor={self.executor}; "
                + (
                    "every trial checked against the renaming spec"
                    if all(trial.spec.check for trial in self.trials)
                    else "spec checking disabled for some cells "
                    "(fault-measurement mode)"
                )
            ),
        )
        for stats in self.cell_stats():
            table.add_row(
                stats.key.algorithm,
                stats.key.n,
                stats.key.adversary,
                stats.count,
                stats.rounds.mean,
                stats.rounds.p95,
                stats.rounds.maximum,
                stats.failures.mean,
                stats.messages_delivered.mean,
            )
        return table

    @staticmethod
    def _stats(results: Sequence[TrialResult]) -> CellStats:
        return CellStats(
            key=results[0].cell,
            count=len(results),
            rounds=summarize([r.rounds for r in results]),
            failures=summarize([r.failures for r in results]),
            messages_sent=summarize([r.messages_sent for r in results]),
            messages_delivered=summarize([r.messages_delivered for r in results]),
        )


def run_batch(
    source: Union[ScenarioMatrix, Sequence[TrialSpec]],
    *,
    executor: Union[None, str, SerialExecutor, MultiprocessingExecutor] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    mixed_cells: bool = False,
) -> BatchResult:
    """Expand (if needed) and execute a batch of trials.

    ``executor`` may be an executor object, a name from
    :data:`EXECUTORS`, or None (serial; or process when ``workers > 1``).
    Eligible cells — failure-free and certified-crash alike — run
    trial-stacked on the vectorized engine (one call per cell, split
    across workers); results are bit-identical either way, so backends
    and kernels interchange freely.  ``mixed_cells`` extends stacking to
    groups whose trials carry per-trial adversary specs (hunt batches).
    """
    specs = source.expand() if isinstance(source, ScenarioMatrix) else list(source)
    backend = as_executor(executor, workers=workers, chunksize=chunksize)
    parts = getattr(backend, "workers", 1)
    # repro: lint-ok[D102] wall-clock telemetry (BatchResult.elapsed), never a result row
    started = time.perf_counter()
    if hasattr(backend, "run_tasks"):
        results = backend.run_tasks(
            plan_tasks(specs, parts=parts, mixed=mixed_cells)
        )
    else:  # a caller-supplied executor object predating task planning
        results = backend.run(specs)
    # repro: lint-ok[D102] wall-clock telemetry (BatchResult.elapsed), never a result row
    elapsed = time.perf_counter() - started
    return BatchResult(trials=results, executor=backend.name, elapsed=elapsed)
