"""High-level entry point: run a renaming algorithm end to end.

``run_renaming("balls-into-leaves", ids, seed=1)`` resolves the run into
a :class:`~repro.sim.kernel.KernelRequest`, selects a simulation kernel
(the columnar fast path when it models the run, the reference lock-step
engine otherwise), checks the renaming specification, and returns a
:class:`RenamingRun` with the round counts and (optionally) per-phase
tree statistics.  This is the main public API; the examples and every
experiment go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.ids import Name, ProcessId
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.kernel import KernelRequest, select_kernel
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import SimulationResult
from repro.sim.trace import Trace, check_trace_mode

@dataclass(frozen=True)
class Workload:
    """One registered workload: how it runs and how it is judged.

    ``policy`` selects a Balls-into-Leaves path policy (None = a
    baseline process builder in the reference kernel's registry);
    ``renaming`` says whether the output is a tight renaming that
    :func:`~repro.sim.checker.check_renaming` applies to (approximate
    agreement decides reals, not names).
    """

    policy: Optional[str]
    renaming: bool = True


#: Every workload the rails accept (`run_renaming`, TrialSpec,
#: ScenarioMatrix, hunts): the renaming algorithms plus the related
#: Section 1-2 workloads they are measured against.
WORKLOADS: Dict[str, Workload] = {
    "balls-into-leaves": Workload("random"),
    "early-terminating": Workload("hybrid"),
    "rank-descent": Workload("rank"),
    "leftmost": Workload("leftmost"),
    "flood": Workload(None),
    "approx-agreement": Workload(None, renaming=False),
    "parallel-retry": Workload(None),
}

#: Algorithm name -> Balls-into-Leaves path policy (None = not BiL-based).
ALGORITHMS: Dict[str, Optional[str]] = {
    name: workload.policy for name, workload in WORKLOADS.items()
}


def default_round_limit(n: int, crash_budget: Optional[int]) -> int:
    """The BiL round budget (Lemma 11: <= n fault-free phases, plus one
    phase per crash, plus slack).  One definition shared by every kernel
    path — per-trial and stacked cells must agree on the limit or a
    near-limit run could terminate on one engine and raise on the other.
    """
    budget = n - 1 if crash_budget is None else crash_budget
    return 4 * n + 2 * budget + 16


@dataclass
class RenamingRun:
    """Everything measured about one renaming execution."""

    algorithm: str
    n: int
    seed: int
    rounds: int
    names: Dict[ProcessId, Name]
    crashed: FrozenSet[ProcessId]
    failures: int
    last_round_named: Optional[int]
    metrics: SimulationMetrics
    phase_stats: List[Any] = field(default_factory=list)
    trace: Optional[Trace] = None
    result: Optional[SimulationResult] = None
    #: Which kernel actually executed the run ("reference"/"columnar").
    kernel: str = "reference"
    #: The monitor mode the run executed under, after resolution.
    monitor: str = "off"
    #: The trace mode the run executed under ("off"/"cheap"/"full").
    trace_mode: str = "off"
    #: Structured :class:`repro.monitor.invariants.Violation` records the
    #: run's monitors collected (always empty on a correct run).
    violations: List[Any] = field(default_factory=list)

    @property
    def phases(self) -> int:
        """Completed phases (two rounds each, after the init round)."""
        return max(0, (self.rounds - 1) // 2)


def run_renaming(
    algorithm: str,
    ids: Sequence[ProcessId],
    *,
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    crash_budget: Optional[int] = None,
    view_mode: str = "shared",
    halt_on_name: bool = False,
    check: bool = True,
    check_invariants: bool = False,
    collect_phase_stats: bool = False,
    trace: Optional[Any] = None,
    max_rounds: Optional[int] = None,
    kernel: str = "auto",
    monitor: str = "off",
) -> RenamingRun:
    """Run one tight-renaming execution and verify its output.

    Parameters
    ----------
    algorithm:
        One of :data:`WORKLOADS`: ``"balls-into-leaves"`` (Algorithm 1),
        ``"early-terminating"`` (Section 6), ``"rank-descent"`` and
        ``"flood"`` (deterministic baselines), ``"leftmost"`` (the
        degenerate worst case), ``"approx-agreement"`` (the Section 2
        substrate; decides reals, so the renaming check is skipped), or
        ``"parallel-retry"`` (the load-balancing scheme of Section 1 on
        message-passing rails; names are bin indices).
    ids:
        Distinct, comparable original identifiers; ``n = len(ids)``.
    adversary:
        Crash strategy (default: no failures).
    crash_budget:
        The model's ``t`` (default ``n - 1``).
    halt_on_name:
        Enable the per-ball termination extension (a ball halts as soon
        as it has announced its leaf); BiL-based algorithms only.
    check:
        Verify termination/validity/uniqueness and raise on violation.
    collect_phase_stats:
        Attach a :class:`~repro.core.instrumentation.TreeStatsObserver`
        (BiL-based algorithms only; keeps the run on the reference
        kernel).
    trace:
        Event capture: ``None``/``"off"`` (default, records nothing),
        ``"cheap"`` (per-round deltas appended from the fast kernels'
        flat arrays — crash/omit/name/halt events plus the round
        aggregates; available on every kernel), or ``"full"`` (the
        reference engine's message-level instrumentation; pins the
        reference kernel).  A pre-built :class:`~repro.sim.trace.Trace`
        instance is the legacy spelling of ``"full"`` recording into
        that sink.  The recorded trace is returned as
        ``RenamingRun.trace``.
    kernel:
        ``"auto"`` (default) runs the columnar fast path whenever it
        models the run and the reference engine otherwise;
        ``"reference"`` pins the lock-step engine; ``"columnar"`` pins
        the fast path and raises
        :class:`~repro.errors.KernelUnsupported` for runs it rejects.
    monitor:
        Runtime invariant monitoring: ``"off"`` (default), ``"cheap"``
        (the flat-array per-round predicates of
        :mod:`repro.monitor.invariants`, available on every kernel), or
        ``"full"`` (cheap predicates plus the instrumented reference
        movement audit; keeps the run on the reference kernel).
        ``check_invariants=True`` upgrades ``"off"`` to ``"cheap"`` —
        invariant checking no longer forces the reference engine — and
        makes the runner raise
        :class:`~repro.errors.MonitorViolation` on any finding;
        otherwise findings are reported in ``RenamingRun.violations``.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    n = len(ids)
    if n == 0:
        raise ConfigurationError("renaming needs at least one participant")
    from repro.monitor.invariants import check_monitor_mode

    check_monitor_mode(monitor)
    if check_invariants and monitor == "off":
        # The satellite fix: invariant checking used to force the
        # reference engine; now it routes to the cheap columnar monitors
        # (pin monitor="full" to keep the faithful reference audit).
        monitor = "cheap"
    if trace is None:
        trace_mode, trace_sink = "off", None
    elif isinstance(trace, Trace):
        # Legacy spelling: a caller-owned sink implies the reference
        # engine's full message-level instrumentation.
        trace_mode, trace_sink = "full", trace
    else:
        trace_mode = check_trace_mode(trace)
        trace_sink = Trace() if trace_mode != "off" else None
    budget = n - 1 if crash_budget is None else crash_budget
    workload = WORKLOADS[algorithm]
    policy = workload.policy
    if max_rounds is not None:
        limit = max_rounds
    elif policy is not None:
        limit = default_round_limit(n, budget)
    elif algorithm == "approx-agreement":
        from repro.baselines.approximate_agreement import seeded_rounds

        limit = seeded_rounds(n, budget) + 4
    elif algorithm == "parallel-retry":
        # Some ball places every round (the lowest unplaced pid always
        # wins its own claim), so n rounds suffice under any faults.
        limit = n + 8
    else:
        limit = budget + 8

    request = KernelRequest(
        algorithm=algorithm,
        ids=tuple(ids),
        seed=seed,
        policy=policy,
        adversary=adversary,
        crash_budget=budget,
        max_rounds=limit,
        view_mode=view_mode,
        halt_on_name=halt_on_name,
        check_invariants=check_invariants,
        collect_phase_stats=collect_phase_stats,
        trace=trace_sink,
        trace_mode=trace_mode,
        monitor=monitor,
    )
    engine = select_kernel(kernel, request)
    try:
        run = engine.run(request)
    except Exception as error:
        if trace_sink is not None:
            # A deadlocked or violating run is exactly what hunts mine;
            # hang the partial trace on the error so capture_errors rows
            # (and the timeline explorer) can still show the event
            # stream up to the failure.
            error.partial_trace = trace_sink
        raise
    result = run.result
    try:
        if check_invariants and run.violations:
            from repro.errors import MonitorViolation

            raise MonitorViolation(run.violations)
        if check and workload.renaming:
            check_renaming(result, RenamingSpec(n=n))
    except Exception as error:
        if trace_sink is not None:
            error.partial_trace = trace_sink
        raise

    names = {
        pid: name
        for pid, name in result.decisions.items()
        if pid not in result.crashed and name is not None
    }
    return RenamingRun(
        algorithm=algorithm,
        n=n,
        seed=seed,
        rounds=result.rounds,
        names=names,
        crashed=result.crashed,
        failures=len(result.crashed),
        last_round_named=run.last_round_named,
        metrics=result.metrics,
        phase_stats=run.phase_stats,
        trace=trace_sink,
        result=result,
        kernel=run.kernel,
        monitor=monitor,
        trace_mode=trace_mode,
        violations=run.violations,
    )
