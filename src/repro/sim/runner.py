"""High-level entry point: run a renaming algorithm end to end.

``run_renaming("balls-into-leaves", ids, seed=1)`` builds the processes,
drives the simulator against the chosen adversary, checks the renaming
specification, and returns a :class:`RenamingRun` with the round counts
and (optionally) per-phase tree statistics.  This is the main public API;
the examples and every experiment go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.ids import Name, ProcessId
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import Simulation, SimulationResult
from repro.sim.trace import Trace

#: Algorithm name -> Balls-into-Leaves path policy (None = not BiL-based).
ALGORITHMS: Dict[str, Optional[str]] = {
    "balls-into-leaves": "random",
    "early-terminating": "hybrid",
    "rank-descent": "rank",
    "leftmost": "leftmost",
    "flood": None,
}


@dataclass
class RenamingRun:
    """Everything measured about one renaming execution."""

    algorithm: str
    n: int
    seed: int
    rounds: int
    names: Dict[ProcessId, Name]
    crashed: FrozenSet[ProcessId]
    failures: int
    last_round_named: Optional[int]
    metrics: SimulationMetrics
    phase_stats: List[Any] = field(default_factory=list)
    trace: Optional[Trace] = None
    result: Optional[SimulationResult] = None

    @property
    def phases(self) -> int:
        """Completed phases (two rounds each, after the init round)."""
        return max(0, (self.rounds - 1) // 2)


def run_renaming(
    algorithm: str,
    ids: Sequence[ProcessId],
    *,
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    crash_budget: Optional[int] = None,
    view_mode: str = "shared",
    halt_on_name: bool = False,
    check: bool = True,
    check_invariants: bool = False,
    collect_phase_stats: bool = False,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
) -> RenamingRun:
    """Run one tight-renaming execution and verify its output.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`: ``"balls-into-leaves"`` (Algorithm 1),
        ``"early-terminating"`` (Section 6), ``"rank-descent"`` and
        ``"flood"`` (deterministic baselines), or ``"leftmost"`` (the
        degenerate worst case).
    ids:
        Distinct, comparable original identifiers; ``n = len(ids)``.
    adversary:
        Crash strategy (default: no failures).
    crash_budget:
        The model's ``t`` (default ``n - 1``).
    halt_on_name:
        Enable the per-ball termination extension (a ball halts as soon
        as it has announced its leaf); BiL-based algorithms only.
    check:
        Verify termination/validity/uniqueness and raise on violation.
    collect_phase_stats:
        Attach a :class:`~repro.core.instrumentation.TreeStatsObserver`
        (BiL-based algorithms only).
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    n = len(ids)
    if n == 0:
        raise ConfigurationError("renaming needs at least one participant")
    budget = n - 1 if crash_budget is None else crash_budget

    observers = []
    policy = ALGORITHMS[algorithm]
    if policy is not None:
        from repro.core.balls_into_leaves import build_balls_into_leaves
        from repro.core.config import BallsIntoLeavesConfig
        from repro.core.instrumentation import TreeStatsObserver

        config = BallsIntoLeavesConfig(
            path_policy=policy,
            view_mode=view_mode,
            check_invariants=check_invariants,
            halt_on_name=halt_on_name,
        )
        processes, store = build_balls_into_leaves(ids, seed=seed, config=config)
        stats_observer = None
        if collect_phase_stats:
            stats_observer = TreeStatsObserver(store)
            observers.append(stats_observer)
        # Lemma 11: at most n fault-free phases, plus one phase per crash.
        default_limit = 4 * n + 2 * budget + 16
    else:
        from repro.baselines.flood_consensus import build_flood_renaming

        processes = build_flood_renaming(ids, crash_budget=budget)
        stats_observer = None
        default_limit = budget + 8

    simulation = Simulation(
        processes,
        adversary=adversary,
        crash_budget=budget,
        max_rounds=max_rounds if max_rounds is not None else default_limit,
        trace=trace,
        observers=observers,
    )
    result = simulation.run()
    if check:
        check_renaming(result, RenamingSpec(n=n))

    names = {
        pid: name
        for pid, name in result.decisions.items()
        if pid not in result.crashed and name is not None
    }
    last_named = _last_round_named(simulation, result)
    return RenamingRun(
        algorithm=algorithm,
        n=n,
        seed=seed,
        rounds=result.rounds,
        names=names,
        crashed=result.crashed,
        failures=len(result.crashed),
        last_round_named=last_named,
        metrics=result.metrics,
        phase_stats=list(stats_observer.phases) if stats_observer else [],
        trace=trace,
        result=result,
    )


def _last_round_named(simulation: Simulation, result: SimulationResult) -> Optional[int]:
    """Latest round at which a correct ball fixed its name (BiL only)."""
    last: Optional[int] = None
    for pid, proc in simulation.processes.items():
        if pid in result.crashed:
            continue
        named = getattr(proc, "round_named", None)
        if named is not None and (last is None or named > last):
            last = named
    return last
