"""The vectorized kernel: a stacked cell of trials as one array program.

Wraps :class:`repro.core.vectorized.VectorizedCellEngine` in two shapes:

* :class:`VectorizedKernel` — the :class:`~repro.sim.kernel.SimulationKernel`
  face, so ``kernel="vectorized"`` works anywhere a kernel name does
  (``run_renaming``, trial specs, the CLI).  A single run is just a
  one-trial stack; the payoff comes from the second shape.
* :func:`run_stacked_cell` — the cell-granular entry point used by
  :mod:`repro.sim.batch`: all ``T`` failure-free trials of one
  scenario-matrix cell execute as one vectorized pass, amortizing the
  interpreter, the topology, and the RNG machinery across the whole
  cell instead of paying them per trial.

Everything the stack produces is bit-for-bit what the columnar (and
hence reference) kernel produces trial by trial — same
:class:`~repro.sim.simulator.SimulationResult`, same metrics rows, same
tables — which is what lets ``auto`` batches upgrade cells to this path
without observable change (asserted by the differential suite).

NumPy is optional: without it :func:`vectorized_available` is False,
``auto`` keeps using the columnar engine, and pinning
``kernel="vectorized"`` raises :class:`~repro.errors.KernelUnsupported`
with an install hint.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.adversary.certification import certification_failure
from repro.adversary.none import NoFailures
from repro.core.config import BallsIntoLeavesConfig
from repro.core.instrumentation import TIMERS
from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.kernel import KernelRequest, KernelRun, SimulationKernel
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.runner import default_round_limit
from repro.sim.simulator import SimulationResult
from repro.sim.trace import Trace

if HAVE_NUMPY:
    import numpy as np


def vectorized_available() -> bool:
    """True when the optional NumPy extra is importable."""
    return HAVE_NUMPY


class StackedCellRun:
    """Outcome of one stacked cell: per-trial results, columnar layout.

    Scalar accessors (:meth:`result`, :meth:`metrics`) materialize the
    exact per-trial objects of the scalar kernels; the batch layer reads
    the flat arrays directly so a 100-trial cell never builds what it
    does not need.
    """

    def __init__(self, engine, seeds: Sequence[int], monitor=None) -> None:
        self._engine = engine
        self._monitor = monitor
        self.seeds = list(seeds)
        self.labels = engine.labels
        self.n = engine.n
        self.trials = engine.trials
        self.rounds = engine.rounds
        #: (T, n) decided names, label-rank order.
        self.decisions = engine.decision.reshape(engine.trials, engine.n)
        self.round_named = engine.round_named.reshape(engine.trials, engine.n)
        senders = np.stack(engine.round_senders) if engine.round_senders else (
            np.zeros((0, engine.trials), dtype=np.int64)
        )
        #: (T,) total broadcasts / deliveries, matching the failure-free
        #: metrics rule (every running sender reaches every running
        #: process, itself included).
        self.messages_sent = senders.sum(axis=0, dtype=np.int64)
        self.messages_delivered = (
            (senders.astype(np.int64) ** 2).sum(axis=0, dtype=np.int64)
        )
        self._senders = senders
        self._running_after = (
            np.stack(engine.round_running_after)
            if engine.round_running_after
            else np.zeros((0, engine.trials), dtype=np.int64)
        )
        self._participants = frozenset(self.labels)

    def last_round_named(self, t: int) -> Optional[int]:
        """Latest naming round of trial ``t``."""
        return self._engine.last_round_named(t)

    def violations(self, t: int) -> list:
        """Trial ``t``'s monitor findings ([] when monitoring was off)."""
        if self._monitor is None:
            return []
        return self._monitor.violations(t)

    def metrics(self, t: int) -> SimulationMetrics:
        """Trial ``t``'s per-round metrics, as the scalar kernels record them."""
        metrics = SimulationMetrics()
        n = self.n
        for r in range(int(self.rounds[t])):
            sent = int(self._senders[r, t])
            metrics.record(
                RoundMetrics(
                    round_no=r + 1,
                    messages_sent=sent,
                    messages_delivered=sent * sent,
                    crashes=0,
                    alive_after=n,
                    running_after=int(self._running_after[r, t]),
                )
            )
        return metrics

    def result(self, t: int) -> SimulationResult:
        """Trial ``t``'s full :class:`SimulationResult` (bit-identical)."""
        decisions = dict(zip(self.labels, self.decisions[t].tolist()))
        return SimulationResult(
            rounds=int(self.rounds[t]),
            decisions=decisions,
            crashed=frozenset(),
            halted=self._participants,
            metrics=self.metrics(t),
            trace=None,
            participants=self._participants,
        )

    def trace(self, t: int, sink: Optional[Trace] = None) -> Trace:
        """Trial ``t``'s cheap trace, materialized from the stack's arrays.

        Zero per-round capture cost: ``round_named``/``round_halted``
        persist per ball and the metrics rows per round, so the event
        stream is reconstructed post-hoc — and lazily, unless a ``sink``
        is supplied: the per-event objects are only built for trials
        whose timeline is actually read (the same pay-per-read contract
        as :meth:`result`).  Carries the same vocabulary as the columnar
        cheap trace minus the per-round ``pos`` snapshots (the stacked
        engine's positions are transient).
        """
        if sink is None:
            return Trace(lambda trace: self._decode_trace(t, trace))
        self._decode_trace(t, sink)
        return sink

    def _decode_trace(self, t: int, trace: Trace) -> None:
        n = self.n
        labels = self.labels
        named = self.round_named[t].tolist()
        halted = self._engine.round_halted.reshape(self.trials, n)[t].tolist()
        decisions = self.decisions[t].tolist()
        named_by: dict = {}
        halted_by: dict = {}
        for j in range(n):
            if named[j] >= 0:
                named_by.setdefault(named[j], []).append(j)
            if halted[j] >= 0:
                halted_by.setdefault(halted[j], []).append(j)
        for r in range(1, int(self.rounds[t]) + 1):
            for j in named_by.get(r, ()):
                trace.record(r, "name", pid=labels[j], name=decisions[j])
            for j in halted_by.get(r, ()):
                trace.record(r, "halt", pid=labels[j], decision=decisions[j])
            trace.record(
                r,
                "round",
                sent=int(self._senders[r - 1, t]),
                crashes=0,
                running=int(self._running_after[r - 1, t]),
            )

    def check(self) -> None:
        """Renaming-spec check for every trial, vectorized.

        Termination is structural (the stack only returns when every
        ball halted), so validity + uniqueness reduce to: each trial's
        decisions are a permutation of ``0..n-1``.  A violating trial is
        re-checked through :func:`check_renaming` so the raised
        :class:`~repro.errors.SpecViolation` carries the exact scalar
        wording.
        """
        dec = self.decisions
        expected = np.arange(self.n, dtype=dec.dtype)
        ok = (np.sort(dec, axis=1) == expected).all(axis=1)
        if bool(ok.all()):
            return
        bad = int(np.flatnonzero(~ok)[0])
        check_renaming(self.result(bad), RenamingSpec(n=self.n))
        raise AssertionError(  # pragma: no cover - checker always raises
            f"vectorized checker flagged trial {bad} but check_renaming passed"
        )


class StackedCrashCellRun:
    """Outcome of one stacked *crash* cell: per-trial crash results.

    Same accessor contract as :class:`StackedCellRun`, plus the crash
    surfaces: per-trial crash/halt sets, real per-round metrics, and the
    :attr:`overrun` flags a caller turns back into the per-trial
    :class:`~repro.errors.RoundLimitExceeded` the scalar loop raises.
    """

    def __init__(self, engine, seeds: Sequence[int]) -> None:
        self._engine = engine
        self.seeds = list(seeds)
        self.labels = engine.labels
        self.n = n = engine.n
        self.trials = T = engine.trials
        self.rounds = engine.rounds
        self.limit = engine.max_rounds
        self.overrun = engine.overrun
        self.running_at_limit = engine.running_at_limit
        self.decisions = engine.decision.reshape(T, n)
        self.round_named = engine.round_named.reshape(T, n)
        self.crashed = engine.crashed.reshape(T, n)
        self.halted = engine.halted.reshape(T, n)
        #: (T,) crash counts — the batch layer's ``failures`` column.
        self.failures = self.crashed.sum(axis=1)

        def stack(rows):
            return (
                np.stack(rows)
                if rows
                else np.zeros((0, T), dtype=np.int64)
            )

        self._sent = stack(engine.round_sent)
        self._delivered = stack(engine.round_delivered)
        self._crashes = stack(engine.round_crashes)
        self._alive = stack(engine.round_alive)
        self._running = stack(engine.round_running)
        # Inactive trials contribute zero rows, so whole-column sums are
        # per-trial totals directly.
        self.messages_sent = self._sent.sum(axis=0, dtype=np.int64)
        self.messages_delivered = self._delivered.sum(axis=0, dtype=np.int64)
        self._participants = frozenset(self.labels)

    def last_round_named(self, t: int) -> Optional[int]:
        """Latest naming round of a correct process of trial ``t``."""
        return self._engine.last_round_named(t)

    def violations(self, t: int) -> list:
        """Stacked crash cells run unmonitored (gated by the kernel)."""
        return []

    def metrics(self, t: int) -> SimulationMetrics:
        """Trial ``t``'s per-round metrics, as the columnar loop records."""
        metrics = SimulationMetrics()
        for r in range(int(self.rounds[t])):
            metrics.record(
                RoundMetrics(
                    round_no=r + 1,
                    messages_sent=int(self._sent[r, t]),
                    messages_delivered=int(self._delivered[r, t]),
                    crashes=int(self._crashes[r, t]),
                    alive_after=int(self._alive[r, t]),
                    running_after=int(self._running[r, t]),
                )
            )
        return metrics

    def result(self, t: int) -> SimulationResult:
        """Trial ``t``'s :class:`SimulationResult`, columnar-identical."""
        row = self.decisions[t].tolist()
        decisions = {
            pid: (name if name >= 0 else None)
            for pid, name in zip(self.labels, row)
        }
        crashed_row = self.crashed[t]
        halted_row = self.halted[t]
        return SimulationResult(
            rounds=int(self.rounds[t]),
            decisions=decisions,
            crashed=frozenset(
                pid for j, pid in enumerate(self.labels) if crashed_row[j]
            ),
            halted=frozenset(
                pid for j, pid in enumerate(self.labels) if halted_row[j]
            ),
            metrics=self.metrics(t),
            trace=None,
            participants=self._participants,
        )

    def trace(self, t: int, sink: Optional[Trace] = None) -> Trace:
        """Trial ``t``'s cheap trace (crash vocabulary, post-hoc).

        Crash rounds come from the engine's ``round_crashed`` column;
        naming/halting from the persistent per-ball round arrays; the
        per-round aggregates from the same metrics rows ``metrics(t)``
        reads — so the stream is bit-consistent with the per-trial
        kernels by the existing differential guarantee.  Lazy unless a
        ``sink`` is supplied (see :meth:`StackedCellRun.trace`).
        """
        if sink is None:
            return Trace(lambda trace: self._decode_trace(t, trace))
        self._decode_trace(t, sink)
        return sink

    def _decode_trace(self, t: int, trace: Trace) -> None:
        n = self.n
        labels = self.labels
        crashed = self._engine.round_crashed.reshape(self.trials, n)[t].tolist()
        named = self.round_named[t].tolist()
        halted = self._engine.round_halted.reshape(self.trials, n)[t].tolist()
        decisions = self.decisions[t].tolist()
        crashed_by: dict = {}
        named_by: dict = {}
        halted_by: dict = {}
        for j in range(n):
            if crashed[j] >= 0:
                crashed_by.setdefault(crashed[j], []).append(j)
            if named[j] >= 0:
                named_by.setdefault(named[j], []).append(j)
            if halted[j] >= 0:
                halted_by.setdefault(halted[j], []).append(j)
        for r in range(1, int(self.rounds[t]) + 1):
            for j in crashed_by.get(r, ()):
                trace.record(r, "crash", pid=labels[j])
            for j in named_by.get(r, ()):
                trace.record(r, "name", pid=labels[j], name=decisions[j])
            for j in halted_by.get(r, ()):
                trace.record(r, "halt", pid=labels[j], decision=decisions[j])
            trace.record(
                r,
                "round",
                sent=int(self._sent[r - 1, t]),
                crashes=int(self._crashes[r - 1, t]),
                running=int(self._running[r - 1, t]),
            )

    def check_trial(self, t: int) -> None:
        """Renaming-spec check of one trial with the scalar wording."""
        check_renaming(self.result(t), RenamingSpec(n=self.n))

    def spec_ok(self) -> "np.ndarray":
        """(T,) vectorized spec screen; flagged trials re-check scalar.

        A trial passes iff every correct (non-crashed) process decided a
        distinct name in ``0..n-1`` and halted — the four
        :func:`check_renaming` conditions over correct processes.
        """
        correct = ~self.crashed
        dec = self.decisions
        decided = dec >= 0
        ok = (decided | ~correct).all(axis=1)
        ok &= (~(correct & decided) | self.halted).all(axis=1)
        ok &= (~(correct & decided) | (dec < self.n)).all(axis=1)
        live = correct & decided
        tg, ti = np.nonzero(live)
        if tg.size:
            names = np.clip(dec[tg, ti], 0, self.n - 1)
            counts = np.bincount(
                tg * self.n + names, minlength=self.trials * self.n
            ).reshape(self.trials, self.n)
            ok &= (counts <= 1).all(axis=1)
        return ok

    def check(self) -> None:
        """Spec check for every trial; first violation raises scalar-worded."""
        ok = self.spec_ok()
        if bool(ok.all()):
            return
        bad = int(np.flatnonzero(~ok)[0])
        self.check_trial(bad)
        raise AssertionError(  # pragma: no cover - checker always raises
            f"vectorized crash screen flagged trial {bad} but "
            "check_renaming passed"
        )


def run_stacked_cell(
    ids: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    policy: str,
    halt_on_name: bool = False,
    crash_budget: Optional[int] = None,
    max_rounds: Optional[int] = None,
    monitor: str = "off",
    adversaries: Optional[Sequence] = None,
):
    """Execute ``len(seeds)`` trials of one cell as one stacked pass.

    Without ``adversaries`` (or with every entry None/:class:`NoFailures`)
    this is the failure-free stack returning :class:`StackedCellRun`.
    With any crashing adversary it builds the crash engine instead and
    returns :class:`StackedCrashCellRun`; entry ``t`` of ``adversaries``
    is the already-built instance driving trial ``t`` (the caller owns
    seed-faithful construction, exactly like the scalar kernels).
    """
    n = len(ids)
    if crash_budget is not None and not 0 <= crash_budget < n:
        raise ConfigurationError(
            f"crash budget must satisfy 0 <= t < n; got t={crash_budget}, n={n}"
        )
    limit = max_rounds if max_rounds is not None else default_round_limit(n, crash_budget)
    crashy = adversaries is not None and any(
        adv is not None and type(adv) is not NoFailures for adv in adversaries
    )
    if crashy:
        from repro.core.vectorized import VectorizedCrashEngine

        if monitor != "off":
            raise ConfigurationError(
                "stacked crash cells run unmonitored; per-trial kernels "
                "cover monitored crash runs"
            )
        budget = crash_budget if crash_budget is not None else n - 1
        engine = VectorizedCrashEngine(
            ids,
            list(seeds),
            policy=policy,
            halt_on_name=halt_on_name,
            adversaries=list(adversaries),
            crash_budget=budget,
            max_rounds=limit,
        )
        # Telemetry: "movement" on the stacked path is the whole array
        # program, inclusive of the nested "twist" passes the stream
        # bank runs on demand (seeding was attributed at construction).
        timer_started = TIMERS.start()
        engine.run()
        TIMERS.stop("movement", timer_started)
        return StackedCrashCellRun(engine, seeds)
    from repro.core.vectorized import VectorizedCellEngine

    engine = VectorizedCellEngine(
        ids,
        list(seeds),
        policy=policy,
        halt_on_name=halt_on_name,
        max_rounds=limit,
    )
    observer = None
    if monitor != "off":
        from repro.monitor.invariants import StackedMonitor

        observer = StackedMonitor(engine)
    timer_started = TIMERS.start()
    engine.run(observer=_timed_monitor(observer))
    TIMERS.stop("movement", timer_started)
    return StackedCellRun(engine, seeds, monitor=observer)


def _timed_monitor(observer):
    """Wrap a stacked-monitor observer so its screens report as the
    ``monitor`` telemetry stage (nested inside stacked ``movement``)."""
    if observer is None or not TIMERS.enabled:
        return observer

    def observe(engine, round_no, active):
        timer_started = TIMERS.start()
        observer(engine, round_no, active)
        TIMERS.stop("monitor", timer_started)

    return observe


class VectorizedKernel(SimulationKernel):
    """Trial-stacked NumPy fast path (single runs are a 1-trial stack)."""

    name = "vectorized"

    def rejects(self, request: KernelRequest) -> Optional[str]:
        if request.policy is None:
            return (
                f"algorithm {request.algorithm!r} is not Balls-into-Leaves-"
                "based; its broadcasts are not position announcements over "
                "a shared view"
            )
        adversary = request.adversary
        failure = certification_failure(adversary, supported=("crash",))
        if failure is not None:
            return failure
        crashy = adversary is not None and type(adversary) is not NoFailures
        if crashy and request.monitor != "off":
            return (
                "monitors observe per-trial crash engines; stacked crash "
                "cells run unmonitored"
            )
        if request.trace is not None and request.trace_mode != "cheap":
            return (
                "full trace recording observes the reference engine's "
                "message-level events; cheap tracing runs stacked"
            )
        if request.collect_phase_stats:
            return "phase statistics observe the reference view store"
        if request.monitor == "full":
            return (
                "monitor='full' audits the reference engine's instrumented "
                "movement; cheap monitoring runs stacked"
            )
        from repro.core.vectorized import vectorized_rejections

        # Under cheap monitoring the stacked monitor takes over invariant
        # checking, so the engine-level rejection does not apply.
        config = BallsIntoLeavesConfig(
            path_policy=request.policy,
            view_mode=request.view_mode,
            check_invariants=(
                request.check_invariants and request.monitor == "off"
            ),
            halt_on_name=request.halt_on_name,
        )
        reasons = vectorized_rejections(config)
        if reasons:
            return "; ".join(reasons)
        return None

    def run(self, request: KernelRequest) -> KernelRun:
        n = request.n
        # Same validation the scalar kernels apply, so pinning the kernel
        # never relaxes it.
        if not 0 <= request.crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; "
                f"got t={request.crash_budget}, n={n}"
            )
        adversary = request.adversary
        crashy = adversary is not None and type(adversary) is not NoFailures
        cell = run_stacked_cell(
            request.ids,
            [request.seed],
            policy=request.policy,
            halt_on_name=request.halt_on_name,
            crash_budget=request.crash_budget,
            max_rounds=request.max_rounds,
            monitor=request.monitor,
            adversaries=[adversary] if crashy else None,
        )
        if crashy and bool(cell.overrun[0]):
            raise RoundLimitExceeded(
                request.max_rounds, int(cell.running_at_limit[0])
            )
        if request.trace is not None:
            cell.trace(0, sink=request.trace)
        return KernelRun(
            result=cell.result(0),
            last_round_named=cell.last_round_named(0),
            phase_stats=[],
            kernel=self.name,
            violations=cell.violations(0),
        )


def cell_rejection(request: KernelRequest) -> Optional[str]:
    """Why a whole cell shaped like ``request`` cannot stack (None = it can).

    One shared gate for the batch dispatcher and the kernel selector, so
    an ``auto`` batch upgrades exactly the cells a pinned
    ``kernel="vectorized"`` would accept.
    """
    return VectorizedKernel().rejects(request)
