"""The vectorized kernel: a stacked cell of trials as one array program.

Wraps :class:`repro.core.vectorized.VectorizedCellEngine` in two shapes:

* :class:`VectorizedKernel` — the :class:`~repro.sim.kernel.SimulationKernel`
  face, so ``kernel="vectorized"`` works anywhere a kernel name does
  (``run_renaming``, trial specs, the CLI).  A single run is just a
  one-trial stack; the payoff comes from the second shape.
* :func:`run_stacked_cell` — the cell-granular entry point used by
  :mod:`repro.sim.batch`: all ``T`` failure-free trials of one
  scenario-matrix cell execute as one vectorized pass, amortizing the
  interpreter, the topology, and the RNG machinery across the whole
  cell instead of paying them per trial.

Everything the stack produces is bit-for-bit what the columnar (and
hence reference) kernel produces trial by trial — same
:class:`~repro.sim.simulator.SimulationResult`, same metrics rows, same
tables — which is what lets ``auto`` batches upgrade cells to this path
without observable change (asserted by the differential suite).

NumPy is optional: without it :func:`vectorized_available` is False,
``auto`` keeps using the columnar engine, and pinning
``kernel="vectorized"`` raises :class:`~repro.errors.KernelUnsupported`
with an install hint.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.adversary.none import NoFailures
from repro.core.config import BallsIntoLeavesConfig
from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.kernel import KernelRequest, KernelRun, SimulationKernel
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.runner import default_round_limit
from repro.sim.simulator import SimulationResult

if HAVE_NUMPY:
    import numpy as np


def vectorized_available() -> bool:
    """True when the optional NumPy extra is importable."""
    return HAVE_NUMPY


class StackedCellRun:
    """Outcome of one stacked cell: per-trial results, columnar layout.

    Scalar accessors (:meth:`result`, :meth:`metrics`) materialize the
    exact per-trial objects of the scalar kernels; the batch layer reads
    the flat arrays directly so a 100-trial cell never builds what it
    does not need.
    """

    def __init__(self, engine, seeds: Sequence[int], monitor=None) -> None:
        self._engine = engine
        self._monitor = monitor
        self.seeds = list(seeds)
        self.labels = engine.labels
        self.n = engine.n
        self.trials = engine.trials
        self.rounds = engine.rounds
        #: (T, n) decided names, label-rank order.
        self.decisions = engine.decision.reshape(engine.trials, engine.n)
        self.round_named = engine.round_named.reshape(engine.trials, engine.n)
        senders = np.stack(engine.round_senders) if engine.round_senders else (
            np.zeros((0, engine.trials), dtype=np.int64)
        )
        #: (T,) total broadcasts / deliveries, matching the failure-free
        #: metrics rule (every running sender reaches every running
        #: process, itself included).
        self.messages_sent = senders.sum(axis=0, dtype=np.int64)
        self.messages_delivered = (
            (senders.astype(np.int64) ** 2).sum(axis=0, dtype=np.int64)
        )
        self._senders = senders
        self._running_after = (
            np.stack(engine.round_running_after)
            if engine.round_running_after
            else np.zeros((0, engine.trials), dtype=np.int64)
        )
        self._participants = frozenset(self.labels)

    def last_round_named(self, t: int) -> Optional[int]:
        """Latest naming round of trial ``t``."""
        return self._engine.last_round_named(t)

    def violations(self, t: int) -> list:
        """Trial ``t``'s monitor findings ([] when monitoring was off)."""
        if self._monitor is None:
            return []
        return self._monitor.violations(t)

    def metrics(self, t: int) -> SimulationMetrics:
        """Trial ``t``'s per-round metrics, as the scalar kernels record them."""
        metrics = SimulationMetrics()
        n = self.n
        for r in range(int(self.rounds[t])):
            sent = int(self._senders[r, t])
            metrics.record(
                RoundMetrics(
                    round_no=r + 1,
                    messages_sent=sent,
                    messages_delivered=sent * sent,
                    crashes=0,
                    alive_after=n,
                    running_after=int(self._running_after[r, t]),
                )
            )
        return metrics

    def result(self, t: int) -> SimulationResult:
        """Trial ``t``'s full :class:`SimulationResult` (bit-identical)."""
        decisions = dict(zip(self.labels, self.decisions[t].tolist()))
        return SimulationResult(
            rounds=int(self.rounds[t]),
            decisions=decisions,
            crashed=frozenset(),
            halted=self._participants,
            metrics=self.metrics(t),
            trace=None,
            participants=self._participants,
        )

    def check(self) -> None:
        """Renaming-spec check for every trial, vectorized.

        Termination is structural (the stack only returns when every
        ball halted), so validity + uniqueness reduce to: each trial's
        decisions are a permutation of ``0..n-1``.  A violating trial is
        re-checked through :func:`check_renaming` so the raised
        :class:`~repro.errors.SpecViolation` carries the exact scalar
        wording.
        """
        dec = self.decisions
        expected = np.arange(self.n, dtype=dec.dtype)
        ok = (np.sort(dec, axis=1) == expected).all(axis=1)
        if bool(ok.all()):
            return
        bad = int(np.flatnonzero(~ok)[0])
        check_renaming(self.result(bad), RenamingSpec(n=self.n))
        raise AssertionError(  # pragma: no cover - checker always raises
            f"vectorized checker flagged trial {bad} but check_renaming passed"
        )


def run_stacked_cell(
    ids: Sequence[Hashable],
    seeds: Sequence[int],
    *,
    policy: str,
    halt_on_name: bool = False,
    crash_budget: Optional[int] = None,
    max_rounds: Optional[int] = None,
    monitor: str = "off",
) -> StackedCellRun:
    """Execute ``len(seeds)`` failure-free trials as one stacked pass."""
    from repro.core.vectorized import VectorizedCellEngine

    n = len(ids)
    if crash_budget is not None and not 0 <= crash_budget < n:
        raise ConfigurationError(
            f"crash budget must satisfy 0 <= t < n; got t={crash_budget}, n={n}"
        )
    limit = max_rounds if max_rounds is not None else default_round_limit(n, crash_budget)
    engine = VectorizedCellEngine(
        ids,
        list(seeds),
        policy=policy,
        halt_on_name=halt_on_name,
        max_rounds=limit,
    )
    observer = None
    if monitor != "off":
        from repro.monitor.invariants import StackedMonitor

        observer = StackedMonitor(engine)
    engine.run(observer=observer)
    return StackedCellRun(engine, seeds, monitor=observer)


class VectorizedKernel(SimulationKernel):
    """Trial-stacked NumPy fast path (single runs are a 1-trial stack)."""

    name = "vectorized"

    def rejects(self, request: KernelRequest) -> Optional[str]:
        if request.policy is None:
            return (
                f"algorithm {request.algorithm!r} is not Balls-into-Leaves-"
                "based; its broadcasts are not position announcements over "
                "a shared view"
            )
        adversary = request.adversary
        if adversary is not None and type(adversary) is not NoFailures:
            return (
                f"adversary type {type(adversary).__name__} crashes "
                "processes; the trial-stacked layout models failure-free "
                "cells only (the columnar crash engine covers certified "
                "adversaries)"
            )
        if request.trace is not None:
            return "trace recording observes the reference engine's events"
        if request.collect_phase_stats:
            return "phase statistics observe the reference view store"
        if request.monitor == "full":
            return (
                "monitor='full' audits the reference engine's instrumented "
                "movement; cheap monitoring runs stacked"
            )
        from repro.core.vectorized import vectorized_rejections

        # Under cheap monitoring the stacked monitor takes over invariant
        # checking, so the engine-level rejection does not apply.
        config = BallsIntoLeavesConfig(
            path_policy=request.policy,
            view_mode=request.view_mode,
            check_invariants=(
                request.check_invariants and request.monitor == "off"
            ),
            halt_on_name=request.halt_on_name,
        )
        reasons = vectorized_rejections(config)
        if reasons:
            return "; ".join(reasons)
        return None

    def run(self, request: KernelRequest) -> KernelRun:
        n = request.n
        # Same validation the scalar kernels apply, so pinning the kernel
        # never relaxes it.
        if not 0 <= request.crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; "
                f"got t={request.crash_budget}, n={n}"
            )
        cell = run_stacked_cell(
            request.ids,
            [request.seed],
            policy=request.policy,
            halt_on_name=request.halt_on_name,
            crash_budget=request.crash_budget,
            max_rounds=request.max_rounds,
            monitor=request.monitor,
        )
        return KernelRun(
            result=cell.result(0),
            last_round_named=cell.last_round_named(0),
            phase_stats=[],
            kernel=self.name,
            violations=cell.violations(0),
        )


def cell_rejection(request: KernelRequest) -> Optional[str]:
    """Why a whole cell shaped like ``request`` cannot stack (None = it can).

    One shared gate for the batch dispatcher and the kernel selector, so
    an ``auto`` batch upgrades exactly the cells a pinned
    ``kernel="vectorized"`` would accept.
    """
    return VectorizedKernel().rejects(request)
