"""The columnar kernel: BiL-family runs as flat-array passes.

Wraps the engines of :mod:`repro.core.columnar` in the
:class:`~repro.sim.kernel.SimulationKernel` interface: sequences the
lock-step rounds, produces the same per-round
:class:`~repro.sim.metrics.RoundMetrics` the reference engine records,
and assembles an identical :class:`~repro.sim.simulator.SimulationResult`
— bit-for-bit, as asserted by the differential suite.

Two array engines split the work:

* failure-free runs (no adversary, or ``NoFailures``) execute on
  :class:`~repro.core.columnar.ColumnarBallsEngine`, the single-shared-
  view fast path that never materializes a message;
* runs under a *certified* crashing adversary execute on
  :class:`~repro.core.columnar.ColumnarCrashEngine`, which reproduces
  partial deliveries, receiver equivalence classes, and the
  announced-termination lifecycle (halt-on-name) as per-ball status
  columns and per-round crash masks.

Of the fault families (:data:`~repro.adversary.base.FAULT_FAMILIES`),
this kernel applies ``crash`` and ``omission`` — an omitting sender folds
into the same partial-delivery camp machinery as a crash victim, without
being marked crashed.  ``delay`` and ``corruption`` adversaries are
rejected by name here and run on the reference engine.

Certified adversaries are the strategies whose plans are a pure function
of the public :class:`~repro.adversary.base.AdversaryContext` fields
(round, running/alive sets, outbox payloads, own RNG), declared where the
strategy is written via the
:func:`~repro.adversary.certification.certified` decorator — one
registry shared with :mod:`repro.search.schedule`, so searched schedules
are eligible without re-declaration.  Custom adversary types may
introspect process objects the fast path never materializes, so they are
rejected and ``auto`` selection falls back to the reference kernel.  Also rejected (they observe reference-engine
internals): ``full`` traces, phase statistics, invariant checking, the
paper-verbatim ``faithful`` view store, and non-BiL algorithms.  Cheap
traces (``trace="cheap"``) stay on the fast path: each round's
crash/omit/name/halt deltas and the position snapshot are appended
straight from the engine's flat arrays, and the differential suite pins
that they project onto the same shared event schema as the reference
engine's full stream.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.certification import certification_failure
from repro.adversary.none import NoFailures
from repro.core.instrumentation import TIMERS
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.sim.kernel import KernelRequest, KernelRun, SimulationKernel
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.simulator import SimulationResult


class ColumnarKernel(SimulationKernel):
    """Flat-array fast path for Balls-into-Leaves sweeps."""

    name = "columnar"

    def rejects(self, request: KernelRequest) -> Optional[str]:
        if request.policy is None:
            return (
                f"algorithm {request.algorithm!r} is not Balls-into-Leaves-"
                "based; its broadcasts are not position announcements over "
                "a shared view"
            )
        failure = certification_failure(
            request.adversary, supported=("crash", "omission")
        )
        if failure is not None:
            return failure
        if request.trace is not None and request.trace_mode != "cheap":
            return (
                "full trace recording observes the reference engine's "
                "message-level events; cheap tracing runs columnar"
            )
        if request.collect_phase_stats:
            return "phase statistics observe the reference view store"
        if request.monitor == "full":
            return (
                "monitor='full' audits the reference engine's instrumented "
                "movement; cheap monitoring runs columnar"
            )
        # Config-level knobs (policy, view mode, invariant checking) share
        # one gatekeeper with the engine itself.  Under cheap monitoring
        # the flat-array monitors take over invariant checking, so the
        # engine-level check_invariants rejection does not apply.
        from repro.core.columnar import columnar_rejections
        from repro.core.config import BallsIntoLeavesConfig

        config = BallsIntoLeavesConfig(
            path_policy=request.policy,
            view_mode=request.view_mode,
            check_invariants=(
                request.check_invariants and request.monitor == "off"
            ),
            halt_on_name=request.halt_on_name,
        )
        reasons = columnar_rejections(config)
        if reasons:
            return "; ".join(reasons)
        return None

    def run(self, request: KernelRequest) -> KernelRun:
        n = request.n
        # Same validation the reference Simulation constructor applies, so
        # pinning the kernel never relaxes it (view-mode and policy names
        # were already validated by the config built in rejects()).
        if not 0 <= request.crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; "
                f"got t={request.crash_budget}, n={n}"
            )
        adversary = request.adversary
        if adversary is None or type(adversary) is NoFailures:
            return self._run_failure_free(request)
        return self._run_with_adversary(request)

    # ------------------------------------------------------------ failure-free
    def _run_failure_free(self, request: KernelRequest) -> KernelRun:
        from repro.core.columnar import ColumnarBallsEngine

        n = request.n
        timer_started = TIMERS.start()
        engine = ColumnarBallsEngine(
            request.ids,
            seed=request.seed,
            policy=request.policy,
            halt_on_name=request.halt_on_name,
        )
        TIMERS.stop("seeding", timer_started)
        monitor = _build_monitor(request)
        metrics = SimulationMetrics()
        round_no = 0
        while engine.running_count:
            if round_no >= request.max_rounds:
                raise RoundLimitExceeded(request.max_rounds, engine.running_count)
            round_no += 1
            senders = engine.running_count
            timer_started = TIMERS.start()
            engine.step(round_no)
            TIMERS.stop("movement", timer_started)
            if monitor is not None:
                from repro.monitor.invariants import observe_balls_engine

                timer_started = TIMERS.start()
                observe_balls_engine(monitor, engine, round_no)
                TIMERS.stop("monitor", timer_started)
                _abort_on_deadlock(monitor)
            # Failure-free: every running process broadcasts, every
            # running process receives every broadcast (self included).
            metrics.record(
                RoundMetrics(
                    round_no=round_no,
                    messages_sent=senders,
                    messages_delivered=senders * senders,
                    crashes=0,
                    alive_after=n,
                    running_after=engine.running_count,
                )
            )
            if request.trace is not None:
                _record_cheap_round(
                    request.trace,
                    engine,
                    round_no,
                    sent=senders,
                    crashes=0,
                    running=engine.running_count,
                )
        labels = engine.labels
        decisions = {
            pid: engine.decision[j] for j, pid in enumerate(labels)
        }
        result = SimulationResult(
            rounds=round_no,
            decisions=decisions,
            crashed=frozenset(),
            halted=frozenset(labels),
            metrics=metrics,
            trace=request.trace,
            participants=frozenset(labels),
        )
        return KernelRun(
            result=result,
            last_round_named=engine.last_round_named(),
            phase_stats=[],
            kernel=self.name,
            violations=[] if monitor is None else monitor.violations,
        )

    # ---------------------------------------------------------- with crashes
    def _run_with_adversary(self, request: KernelRequest) -> KernelRun:
        from repro.core.columnar import ColumnarCrashEngine

        timer_started = TIMERS.start()
        engine = ColumnarCrashEngine(
            request.ids,
            seed=request.seed,
            policy=request.policy,
            halt_on_name=request.halt_on_name,
            adversary=request.adversary,
            crash_budget=request.crash_budget,
        )
        TIMERS.stop("seeding", timer_started)
        monitor = _build_monitor(request)
        metrics = SimulationMetrics()
        round_no = 0
        while engine.running_count:
            if round_no >= request.max_rounds:
                raise RoundLimitExceeded(request.max_rounds, engine.running_count)
            round_no += 1
            timer_started = TIMERS.start()
            engine.step(round_no)
            TIMERS.stop("movement", timer_started)
            if monitor is not None:
                from repro.monitor.invariants import observe_crash_engine

                timer_started = TIMERS.start()
                observe_crash_engine(monitor, engine, round_no)
                TIMERS.stop("monitor", timer_started)
                _abort_on_deadlock(monitor)
            metrics.record(
                RoundMetrics(
                    round_no=round_no,
                    messages_sent=engine.last_sent,
                    messages_delivered=engine.last_delivered,
                    crashes=engine.last_crashes,
                    alive_after=engine.last_alive,
                    running_after=engine.last_running,
                    omissions=engine.last_omissions,
                )
            )
            if request.trace is not None:
                _record_cheap_round(
                    request.trace,
                    engine,
                    round_no,
                    sent=engine.last_sent,
                    crashes=engine.last_crashes,
                    running=engine.last_running,
                    omitters=engine.last_omitters,
                )
        labels = engine.labels
        decisions = {
            pid: engine.decision[j] for j, pid in enumerate(labels)
        }
        crashed = frozenset(
            pid for j, pid in enumerate(labels) if engine.crashed[j]
        )
        halted = frozenset(
            pid for j, pid in enumerate(labels) if engine.halted[j]
        )
        result = SimulationResult(
            rounds=round_no,
            decisions=decisions,
            crashed=crashed,
            halted=halted,
            metrics=metrics,
            trace=request.trace,
            participants=frozenset(labels),
        )
        return KernelRun(
            result=result,
            last_round_named=engine.last_round_named(),
            phase_stats=[],
            kernel=self.name,
            violations=[] if monitor is None else monitor.violations,
        )


def _record_cheap_round(
    trace, engine, round_no: int, *, sent: int, crashes: int, running: int,
    omitters=(),
) -> None:
    """Append one round's cheap events from the engine's flat arrays.

    Event order within a round is fixed (crash, omit, name, halt, pos,
    round) and pid order within a kind is label-rank order — the
    ``shared_events`` projection sorts, so this only pins the serialized
    layout, not equivalence with the reference stream.
    """
    labels = engine.labels
    round_crashed = getattr(engine, "round_crashed", None)
    if round_crashed is not None:
        for j, crashed_at in enumerate(round_crashed):
            if crashed_at == round_no:
                trace.record(round_no, "crash", pid=labels[j])
    for j in omitters:
        trace.record(round_no, "omit", pid=labels[j])
    for j, named_at in enumerate(engine.round_named):
        if named_at == round_no:
            trace.record(round_no, "name", pid=labels[j], name=engine.decision[j])
    for j, halted_at in enumerate(engine.round_halted):
        if halted_at == round_no:
            trace.record(
                round_no, "halt", pid=labels[j], decision=engine.decision[j]
            )
    trace.record(round_no, "pos", nodes=engine.positions())
    trace.record(round_no, "round", sent=sent, crashes=crashes, running=running)


def _build_monitor(request: KernelRequest):
    """A fresh :class:`~repro.monitor.invariants.RunMonitor`, or None."""
    if request.monitor == "off":
        return None
    from repro.monitor.invariants import RunMonitor
    from repro.tree.topology import cached_topology

    return RunMonitor(
        sorted(request.ids),
        cached_topology(request.n).arrays(),
        halt_on_name=request.halt_on_name,
    )


def _abort_on_deadlock(monitor) -> None:
    """Stop a provably wedged run now instead of spinning to the limit."""
    if monitor.deadlocked:
        from repro.errors import MonitorViolation

        raise MonitorViolation(monitor.violations)
