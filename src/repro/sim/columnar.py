"""The columnar kernel: failure-free BiL-family runs as array passes.

Wraps :class:`repro.core.columnar.ColumnarBallsEngine` in the
:class:`~repro.sim.kernel.SimulationKernel` interface: sequences the
lock-step rounds, produces the same per-round
:class:`~repro.sim.metrics.RoundMetrics` the reference engine records,
and assembles an identical :class:`~repro.sim.simulator.SimulationResult`
— bit-for-bit, as asserted by the differential suite.

Scope (everything else is rejected so ``auto`` selection falls back):

* BiL-family algorithms only (``flood`` has no shared-view structure);
* no crashing adversary — a single shared view exists only while every
  broadcast reaches everyone, and adversaries may also inspect payloads
  the fast path never materializes;
* no trace, phase statistics, or invariant checking — those observe the
  reference engine's internals;
* the default ``shared`` view mode only — asking for the paper-verbatim
  ``faithful`` per-ball store is asking for the reference engine itself.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.none import NoFailures
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.sim.kernel import KernelRequest, KernelRun, SimulationKernel
from repro.sim.metrics import RoundMetrics, SimulationMetrics
from repro.sim.simulator import SimulationResult


class ColumnarKernel(SimulationKernel):
    """Flat-array fast path for failure-free Balls-into-Leaves sweeps."""

    name = "columnar"

    def rejects(self, request: KernelRequest) -> Optional[str]:
        if request.policy is None:
            return (
                f"algorithm {request.algorithm!r} is not Balls-into-Leaves-"
                "based; its broadcasts are not position announcements over "
                "a shared view"
            )
        if request.adversary is not None and not isinstance(
            request.adversary, NoFailures
        ):
            return (
                f"adversary {type(request.adversary).__name__} may crash "
                "processes or inspect payloads; the columnar layout models "
                "only the failure-free shared view"
            )
        if request.trace is not None:
            return "trace recording observes the reference engine's events"
        if request.collect_phase_stats:
            return "phase statistics observe the reference view store"
        # Config-level knobs (policy, view mode, invariant checking) share
        # one gatekeeper with the engine itself.
        from repro.core.columnar import columnar_rejections
        from repro.core.config import BallsIntoLeavesConfig

        config = BallsIntoLeavesConfig(
            path_policy=request.policy,
            view_mode=request.view_mode,
            check_invariants=request.check_invariants,
            halt_on_name=request.halt_on_name,
        )
        reasons = columnar_rejections(config)
        if reasons:
            return "; ".join(reasons)
        return None

    def run(self, request: KernelRequest) -> KernelRun:
        from repro.core.columnar import ColumnarBallsEngine

        n = request.n
        # Same validation the reference Simulation constructor applies, so
        # pinning the kernel never relaxes it (view-mode and policy names
        # were already validated by the config built in rejects()).
        if not 0 <= request.crash_budget < n:
            raise ConfigurationError(
                f"crash budget must satisfy 0 <= t < n; "
                f"got t={request.crash_budget}, n={n}"
            )
        engine = ColumnarBallsEngine(
            request.ids,
            seed=request.seed,
            policy=request.policy,
            halt_on_name=request.halt_on_name,
        )
        metrics = SimulationMetrics()
        round_no = 0
        while engine.running_count:
            if round_no >= request.max_rounds:
                raise RoundLimitExceeded(request.max_rounds, engine.running_count)
            round_no += 1
            senders = engine.running_count
            engine.step(round_no)
            # Failure-free: every running process broadcasts, every
            # running process receives every broadcast (self included).
            metrics.record(
                RoundMetrics(
                    round_no=round_no,
                    messages_sent=senders,
                    messages_delivered=senders * senders,
                    crashes=0,
                    alive_after=n,
                    running_after=engine.running_count,
                )
            )
        labels = engine.labels
        decisions = {
            pid: engine.decision[j] for j, pid in enumerate(labels)
        }
        result = SimulationResult(
            rounds=round_no,
            decisions=decisions,
            crashed=frozenset(),
            halted=frozenset(labels),
            metrics=metrics,
            trace=None,
            participants=frozenset(labels),
        )
        return KernelRun(
            result=result,
            last_round_named=engine.last_round_named(),
            phase_stats=[],
            kernel=self.name,
        )
