"""The process protocol of the lock-step model.

A process alternates ``compose`` (produce this round's broadcast) and
``deliver`` (consume this round's inbox and update state).  The simulator
guarantees: ``compose(r)`` then ``deliver(r, inbox)`` for r = 1, 2, ...,
until the process halts or crashes.  The inbox maps sender pid to payload
and always includes the process's own message (a process knows what it
sent; Section 3's model lets it keep local knowledge regardless).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Optional

from repro.errors import ProtocolViolation
from repro.ids import ProcessId


class SyncProcess(ABC):
    """Base class for processes driven by :class:`repro.sim.Simulation`."""

    def __init__(self, pid: ProcessId) -> None:
        self._pid = pid
        self._halted = False
        self._decision: Optional[Any] = None
        self._decided = False

    # --------------------------------------------------------------- identity
    @property
    def pid(self) -> ProcessId:
        """This process's unique original identifier."""
        return self._pid

    # ----------------------------------------------------------------- status
    @property
    def halted(self) -> bool:
        """True once the process has stopped taking steps (terminated)."""
        return self._halted

    @property
    def decided(self) -> bool:
        """True once the process has fixed its output."""
        return self._decided

    @property
    def decision(self) -> Optional[Any]:
        """The decided value, or ``None`` before deciding."""
        return self._decision

    def decide(self, value: Any) -> None:
        """Fix the output value.  Deciding twice with a new value is a bug."""
        if self._decided and self._decision != value:
            raise ProtocolViolation(
                f"process {self._pid!r} tried to change its decision from "
                f"{self._decision!r} to {value!r}"
            )
        self._decision = value
        self._decided = True

    def halt(self) -> None:
        """Stop participating.  A halted process broadcasts nothing."""
        self._halted = True

    # -------------------------------------------------------------- the steps
    @abstractmethod
    def compose(self, round_no: int) -> Any:
        """Return this round's broadcast payload (``None`` = stay silent)."""

    @abstractmethod
    def deliver(self, round_no: int, inbox: Mapping[ProcessId, Any]) -> None:
        """Consume the round's inbox and update local state."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self._halted else "running"
        return f"{type(self).__name__}(pid={self._pid!r}, {state})"
