"""Event tracing: the ``trace={off,cheap,full}`` observability knob.

Tracing is opt-in and comes in two flavours.  ``full`` is the original
reference-engine instrumentation: every message-level event the lock-step
simulator sees, recorded as the run executes — the richest stream, but it
pins the slow spec engine.  ``cheap`` is the fast-path mode: the columnar
and vectorized kernels append per-round deltas straight from their flat
arrays (who crashed, who was silenced, who named, who halted, plus the
per-round aggregate row), so sweeps and hunts can capture timelines at
bounded overhead.

The two modes deliberately share a projection — :func:`shared_events`
maps any trace onto the kernel-independent event schema (``round``,
``crash``, ``omit``, ``halt``) — and the differential suite
(``tests/sim/test_trace_modes.py``) pins that a ``full`` reference trace
and a ``cheap`` columnar trace of the same run project identically.
Cheap traces additionally carry ``name`` events (ball → decided name,
with the round it was decided) and, on the columnar kernel, per-round
``pos`` snapshots of every ball's tree position; those extras are
outside the shared schema because the reference engine records finer
message-level events instead.

Traces persist as jsonl (always) or npz (NumPy installs), content-
addressed by the trial's spec digest: ``trace-<digest>.jsonl`` names the
execution it came from, so a scenario file can point at its trace and a
re-run can verify it landed on the same bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Trace modes accepted by the runner, the batch engine, and the CLI.
#: ``off`` records nothing, ``cheap`` appends per-round deltas from the
#: fast kernels' flat arrays, ``full`` pins the reference engine's
#: message-level instrumentation.
TRACE_MODES = ("off", "cheap", "full")

#: Serialized trace format marker (header line of every trace file).
TRACE_FORMAT = "repro-trace/1"

#: Event kinds every tracing kernel agrees on; :func:`shared_events`
#: projects a trace of either mode onto exactly these.
SHARED_EVENT_KINDS = frozenset({"round", "crash", "omit", "halt"})


def check_trace_mode(mode: str) -> str:
    """Validate a trace mode string, returning it."""
    if mode not in TRACE_MODES:
        raise ConfigurationError(
            f"unknown trace mode {mode!r}; choose from {TRACE_MODES}"
        )
    return mode


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is ``'round'``, ``'crash'``, ``'omit'``, ``'halt'`` (the
    shared schema), a reference-only message event (``'corrupt'``,
    ``'delay'``), or a cheap-only delta (``'name'``, ``'pos'``).
    """

    round_no: int
    kind: str
    data: Dict[str, Any]


class Trace:
    """An append-only list of :class:`TraceEvent` with simple filters.

    A trace may be *lazy*: constructed with a builder callable that is
    invoked (once, with the trace as its argument) the first time any
    event is read.  The stacked kernel uses this for its post-hoc cheap
    traces — the per-event Python objects for a 100-trial cell are only
    built for the trials whose timeline somebody actually reads, the
    same pay-per-read contract as its scalar ``result()`` accessors.
    """

    def __init__(self, _builder: Optional[Any] = None) -> None:
        self._events: List[TraceEvent] = []
        self._builder = _builder

    def _all(self) -> List[TraceEvent]:
        """The event list, materializing a lazy trace on first read."""
        if self._builder is not None:
            builder, self._builder = self._builder, None
            builder(self)
        return self._events

    def record(self, round_no: int, kind: str, **data: Any) -> None:
        """Append an event."""
        self._all().append(TraceEvent(round_no, kind, data))

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally restricted to one kind."""
        if kind is None:
            return list(self._all())
        return [event for event in self._all() if event.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._all())

    def __len__(self) -> int:
        return len(self._all())

    def __eq__(self, other: object) -> bool:
        """Event-list equality, so results carrying traces compare by
        value across executors (the serial == multiprocessing pin)."""
        if not isinstance(other, Trace):
            return NotImplemented
        return self._all() == other._all()

    def __reduce__(self):
        """Pickle by value: a lazy trace crossing a process boundary
        materializes first (its builder closes over engine arrays that
        must not ride along)."""
        return (_trace_from_events, (self._all(),))

    # Value equality makes traces unhashable, like the lists they wrap.
    __hash__ = None  # type: ignore[assignment]


def _trace_from_events(events: List[TraceEvent]) -> Trace:
    """Rebuild a (materialized) trace from its event list (unpickling)."""
    trace = Trace()
    trace._events = list(events)
    return trace


#: One projected event: ``(round_no, kind, payload)`` where the payload
#: shape is fixed per kind (see :func:`shared_events`).
SharedEvent = Tuple[int, str, Tuple[Any, ...]]


def shared_events(trace: Trace) -> List[SharedEvent]:
    """Project a trace onto the kernel-independent event schema.

    Keeps only the :data:`SHARED_EVENT_KINDS`, normalizes each payload to
    the fields every kernel can produce — ``round`` → ``(sent, crashes,
    running)``, ``crash``/``omit`` → ``(pid,)``, ``halt`` → ``(pid,
    decision)`` — and sorts within a round so delivery-order differences
    between engines (the reference simulator walks its outbox, the
    columnar engine walks label ranks) cannot show through.  Two traces
    of the same execution project equal under this function regardless of
    which kernel and mode produced them.
    """
    rows: List[SharedEvent] = []
    for event in trace:
        if event.kind not in SHARED_EVENT_KINDS:
            continue
        if event.kind == "round":
            payload = (
                event.data["sent"],
                event.data["crashes"],
                event.data["running"],
            )
        elif event.kind == "halt":
            payload = (event.data["pid"], event.data["decision"])
        else:  # crash / omit: the shared schema carries only the victim
            payload = (event.data["pid"],)
        rows.append((event.round_no, event.kind, payload))
    rows.sort(key=lambda row: (row[0], row[1], repr(row[2])))
    return rows


# --------------------------------------------------------------- file formats


def trace_filename(digest: str, *, fmt: str = "jsonl") -> str:
    """Canonical content-addressed trace file name for a spec digest."""
    return f"trace-{digest}.{fmt}"


def _header(digest: str, meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    header: Dict[str, Any] = {"format": TRACE_FORMAT, "digest": digest}
    if meta:
        header["meta"] = {key: meta[key] for key in sorted(meta)}
    return header


def write_trace_jsonl(
    trace: Trace,
    path: str,
    *,
    digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a trace as jsonl: one header line, then one event per line."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_header(digest, meta), sort_keys=True))
        handle.write("\n")
        for event in trace:
            row = {"r": event.round_no, "kind": event.kind, **event.data}
            handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
            handle.write("\n")


def read_trace_jsonl(path: str) -> Tuple[Dict[str, Any], Trace]:
    """Read a jsonl trace file back into ``(header, Trace)``."""
    trace = Trace()
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            raise ConfigurationError(f"empty trace file: {path}")
        header = json.loads(first)
        if header.get("format") != TRACE_FORMAT:
            raise ConfigurationError(
                f"{path}: not a {TRACE_FORMAT} file "
                f"(format={header.get('format')!r})"
            )
        for line in handle:
            if not line.strip():
                continue
            row = json.loads(line)
            round_no = row.pop("r")
            kind = row.pop("kind")
            trace.record(round_no, kind, **row)
    return header, trace


def write_trace_npz(
    trace: Trace,
    path: str,
    *,
    digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a trace as npz (columnar arrays; requires NumPy)."""
    from repro.core.mt19937 import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise ConfigurationError(
            "npz trace output requires numpy (pip install .[fast]); "
            "use the jsonl format instead"
        )
    import numpy as np

    rounds = np.array([event.round_no for event in trace], dtype=np.int64)
    kinds = np.array([event.kind for event in trace])
    payloads = np.array(
        [json.dumps(event.data, sort_keys=True, separators=(",", ":"))
         for event in trace]
    )
    header = np.array(json.dumps(_header(digest, meta), sort_keys=True))
    np.savez_compressed(
        path, header=header, rounds=rounds, kinds=kinds, payloads=payloads
    )


def read_trace_npz(path: str) -> Tuple[Dict[str, Any], Trace]:
    """Read an npz trace file back into ``(header, Trace)``."""
    from repro.core.mt19937 import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise ConfigurationError(
            "reading npz traces requires numpy (pip install .[fast])"
        )
    import numpy as np

    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        if header.get("format") != TRACE_FORMAT:
            raise ConfigurationError(
                f"{path}: not a {TRACE_FORMAT} file "
                f"(format={header.get('format')!r})"
            )
        trace = Trace()
        for round_no, kind, payload in zip(
            archive["rounds"].tolist(),
            archive["kinds"].tolist(),
            archive["payloads"].tolist(),
        ):
            trace.record(int(round_no), str(kind), **json.loads(payload))
    return header, trace


def write_trace(
    trace: Trace,
    path: str,
    *,
    digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a trace, dispatching on the path's extension (jsonl/npz)."""
    if path.endswith(".npz"):
        write_trace_npz(trace, path, digest=digest, meta=meta)
    else:
        write_trace_jsonl(trace, path, digest=digest, meta=meta)


def read_trace(path: str) -> Tuple[Dict[str, Any], Trace]:
    """Read a trace file, dispatching on the path's extension."""
    if path.endswith(".npz"):
        return read_trace_npz(path)
    return read_trace_jsonl(path)
