"""Lightweight event tracing for debugging, tests, and figure rendering.

Tracing is opt-in: experiments at scale run without a trace; unit tests
and the figure-reproduction experiments attach one to inspect exactly what
the engine did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: ``kind`` is 'round', 'crash', 'decide' or 'halt'."""

    round_no: int
    kind: str
    data: Dict[str, Any]


class Trace:
    """An append-only list of :class:`TraceEvent` with simple filters."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, round_no: int, kind: str, **data: Any) -> None:
        """Append an event."""
        self._events.append(TraceEvent(round_no, kind, data))

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally restricted to one kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
