"""The parallel retry scheme as lock-step message-passing processes.

:func:`repro.loadbalance.parallel_retry` models the classic collision/
retry allocation with a *global* free-bin oracle — the consistency
assumption the paper's Section 1 calls out as exactly what crash faults
destroy.  This module re-derives the same scheme on the simulator's
rails so it can run as a TrialSpec workload against real adversaries:
each ball only knows what it has *heard*, so crash and omission faults
produce the divergent bin views (duplicate assignments, wasted bins)
that the oracle version cannot exhibit.

Protocol, per round: every unplaced ball picks a uniformly random bin it
believes free and broadcasts the claim; among the claimants of a bin
*visible in a ball's own inbox*, the smallest pid wins.  A winner
decides its bin (names are bin indices, so a failure-free run is a
tight renaming into ``0..n-1``) and halts; everyone else marks the bin
occupied and retries.  The lowest-pid unplaced ball always wins its own
claim — its inbox always contains its own message — so some ball places
every round and the protocol terminates within ``n`` rounds under any
fault pattern the simulator can apply.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.ids import ProcessId, require_distinct
from repro.sim.process import SyncProcess
from repro.sim.rng import derive_rng

#: Message tag for bin claims.
CLAIM = "pr-claim"


class ParallelRetryProcess(SyncProcess):
    """One ball of the message-passing parallel retry allocation.

    Parameters
    ----------
    pid:
        Unique identifier (claim ties break toward the smallest pid).
    n_bins:
        Size of the shared bin namespace (bins ``0..n_bins-1``).
    seed:
        Base seed; each ball derives an independent stream from
        ``(seed, "parallel-retry", pid)``.
    """

    def __init__(self, pid: ProcessId, *, n_bins: int, seed: int) -> None:
        super().__init__(pid)
        if n_bins < 1:
            raise ConfigurationError(f"need at least one bin, got {n_bins}")
        self._n_bins = n_bins
        self._rng = derive_rng(seed, "parallel-retry", pid)
        self._occupied: Set[int] = set()
        self._claim: Optional[int] = None
        #: Round this ball won its bin (None until placed) — the same
        #: liveness surface the BiL engines expose.
        self.round_named: Optional[int] = None

    @property
    def occupied_view(self) -> Set[int]:
        """Bins this ball believes taken (its local, possibly stale view)."""
        return set(self._occupied)

    def compose(self, round_no: int) -> Any:
        free = [b for b in range(self._n_bins) if b not in self._occupied]
        if not free:
            # Only reachable under faults: with diverged views a peer can
            # be *observed* winning several bins (it saw a smaller
            # claimant and retried), so every bin may look taken.  Claim
            # anywhere rather than wedge — the resulting duplicate name
            # is the honest degradation the fault sweeps measure.
            free = list(range(self._n_bins))
        self._claim = free[self._rng.randrange(len(free))]
        return (CLAIM, self._claim)

    def deliver(self, round_no: int, inbox: Mapping[ProcessId, Any]) -> None:
        claims: List[Tuple[int, ProcessId]] = [
            (payload[1], sender)
            for sender, payload in inbox.items()
            if isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == CLAIM
        ]
        winners = {}
        for bin_no, sender in claims:
            best = winners.get(bin_no)
            if best is None or sender < best:
                winners[bin_no] = sender
        self._occupied.update(winners)
        if winners.get(self._claim) == self.pid:
            self.round_named = round_no
            self.decide(self._claim)
            self.halt()
        self._claim = None


def build_parallel_retry(
    ids: Sequence[ProcessId], *, seed: int = 0
) -> List[ParallelRetryProcess]:
    """One ball per id, competing for a tight ``n``-bin namespace."""
    require_distinct(ids)
    if not ids:
        raise ConfigurationError("parallel retry needs at least one ball")
    return [
        ParallelRetryProcess(pid, n_bins=len(ids), seed=seed) for pid in ids
    ]
