"""The power of two choices.

Each ball samples two bins and joins the lighter one; the maximum load
drops exponentially to ``log log n / log 2 + O(1)`` [18] — the same
doubly-logarithmic flavor as Balls-into-Leaves' round complexity, but as a
*load bound*, not a one-to-one guarantee.
"""

from __future__ import annotations

import random

from repro.loadbalance.bins import BinLoads


def two_choice(
    n_balls: int, n_bins: int, rng: random.Random, *, choices: int = 2
) -> BinLoads:
    """Place each ball in the least loaded of ``choices`` random bins."""
    if n_bins < 1:
        raise ValueError(f"need at least one bin, got {n_bins}")
    if choices < 1:
        raise ValueError(f"need at least one choice, got {choices}")
    loads = [0] * n_bins
    for _ in range(n_balls):
        best = rng.randrange(n_bins)
        for _ in range(choices - 1):
            alternative = rng.randrange(n_bins)
            if loads[alternative] < loads[best]:
                best = alternative
        loads[best] += 1
    return BinLoads(loads)
