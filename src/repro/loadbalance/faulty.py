"""What goes wrong when parallel load balancing meets crash failures.

The paper's Section 1 observation, made executable: parallel retry
schemes assume every ball sees a *consistent* view of which bins are
taken.  Model a crash of the accept-notification step — a bin's "taken"
announcement reaches only some balls — and balls re-claim bins they
believe are free, producing duplicate assignments (a uniqueness
violation) or, if balls conservatively wait, lost slots (a termination
violation).  Balls-into-Leaves exists precisely because avoiding this
under an adaptive adversary is non-trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set


@dataclass(frozen=True)
class FaultyAllocationResult:
    """Outcome of a crash-faulted parallel allocation."""

    rounds: int
    assignment: Dict[int, int]  # ball -> bin it believes it owns
    duplicate_bins: Set[int]
    crashed_announcements: int

    @property
    def one_to_one(self) -> bool:
        """True when no bin was claimed by two balls."""
        return not self.duplicate_bins


def crash_faulted_parallel_retry(
    n_balls: int,
    n_bins: int,
    rng: random.Random,
    *,
    announcement_loss_rate: float = 0.2,
    max_rounds: int = 1_000,
) -> FaultyAllocationResult:
    """Parallel retry where "bin taken" announcements can be lost.

    Each ball keeps a private view of free bins, updated only by the
    announcements it receives.  With ``announcement_loss_rate > 0`` some
    winners' claims are dropped for a random subset of peers (the message
    of a crashing process reaching only some receivers), so peers later
    claim the same bin.  Returns the final assignment and the set of
    bins claimed more than once.
    """
    if n_balls > n_bins:
        raise ValueError(f"cannot place {n_balls} balls one-to-one into {n_bins} bins")
    if not 0.0 <= announcement_loss_rate <= 1.0:
        raise ValueError(f"loss rate must be in [0, 1], got {announcement_loss_rate}")

    believed_free: List[Set[int]] = [set(range(n_bins)) for _ in range(n_balls)]
    assignment: Dict[int, int] = {}
    owners: Dict[int, List[int]] = {}
    lost = 0
    rounds = 0
    unplaced = list(range(n_balls))
    while unplaced and rounds < max_rounds:
        rounds += 1
        requests: Dict[int, List[int]] = {}
        for ball in unplaced:
            pool = believed_free[ball]
            if not pool:
                continue
            target = rng.choice(sorted(pool))
            requests.setdefault(target, []).append(ball)
        next_unplaced: List[int] = []
        for target, contenders in sorted(requests.items()):
            winner = min(contenders)
            already_owned = target in owners
            assignment[winner] = target
            owners.setdefault(target, []).append(winner)
            if already_owned:
                # The bin silently double-accepts: its earlier owner's
                # claim never reached these contenders.
                pass
            announcement_dropped = rng.random() < announcement_loss_rate
            for ball in range(n_balls):
                if announcement_dropped and rng.random() < 0.5:
                    lost += 1
                    continue
                believed_free[ball].discard(target)
            next_unplaced.extend(ball for ball in contenders if ball != winner)
        unplaced = [ball for ball in next_unplaced if ball not in assignment]
    duplicates = {bin_index for bin_index, claimants in owners.items() if len(claimants) > 1}
    return FaultyAllocationResult(
        rounds=rounds,
        assignment=assignment,
        duplicate_bins=duplicates,
        crashed_announcements=lost,
    )
