"""One uniform random choice per ball.

The textbook baseline: placing ``n`` balls into ``n`` bins independently
and uniformly yields a maximum load of ``Theta(log n / log log n)`` with
high probability [13] — far from the one-to-one allocation renaming needs.
"""

from __future__ import annotations

import random

from repro.loadbalance.bins import BinLoads


def single_choice(n_balls: int, n_bins: int, rng: random.Random) -> BinLoads:
    """Throw each ball into one uniformly random bin."""
    if n_bins < 1:
        raise ValueError(f"need at least one bin, got {n_bins}")
    loads = [0] * n_bins
    for _ in range(n_balls):
        loads[rng.randrange(n_bins)] += 1
    return BinLoads(loads)
