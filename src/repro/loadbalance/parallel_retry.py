"""Parallel collision/retry allocation (the [1, 17] style of scheme).

Synchronous rounds: every unplaced ball picks a uniformly random *free*
bin (globally consistent free-bin knowledge is assumed, as those papers
do); a bin contacted by one or more balls accepts exactly one, the rest
retry.  This converges in ``O(log log n)`` rounds in practice — the
intuition Balls-into-Leaves distributes — but the consistency assumption
is exactly what crash failures break (see :mod:`repro.loadbalance.faulty`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ParallelRetryResult:
    """Outcome of a parallel retry allocation."""

    rounds: int
    assignment: Dict[int, int]  # ball -> bin
    per_round_unplaced: List[int]

    @property
    def one_to_one(self) -> bool:
        """True if the final assignment is a bijection."""
        bins = list(self.assignment.values())
        return len(set(bins)) == len(bins)


def parallel_retry(
    n_balls: int,
    n_bins: int,
    rng: random.Random,
    *,
    max_rounds: int = 10_000,
) -> ParallelRetryResult:
    """Allocate ``n_balls`` one-to-one into ``n_bins`` by parallel retries.

    Requires ``n_balls <= n_bins``; raises ``ValueError`` otherwise (the
    scheme cannot terminate).
    """
    if n_balls > n_bins:
        raise ValueError(f"cannot place {n_balls} balls one-to-one into {n_bins} bins")
    free = list(range(n_bins))
    unplaced = list(range(n_balls))
    assignment: Dict[int, int] = {}
    per_round_unplaced: List[int] = []
    rounds = 0
    while unplaced:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(f"parallel retry did not converge in {max_rounds} rounds")
        per_round_unplaced.append(len(unplaced))
        requests: Dict[int, List[int]] = {}
        for ball in unplaced:
            target = free[rng.randrange(len(free))]
            requests.setdefault(target, []).append(ball)
        taken = set()
        still_unplaced: List[int] = []
        for target, contenders in requests.items():
            winner = min(contenders)  # bins accept the lowest-labelled request
            assignment[winner] = target
            taken.add(target)
            still_unplaced.extend(ball for ball in contenders if ball != winner)
        free = [bin_index for bin_index in free if bin_index not in taken]
        unplaced = still_unplaced
    return ParallelRetryResult(
        rounds=rounds, assignment=assignment, per_round_unplaced=per_round_unplaced
    )
