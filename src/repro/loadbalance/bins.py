"""Shared bin-load bookkeeping for the balls-into-bins strategies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class BinLoads:
    """Final loads of an allocation: ``loads[b]`` balls ended in bin ``b``."""

    loads: Sequence[int]

    @property
    def n_bins(self) -> int:
        """Number of bins."""
        return len(self.loads)

    @property
    def n_balls(self) -> int:
        """Number of balls placed."""
        return sum(self.loads)

    @property
    def max_load(self) -> int:
        """The most loaded bin — the classical figure of merit."""
        return max(self.loads) if self.loads else 0

    @property
    def empty_bins(self) -> int:
        """Bins that received no ball."""
        return sum(1 for load in self.loads if load == 0)

    @property
    def is_perfect(self) -> bool:
        """True for a one-to-one allocation (every bin load exactly 1)."""
        return all(load == 1 for load in self.loads)


def load_histogram(loads: Sequence[int]) -> Dict[int, int]:
    """Map load value -> number of bins with that load."""
    histogram: Dict[int, int] = {}
    for load in loads:
        histogram[load] = histogram.get(load, 0) + 1
    return histogram


def loads_from_assignment(assignment: Sequence[int], n_bins: int) -> List[int]:
    """Bin loads implied by a ball->bin assignment list."""
    loads = [0] * n_bins
    for bin_index in assignment:
        loads[bin_index] += 1
    return loads
