"""Classic balls-into-bins load balancing (Sections 1-2 context).

The paper motivates Balls-into-Leaves by observing that tight renaming
*looks* like a solved load-balancing problem but is not: known parallel
schemes either relax the one-ball-per-bin requirement or assume
consistent views, which crashes destroy.  This package implements the
classic strategies so the motivation experiment (EXP-LB) can measure both
facts:

* :func:`single_choice` — one uniform choice; max load
  Theta(log n / log log n).
* :func:`two_choice` — the power of two choices [18]; max load
  ~ log log n.
* :func:`parallel_retry` — synchronous rounds of collision/retry in the
  style of parallel load balancing [1, 17]; fast, but needs consistent
  views of bin states.
* :mod:`repro.loadbalance.faulty` — the same parallel scheme when a crash
  loses acceptance messages: duplicate assignments appear, which is
  exactly why these schemes do not solve fault-tolerant tight renaming.
"""

from repro.loadbalance.bins import BinLoads, load_histogram
from repro.loadbalance.single_choice import single_choice
from repro.loadbalance.two_choice import two_choice
from repro.loadbalance.parallel_retry import ParallelRetryResult, parallel_retry
from repro.loadbalance.faulty import FaultyAllocationResult, crash_faulted_parallel_retry

__all__ = [
    "BinLoads",
    "load_histogram",
    "single_choice",
    "two_choice",
    "parallel_retry",
    "ParallelRetryResult",
    "crash_faulted_parallel_retry",
    "FaultyAllocationResult",
]
