"""The process-environment seam: typed readers for every ``REPRO_*`` knob.

Determinism contract: environment variables must never influence
*results* — only wall-clock strategy (thread fanout, stacking floors,
SHA backend choice).  Every knob therefore lives here: one function per
variable, read per call (never cached, so the CLI and tests can set the
environment at any point), with validation and a documented default.

The D105 lint rule (:mod:`repro.lint.rules_determinism`) enforces the
seam: an ``os.environ`` read anywhere else in ``src/`` fails
``repro lint``.  Adding a knob means adding a reader here — which is
exactly the audit point the rule exists to create.

Knobs
-----
``REPRO_VEC_THREADS``
    Thread count for the vectorized kernel's seeding/twist column
    fanout.  Any value is byte-identical (partitioning is by contiguous
    column slices); this is wall-clock hygiene only.
``REPRO_VEC_MAX_STREAMS``
    Stream budget (trials x n) of one stacked vectorized call; bounds
    resident MT state (~2.5 KB per stream).
``REPRO_VEC_CRASH_MIN_STREAMS``
    Minimum stream count below which a *crash* cell stays on the
    per-trial columnar path (the stacked crash engine's fixed per-round
    costs only amortize across enough streams).  0 = always stack.
``REPRO_SHA256_LANES``
    SHA-256 backend for batched seed derivation: ``on`` forces the
    NumPy lane compiler, ``off`` pins hashlib's scalar path, ``auto``
    (default) currently resolves to scalar (OpenSSL wins on measured
    hardware — see the ``rng_share`` microbench in BENCH_kernel.json).
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

#: Stream budget (trials x n) of one stacked vectorized call.
DEFAULT_MAX_STREAMS = 1 << 17

#: Measured crossover floor for stacking crash cells (streams).
DEFAULT_CRASH_MIN_STREAMS = 1 << 10

#: The three recognized SHA-256 lane modes (after normalization).
SHA256_LANE_MODES = ("auto", "on", "off")


def _read(name: str) -> str:
    """The raw knob text, stripped; empty string when unset."""
    # The seam's single environment read (D105 allowlists this module).
    return os.environ.get(name, "").strip()


def _int_knob(name: str, *, default: int, minimum: int) -> int:
    """Parse an integer knob, clamped to ``minimum``; unset -> default."""
    raw = _read(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return max(minimum, value)


def vec_threads() -> int:
    """Resolved ``REPRO_VEC_THREADS`` (default: CPU count, always >= 1).

    Unparseable text degrades to 1 (the exact serial pass) rather than
    erroring: the knob cannot change results, so a typo should never
    kill a run that a conservative fanout completes correctly.
    """
    raw = _read("REPRO_VEC_THREADS")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return max(1, os.cpu_count() or 1)


def set_vec_threads(threads: int) -> None:
    """Pin the fanout width (the CLI's ``--threads``); validated.

    Writing the environment rather than module state keeps the knob
    visible to worker processes and to every per-pass read site.
    """
    if threads < 1:
        raise ConfigurationError(f"thread count must be >= 1, got {threads}")
    os.environ["REPRO_VEC_THREADS"] = str(threads)


def vec_max_streams() -> int:
    """Resolved ``REPRO_VEC_MAX_STREAMS`` (>= 1; default 2**17)."""
    return _int_knob(
        "REPRO_VEC_MAX_STREAMS", default=DEFAULT_MAX_STREAMS, minimum=1
    )


def crash_min_streams() -> int:
    """Resolved ``REPRO_VEC_CRASH_MIN_STREAMS`` (>= 0; default 2**10)."""
    return _int_knob(
        "REPRO_VEC_CRASH_MIN_STREAMS",
        default=DEFAULT_CRASH_MIN_STREAMS,
        minimum=0,
    )


def sha256_lanes() -> str:
    """Resolved ``REPRO_SHA256_LANES`` mode: ``"auto"``/``"on"``/``"off"``.

    ``1``/``on``/``force`` normalize to ``"on"``; ``0``/``off``/unset
    keep their historical meaning; anything unrecognized is ``"auto"``
    (which resolves to the scalar path) so a typo can only cost speed,
    never correctness — both backends are bit-identical by the
    word-exactness suite.
    """
    raw = _read("REPRO_SHA256_LANES").lower()
    if raw in ("1", "on", "force"):
        return "on"
    if raw in ("0", "off"):
        return "off"
    return "auto"
