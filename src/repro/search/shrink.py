"""Delta-debugging minimization of mined schedules.

PR 3's ghost-leaf deadlock was shrunk to a four-line pytest repro by
hand; this module automates that workflow for anything the search finds.
Given a schedule, the trial seed it fired under, and the objective score
to preserve, :func:`shrink` greedily reduces the genotype —

1. *event deletion* to 1-minimality (removing any single remaining event
   loses the behavior),
2. *receiver minimization* per event (prefer a silent crash; otherwise
   drop receivers one by one),
3. *round tightening* per event (pull each crash as early as it will go)

— re-running one pinned-seed trial per candidate, so the result is the
smallest schedule (under these moves) that still scores at least the
target.  :func:`replay_identical` then certifies the repro executes
bit-identically on the reference and columnar kernels, and
:func:`to_pytest` renders it as a ready-to-paste regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.search.objectives import as_objective
from repro.search.schedule import CrashEvent, Schedule
from repro.search.strategies import HuntConfig
from repro.sim.batch import TrialResult, TrialSpec, run_trial


def _spec(
    schedule: Schedule, config: HuntConfig, seed: int, kernel: str
) -> TrialSpec:
    return TrialSpec(
        algorithm=config.algorithm,
        n=config.n,
        seed=seed,
        adversary=schedule.spec(),
        halt_on_name=config.halt_on_name,
        crash_budget=config.crash_budget,
        check=False,
        kernel=kernel,
        capture_errors=True,
    )


def replay(
    schedule: Schedule,
    config: HuntConfig,
    seed: int,
    *,
    kernel: str = "auto",
) -> TrialResult:
    """Re-execute one (schedule, seed) pair exactly as the hunt ran it."""
    return run_trial(_spec(schedule, config, seed, kernel))


def replay_identical(
    schedule: Schedule, config: HuntConfig, seed: int
) -> Tuple[TrialResult, TrialResult]:
    """Replay on the reference *and* columnar kernels; raise on divergence.

    Returns ``(reference, columnar)`` results whose rounds, decisions,
    failure counts, and message totals were verified equal — the
    certification step before a mined schedule becomes a regression test.
    A cell the columnar kernel cannot model (e.g. a non-BiL algorithm)
    propagates :class:`~repro.errors.KernelUnsupported` unchanged.
    """
    reference = replay(schedule, config, seed, kernel="reference")
    columnar = replay(schedule, config, seed, kernel="columnar")
    for field in (
        "rounds",
        "failures",
        "messages_sent",
        "messages_delivered",
        "last_round_named",
        "names",
        "error",
    ):
        ref, col = getattr(reference, field), getattr(columnar, field)
        if ref != col:
            raise SimulationError(
                f"schedule {schedule.digest} diverges between kernels on "
                f"{field}: reference={ref!r} columnar={col!r}"
            )
    return reference, columnar


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized schedule and the bookkeeping of getting there."""

    schedule: Schedule
    score: float
    target: float
    trials_used: int
    #: Events removed / receivers dropped relative to the input.
    removed_events: int
    seed: int


def shrink(
    schedule: Schedule,
    config: HuntConfig,
    seed: int,
    *,
    target: Optional[float] = None,
    budget: int = 400,
) -> ShrinkResult:
    """Minimize ``schedule`` while its pinned-seed score stays >= target.

    ``target`` defaults to the input schedule's own score, i.e. "still
    reproduces the mined worst case"; pass a lower bar (e.g. the bundled
    adversaries' best) to shrink harder.  ``budget`` caps the replay
    count; on exhaustion the best reduction so far is returned.
    """
    objective = as_objective(config.objective)
    used = 0

    def score_of(candidate: Schedule) -> float:
        nonlocal used
        used += 1
        return objective.score(replay(candidate, config, seed))

    current = schedule.canonical()
    goal = score_of(current) if target is None else target

    def interesting(candidate: Schedule) -> bool:
        return score_of(candidate) >= goal

    # Pass 1: event deletion to 1-minimality.
    changed = True
    while changed and used < budget:
        changed = False
        for index in range(len(current.events)):
            if used >= budget:
                break
            candidate = current.without_event(index)
            if candidate.events and interesting(candidate):
                current, changed = candidate, True
                break  # indices shifted; rescan from the top

    # Pass 2: receiver minimization (silent first, then one at a time).
    for index in range(len(current.events)):
        event = current.events[index]
        if event.receivers and used < budget:
            silent = current.replace_event(
                index,
                CrashEvent(event.round_no, event.victim, (), event.kind),
            )
            if interesting(silent):
                current = silent
                continue
        receivers = list(event.receivers)
        for receiver in list(receivers):
            if used >= budget:
                break
            trimmed = tuple(r for r in receivers if r != receiver)
            candidate = current.replace_event(
                index,
                CrashEvent(event.round_no, event.victim, trimmed, event.kind),
            )
            if interesting(candidate):
                current = candidate
                receivers = list(trimmed)

    # Pass 3: pull each crash to the earliest round that still works.
    # replace_event re-canonicalizes (events re-sort as rounds move), so
    # sweep to a fixpoint instead of trusting indices across an edit.
    changed = True
    while changed and used < budget:
        changed = False
        for index in range(len(current.events)):
            if used >= budget:
                break
            event = current.events[index]
            if event.round_no <= 1:
                continue
            candidate = current.replace_event(
                index,
                CrashEvent(
                    event.round_no - 1,
                    event.victim,
                    event.receivers,
                    event.kind,
                ),
            )
            if interesting(candidate):
                current, changed = candidate, True
                break  # indices may have shifted; rescan from the top

    final = objective.score(replay(current, config, seed))
    return ShrinkResult(
        schedule=current,
        score=final,
        target=goal,
        trials_used=used + 1,
        removed_events=(
            len(schedule.canonical().events) - len(current.events)
        ),
        seed=seed,
    )


def to_pytest(
    schedule: Schedule,
    config: HuntConfig,
    seed: int,
    result: TrialResult,
    *,
    note: str = "mined by repro.search",
) -> str:
    """Render a ready-to-paste regression test for a shrunk schedule."""
    crash_events = [e for e in schedule.events if e.kind == "crash"]
    omit_events = [e for e in schedule.events if e.kind == "omit"]
    crashes = ",\n        ".join(
        f"ScheduledCrash({e.round_no}, ids[{e.victim}], "
        f"receivers=[{', '.join(f'ids[{r}]' for r in e.receivers)}])"
        for e in crash_events
    )
    # check=False: the emitted test pins whatever the hunt observed —
    # including a mined invariant violation, which default checking would
    # turn into a SpecViolation raise before the assertions run.
    if omit_events:
        omissions = ",\n        ".join(
            f"ScheduledOmission({e.round_no}, ids[{e.victim}], "
            "dropped=["
            + ", ".join(
                f"ids[{i}]"
                for i in range(schedule.n)
                if i != e.victim and i not in e.receivers
            )
            + "])"
            for e in omit_events
        )
        adversary = (
            "ScheduledFaultAdversary(crashes=schedule, omissions=omissions)"
        )
    else:
        omissions = None
        adversary = "ScheduledAdversary(schedule)"
    kwargs = [
        f"seed={seed}",
        f"adversary={adversary}",
        "check=False",
    ]
    if config.halt_on_name:
        kwargs.append("halt_on_name=True")
    if config.crash_budget is not None:
        kwargs.append(f"crash_budget={config.crash_budget}")
    call = (
        f'run_renaming(\n        "{config.algorithm}",\n'
        f"        ids,\n        {', '.join(kwargs)},\n    )"
    )
    if result.error is not None:
        # The mined behavior IS the raise: pin it as an expected failure
        # so the regression passes today and flips when the bug is fixed.
        error_type = result.error.split(":", 1)[0]
        body = (
            f"    # mined failure: {result.error.splitlines()[0]}\n"
            f"    with pytest.raises({error_type}):\n"
            f"        {call.replace(chr(10), chr(10) + '    ')}\n"
        )
    else:
        # Pin the observed name multiset shape: for a clean find this
        # reads as the usual uniqueness check; for a mined duplicate it
        # pins the violation itself.
        names = [name for _, name in result.names]
        body = (
            f"    run = {call}\n"
            f"    assert run.rounds == {result.rounds}\n"
            f"    names = list(run.names.values())\n"
            f"    assert len(names) == {len(names)}\n"
            f"    assert len(set(names)) == {len(set(names))}\n"
        )
    schedule_lines = (
        f"    schedule = [\n        {crashes},\n    ]\n"
        if crashes
        else "    schedule = []\n"
    )
    if omissions is not None:
        schedule_lines += f"    omissions = [\n        {omissions},\n    ]\n"
    return (
        f"def test_hunt_regression_{schedule.digest}():\n"
        f'    """{note}: {config.objective} objective scored '
        f"{result.rounds} rounds at n={config.n}.\"\"\"\n"
        f"    ids = sparse_ids({config.n})\n"
        f"{schedule_lines}"
        f"{body}"
    )
