"""Search strategies over the crash-schedule genotype.

Three strategies share one :class:`Evaluator`:

* :class:`RandomSearch` — seeded uniform sampling of the genotype space,
  the baseline every smarter strategy must beat;
* :class:`HillClimb` — greedy ascent via *single-crash mutations* (add,
  remove, or edit one event), with deterministic restarts when stuck;
* :class:`Evolutionary` — a (mu + lambda) population: elite truncation
  selection, one-point crossover over event lists, mutation.

Candidate schedules are scored in *batches*: the evaluator turns each
generation into :class:`~repro.sim.batch.TrialSpec` rows (with
``capture_errors=True`` so a mined deadlock is data, not an abort) and
dispatches them through :func:`repro.sim.batch.run_batch` — searches
parallelize across the same executors as every experiment sweep and
reuse kernel auto-selection.  Every built-in strategy emits *same-cell*
generations (one ``(algorithm, n, ...)`` shape, one schedule adversary
per candidate), which it advertises via
:attr:`SearchStrategy.same_cell_batches`; the evaluator forwards that
hint as ``run_batch(..., mixed_cells=True)`` so a whole generation
stacks onto the vectorized crash engine as one pass — bit-identical
scores, so hunt histories don't change, just their wall-clock.

Everything is deterministic in ``HuntConfig.seed``: strategy randomness
flows from a derived RNG, each candidate's trial seeds derive from the
*schedule digest* (so re-encountering a genotype rescores identically),
and the executors preserve order — the same hunt emits byte-identical
histories on the serial and multiprocessing backends.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError
from repro.search.objectives import Objective, as_objective
from repro.search.schedule import CrashEvent, Schedule
from repro.sim.batch import TrialResult, TrialSpec, as_executor, run_batch
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.runner import ALGORITHMS

#: Genotype fault families a hunt can mine.
FAULT_FAMILY_CHOICES = ("crash", "omission", "mixed")


@dataclass(frozen=True)
class HuntConfig:
    """One fully-described search problem (a single matrix cell)."""

    algorithm: str = "balls-into-leaves"
    n: int = 16
    objective: str = "rounds"
    budget: int = 200
    seed: int = 0
    #: Trials per candidate; the candidate's score is the max over them.
    seeds_per_schedule: int = 1
    halt_on_name: bool = False
    crash_budget: Optional[int] = None
    #: Genotype bounds (both default from the model: the crash budget
    #: ``t`` and a round horizon of the expected run length plus slack).
    max_crashes: Optional[int] = None
    max_round: Optional[int] = None
    kernel: str = "auto"
    #: Runtime invariant monitoring during evaluations ("off"/"cheap"/
    #: "full"); monitor findings ride along in the evaluation rows.
    monitor: str = "off"
    #: Which fault family the genotype mines: "crash" (the historical
    #: hunt — bit-identical histories), "omission" (one-round link masks
    #: only), or "mixed" (both kinds in one schedule).
    fault_family: str = "crash"

    def __post_init__(self) -> None:
        from repro.monitor.invariants import check_monitor_mode

        check_monitor_mode(self.monitor)
        if self.fault_family not in FAULT_FAMILY_CHOICES:
            raise ConfigurationError(
                f"unknown fault family {self.fault_family!r}; "
                f"choose from {FAULT_FAMILY_CHOICES}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        if self.n < 2:
            raise ConfigurationError(f"hunting needs n >= 2, got {self.n}")
        if self.budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {self.budget}")
        if self.seeds_per_schedule < 1:
            raise ConfigurationError(
                f"seeds_per_schedule must be >= 1, got {self.seeds_per_schedule}"
            )
        if self.seeds_per_schedule > self.budget:
            raise ConfigurationError(
                f"budget ({self.budget}) cannot fit a single candidate at "
                f"{self.seeds_per_schedule} seeds per schedule"
            )
        as_objective(self.objective)  # validate eagerly

    @property
    def effective_crash_budget(self) -> int:
        """The model's ``t`` (defaults to ``n - 1``)."""
        return self.n - 1 if self.crash_budget is None else self.crash_budget

    @property
    def effective_max_crashes(self) -> int:
        """Most crash events a sampled genotype may carry."""
        if self.max_crashes is not None:
            return max(0, min(self.max_crashes, self.n - 1))
        return min(self.effective_crash_budget, self.n - 1)

    @property
    def effective_max_round(self) -> int:
        """Latest round a sampled event may target: the failure-free
        horizon (O(log n) phases) plus slack for crash-extended runs.

        Deliberately tight — a run at size ``n`` lasts ~``2 log n``
        rounds, so sampling crash rounds far beyond that horizon wastes
        almost every event on a finished execution."""
        if self.max_round is not None:
            return max(1, self.max_round)
        depth = max(1, math.ceil(math.log2(self.n)))
        return 2 * depth + 6


@dataclass(frozen=True)
class Evaluation:
    """One scored candidate: the genotype and its trial outcomes."""

    index: int
    schedule: Schedule
    score: float
    results: Tuple[TrialResult, ...]
    #: Per-trial objective scores, aligned with :attr:`results`.
    scores: Tuple[float, ...] = ()

    @property
    def best_result(self) -> TrialResult:
        """The trial that achieved :attr:`score` (first argmax)."""
        return self.results[self.scores.index(max(self.scores))]

    def row(self) -> Dict[str, Any]:
        """One JSON-ready history line (stable across executors)."""
        best = self.best_result
        return {
            "index": self.index,
            "digest": self.schedule.digest,
            "crashes": self.schedule.crashes,
            "omits": self.schedule.omits,
            "schedule": self.schedule.to_dict(),
            "score": self.score,
            "seed": best.spec.seed,
            "rounds": best.rounds,
            "messages_sent": best.messages_sent,
            "failures": best.failures,
            "error": best.error,
        }


class Evaluator:
    """Scores candidate schedules through the batch engine, in order.

    The budget counts *trials*: a candidate consumes
    ``seeds_per_schedule`` units.  Requests beyond the budget are
    truncated (deterministically, from the end), so every strategy stops
    at exactly the same evaluation count on every backend.
    """

    def __init__(
        self,
        config: HuntConfig,
        *,
        executor=None,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        mixed_cells: bool = False,
    ) -> None:
        self.config = config
        self.objective: Objective = as_objective(config.objective)
        self._backend = as_executor(executor, workers=workers, chunksize=chunksize)
        #: Stack same-cell generations with per-candidate adversaries
        #: (set from the strategy's batching hint by :func:`run_hunt`).
        self.mixed_cells = mixed_cells
        self.history: List[Evaluation] = []
        self.trials_used = 0

    # ------------------------------------------------------------- accounting
    @property
    def trials_remaining(self) -> int:
        return max(0, self.config.budget - self.trials_used)

    @property
    def exhausted(self) -> bool:
        """True once no further candidate fits in the budget."""
        return self.trials_remaining < self.config.seeds_per_schedule

    @property
    def executor_name(self) -> str:
        return self._backend.name

    # ------------------------------------------------------------- evaluation
    def _spec(self, schedule: Schedule, trial: int) -> TrialSpec:
        config = self.config
        return TrialSpec(
            algorithm=config.algorithm,
            n=config.n,
            seed=derive_seed(config.seed, "hunt", schedule.digest, trial),
            adversary=schedule.spec(),
            halt_on_name=config.halt_on_name,
            crash_budget=config.crash_budget,
            check=False,  # violations are scored, not raised
            kernel=config.kernel,
            capture_errors=True,
            monitor=config.monitor,
        )

    def evaluate(self, schedules: Sequence[Schedule]) -> List[Evaluation]:
        """Score candidates (in order), truncated to the budget."""
        per = self.config.seeds_per_schedule
        schedules = list(schedules)[: self.trials_remaining // per]
        if not schedules:
            return []
        specs = [
            self._spec(schedule, trial)
            for schedule in schedules
            for trial in range(per)
        ]
        batch = run_batch(
            specs, executor=self._backend, mixed_cells=self.mixed_cells
        )
        evaluations = []
        for i, schedule in enumerate(schedules):
            results = tuple(batch.trials[i * per : (i + 1) * per])
            scores = tuple(self.objective.score(result) for result in results)
            evaluations.append(
                Evaluation(
                    index=len(self.history),
                    schedule=schedule,
                    score=max(scores),
                    results=results,
                    scores=scores,
                )
            )
            self.history.append(evaluations[-1])
        self.trials_used += len(specs)
        return evaluations

    def best(self) -> Evaluation:
        """The highest-scoring candidate so far (earliest on ties)."""
        if not self.history:
            raise ConfigurationError("nothing evaluated yet")
        return max(self.history, key=lambda e: e.score)


# --------------------------------------------------------------- genotype ops


def random_event(rng, config: HuntConfig) -> CrashEvent:
    """Sample one fault event: round, victim, and a delivery mode drawn
    from {silent, partial subset, full broadcast}.

    The kind follows :attr:`HuntConfig.fault_family`; the "crash" family
    decides it without consuming randomness, so historical crash hunts
    replay bit-identically.
    """
    n = config.n
    round_no = rng.randint(1, config.effective_max_round)
    victim = rng.randrange(n)
    others = [i for i in range(n) if i != victim]
    mode = rng.randrange(3)
    if mode == 0:
        receivers: Tuple[int, ...] = ()
    elif mode == 1:
        receivers = tuple(rng.sample(others, rng.randint(1, len(others))))
    else:
        receivers = tuple(others)
    family = config.fault_family
    if family == "crash":
        kind = "crash"
    elif family == "omission":
        kind = "omit"
    else:
        kind = "omit" if rng.random() < 0.5 else "crash"
    return CrashEvent(round_no, victim, receivers, kind)


def random_schedule(rng, config: HuntConfig) -> Schedule:
    """Sample a genotype with 1..max_crashes events."""
    limit = max(1, config.effective_max_crashes)
    events = [random_event(rng, config) for _ in range(rng.randint(1, limit))]
    return Schedule.of(config.n, events)


def mutate(rng, schedule: Schedule, config: HuntConfig) -> Schedule:
    """One single-crash edit: add, remove, or modify one event.

    Modification moves the event's round by +-1, retargets its victim,
    or toggles a single receiver — the smallest steps that matter, so
    hill-climbing explores a tight neighborhood and shrinking stays
    aligned with the search moves.
    """
    ops = ["add"] if len(schedule.events) < config.effective_max_crashes else []
    if schedule.events:
        ops += ["remove", "round", "victim", "receiver", "resample"]
    op = ops[rng.randrange(len(ops))]
    if op == "add":
        return schedule.with_event(random_event(rng, config))
    index = rng.randrange(len(schedule.events))
    event = schedule.events[index]
    if op == "remove":
        mutated = schedule.without_event(index)
        # Never collapse to the empty schedule: it is a single point the
        # random init already covers, and a dead end for every objective.
        # Resample in place rather than add, so the crash cap holds.
        return mutated if mutated.events else schedule.replace_event(
            index, random_event(rng, config)
        )
    if op == "round":
        delta = 1 if rng.random() < 0.5 else -1
        round_no = min(config.effective_max_round, max(1, event.round_no + delta))
        return schedule.replace_event(
            index,
            CrashEvent(round_no, event.victim, event.receivers, event.kind),
        )
    if op == "victim":
        victim = rng.randrange(config.n)
        return schedule.replace_event(
            index,
            CrashEvent(event.round_no, victim, event.receivers, event.kind),
        )
    if op == "receiver":
        peer = rng.randrange(config.n)
        receivers = set(event.receivers)
        receivers.symmetric_difference_update({peer})
        return schedule.replace_event(
            index,
            CrashEvent(
                event.round_no,
                event.victim,
                tuple(sorted(receivers)),
                event.kind,
            ),
        )
    return schedule.replace_event(index, random_event(rng, config))


def crossover(rng, a: Schedule, b: Schedule) -> Schedule:
    """One-point crossover over the two event lists (same ``n``)."""
    cut_a = rng.randint(0, len(a.events))
    cut_b = rng.randint(0, len(b.events))
    events = a.events[:cut_a] + b.events[cut_b:]
    if not events:
        events = a.events or b.events
    return Schedule.of(a.n, events)


# ------------------------------------------------------------------ strategies


class SearchStrategy(ABC):
    """One way of spending an evaluation budget."""

    name: str = "abstract"
    #: Candidates scored per batch dispatch — one executor round-trip,
    #: so searches parallelize across workers in generation-sized waves.
    batch_size: int = 16
    #: Batching hint: True when every generation shares one cell shape
    #: (only seeds and schedule adversaries differ), letting the
    #: evaluator stack whole generations on the vectorized crash engine.
    #: A custom strategy mixing cell shapes in one batch must clear it.
    same_cell_batches: bool = True

    def rng_for(self, config: HuntConfig):
        """The strategy's private randomness (independent of trials')."""
        return derive_rng(config.seed, "hunt-strategy", self.name)

    @abstractmethod
    def run(self, evaluator: Evaluator) -> None:
        """Drive ``evaluator`` until its budget is exhausted."""


class RandomSearch(SearchStrategy):
    """Uniform seeded sampling — the baseline strategy."""

    name = "random"

    def run(self, evaluator: Evaluator) -> None:
        rng = self.rng_for(evaluator.config)
        while not evaluator.exhausted:
            batch = [
                random_schedule(rng, evaluator.config)
                for _ in range(self.batch_size)
            ]
            evaluator.evaluate(batch)


class HillClimb(SearchStrategy):
    """Greedy ascent by single-crash mutations, with drift and restarts.

    Each step scores a batch of mutations of the incumbent and moves to
    the best neighbor when it *ties or improves* — the round-count
    landscape is flat over wide plateaus (the paper's robustness result
    in action), so neutral drift is what keeps the climber exploring
    instead of circling one genotype.  Only strict improvements reset
    the stall counter; after ``patience`` stalled batches it restarts
    from a fresh random candidate (the global best lives in the
    evaluator's history, so restarts never lose it).
    """

    name = "hillclimb"
    batch_size = 8
    init_samples = 8
    #: Round-count plateaus are wide; restarting early buys breadth.
    patience = 2

    def run(self, evaluator: Evaluator) -> None:
        config = evaluator.config
        rng = self.rng_for(config)
        initial = evaluator.evaluate(
            [random_schedule(rng, config) for _ in range(self.init_samples)]
        )
        if not initial:
            return
        current = max(initial, key=lambda e: e.score)
        stalled = 0
        while not evaluator.exhausted:
            neighbors = evaluator.evaluate(
                [
                    mutate(rng, current.schedule, config)
                    for _ in range(self.batch_size)
                ]
            )
            if not neighbors:
                return
            best = max(neighbors, key=lambda e: e.score)
            if best.score > current.score:
                current, stalled = best, 0
                continue
            stalled += 1
            if best.score == current.score:
                current = best  # neutral drift across the plateau
            if stalled >= self.patience:
                restart = evaluator.evaluate([random_schedule(rng, config)])
                if restart:
                    current, stalled = restart[0], 0


class Evolutionary(SearchStrategy):
    """A (mu + lambda) population: elites survive, children are bred by
    crossover + mutation."""

    name = "evolve"
    population = 12
    elites = 4

    def run(self, evaluator: Evaluator) -> None:
        config = evaluator.config
        rng = self.rng_for(config)
        population = evaluator.evaluate(
            [random_schedule(rng, config) for _ in range(self.population)]
        )
        while population and not evaluator.exhausted:
            ranked = sorted(
                population, key=lambda e: (-e.score, e.index)
            )[: self.elites]
            children = []
            for _ in range(self.population):
                a, b = rng.sample(ranked, 2) if len(ranked) >= 2 else (
                    ranked[0],
                    ranked[0],
                )
                child = crossover(rng, a.schedule, b.schedule)
                if rng.random() < 0.9:
                    child = mutate(rng, child, config)
                children.append(child)
            offspring = evaluator.evaluate(children)
            population = ranked + offspring


#: The built-in strategies by CLI name.
STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    cls.name: cls for cls in (RandomSearch, HillClimb, Evolutionary)
}


def as_strategy(value) -> SearchStrategy:
    """Coerce a name or instance to a :class:`SearchStrategy`."""
    if isinstance(value, SearchStrategy):
        return value
    if value in STRATEGIES:
        return STRATEGIES[value]()
    raise ConfigurationError(
        f"unknown strategy {value!r}; choose from {sorted(STRATEGIES)}"
    )


# ------------------------------------------------------------------ the hunt


@dataclass
class HuntResult:
    """Everything a finished hunt produced."""

    config: HuntConfig
    strategy: str
    evaluations: List[Evaluation] = field(default_factory=list)
    executor: str = "serial"

    @property
    def best(self) -> Evaluation:
        """The worst case found (highest score; earliest on ties)."""
        return max(self.evaluations, key=lambda e: e.score)

    def top(self, k: int = 5) -> List[Evaluation]:
        """The ``k`` highest-scoring *distinct* schedules."""
        seen, ranked = set(), []
        for evaluation in sorted(
            self.evaluations, key=lambda e: (-e.score, e.index)
        ):
            if evaluation.schedule.digest in seen:
                continue
            seen.add(evaluation.schedule.digest)
            ranked.append(evaluation)
            if len(ranked) == k:
                break
        return ranked

    def rows(self) -> List[Dict[str, Any]]:
        """The full evaluation history as JSON-ready rows (one per
        candidate, in evaluation order — the ``--out *.jsonl`` payload)."""
        base = {
            "strategy": self.strategy,
            "objective": self.config.objective,
            "algorithm": self.config.algorithm,
            "n": self.config.n,
            "base_seed": self.config.seed,
            "fault_family": self.config.fault_family,
        }
        return [{**base, **evaluation.row()} for evaluation in self.evaluations]


def run_hunt(
    config: HuntConfig,
    strategy="random",
    *,
    executor=None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> HuntResult:
    """Search one cell for worst-case schedules.  The main search API."""
    search = as_strategy(strategy)
    evaluator = Evaluator(
        config,
        executor=executor,
        workers=workers,
        chunksize=chunksize,
        mixed_cells=search.same_cell_batches,
    )
    search.run(evaluator)
    return HuntResult(
        config=config,
        strategy=search.name,
        evaluations=evaluator.history,
        executor=evaluator.executor_name,
    )
