"""The search genotype: a serializable, index-based crash schedule.

A :class:`Schedule` is the unit the search strategies mutate, serialize,
and replay: a population size ``n`` plus a tuple of :class:`CrashEvent`
entries, each naming a round, a victim, and the subset of receivers that
still get the victim's broadcast.  Victims and receivers are *positional
indices* into the participant list rather than concrete process ids, so a
schedule is a pure value — JSON-serializable, hashable, independent of
the id scheme — and one genotype describes the same adversary behavior
on every replay.

Compilation targets the existing scripted adversary:
:meth:`Schedule.compile` maps indices to ids and returns a
:class:`~repro.adversary.scheduled.ScheduledAdversary`, which is
columnar-certified (one shared predicate,
:mod:`repro.adversary.certification`), so searched schedules run on the
fast crash engine without the search layer re-declaring eligibility.
:meth:`Schedule.spec` wraps the same value as a picklable
:class:`~repro.sim.batch.AdversarySpec` (builder name ``"schedule"``),
which is how schedules ride :class:`~repro.sim.batch.TrialSpec` through
the batch executors.

Robustness is inherited from the simulator: events naming dead victims
or rounds past termination are clamped/ignored by the engine's own plan
validation, so *every* genotype is viable and mutation operators never
need repair logic beyond :meth:`canonical` normalization.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence, Tuple

from repro.adversary.certification import certification_failure
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.errors import ConfigurationError
from repro.ids import ProcessId


@dataclass(frozen=True)
class CrashEvent:
    """Crash participant ``victim`` in ``round_no``; ``receivers`` still
    hear its final broadcast (empty tuple = silent crash)."""

    round_no: int
    victim: int
    receivers: Tuple[int, ...] = ()

    def canonical(self, n: int) -> "CrashEvent":
        """Sorted, deduplicated, in-range receivers excluding the victim."""
        receivers = tuple(
            sorted({r for r in self.receivers if 0 <= r < n and r != self.victim})
        )
        return replace(self, receivers=receivers)

    def validate(self, n: int) -> None:
        if self.round_no < 1:
            raise ConfigurationError(
                f"crash rounds start at 1, got {self.round_no}"
            )
        if not 0 <= self.victim < n:
            raise ConfigurationError(
                f"victim index {self.victim} out of range for n={n}"
            )

    def to_tuple(self) -> Tuple[int, int, Tuple[int, ...]]:
        return (self.round_no, self.victim, tuple(self.receivers))


@dataclass(frozen=True)
class Schedule:
    """An adversary genotype: ``n`` participants, crash events by index."""

    n: int
    events: Tuple[CrashEvent, ...] = ()

    # ------------------------------------------------------------ construction
    @classmethod
    def of(cls, n: int, events: Sequence[CrashEvent] = ()) -> "Schedule":
        """Validate, canonicalize, and order a genotype.

        Events are sorted by (round, victim); a victim appearing more
        than once keeps only its earliest event (a process crashes once —
        later entries could never fire).
        """
        if n < 1:
            raise ConfigurationError(f"a schedule needs n >= 1, got {n}")
        seen: Dict[int, CrashEvent] = {}
        for event in sorted(events, key=lambda e: (e.round_no, e.victim)):
            event.validate(n)
            seen.setdefault(event.victim, event.canonical(n))
        ordered = tuple(
            sorted(seen.values(), key=lambda e: (e.round_no, e.victim))
        )
        return cls(n=n, events=ordered)

    def canonical(self) -> "Schedule":
        """The normalized form of this genotype (idempotent)."""
        return Schedule.of(self.n, self.events)

    # -------------------------------------------------------------- mutation ops
    def with_event(self, event: CrashEvent) -> "Schedule":
        """This schedule plus one event (canonicalized)."""
        return Schedule.of(self.n, self.events + (event,))

    def without_event(self, index: int) -> "Schedule":
        """This schedule minus the event at ``index``."""
        kept = self.events[:index] + self.events[index + 1 :]
        return Schedule.of(self.n, kept)

    def replace_event(self, index: int, event: CrashEvent) -> "Schedule":
        """This schedule with the event at ``index`` swapped out."""
        kept = self.events[:index] + (event,) + self.events[index + 1 :]
        return Schedule.of(self.n, kept)

    # ---------------------------------------------------------- identity / io
    @property
    def crashes(self) -> int:
        """Number of scheduled crash events."""
        return len(self.events)

    @property
    def digest(self) -> str:
        """A short stable content hash (dedup keys, labels, filenames)."""
        material = repr((self.n, tuple(e.to_tuple() for e in self.events)))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:10]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        return {
            "n": self.n,
            "events": [
                [e.round_no, e.victim, list(e.receivers)] for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        events = [
            CrashEvent(int(r), int(v), tuple(int(x) for x in receivers))
            for r, v, receivers in data.get("events", [])
        ]
        return cls.of(int(data["n"]), events)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- compilation
    def compile(self, ids: Sequence[ProcessId]) -> ScheduledAdversary:
        """Bind indices to ``ids`` (positionally) and return the scripted
        adversary.

        The result is columnar-certified — asserted here against the one
        shared predicate so a regression in the certification plumbing
        fails loudly at compile time, not as a silent fast-path fallback.
        """
        if len(ids) != self.n:
            raise ConfigurationError(
                f"schedule is for n={self.n}, got {len(ids)} ids"
            )
        ordered = list(ids)
        adversary = ScheduledAdversary(
            [
                ScheduledCrash(
                    e.round_no,
                    ordered[e.victim],
                    receivers=[ordered[r] for r in e.receivers],
                )
                for e in self.events
            ]
        )
        failure = certification_failure(adversary)
        if failure is not None:  # pragma: no cover - plumbing regression
            raise ConfigurationError(
                f"schedule compiled to an uncertified adversary: {failure}"
            )
        return adversary

    def spec(self, label: str = None):
        """This schedule as a picklable batch :class:`AdversarySpec`."""
        from repro.sim.batch import AdversarySpec

        return AdversarySpec.of(
            "schedule",
            label=label or f"schedule:{self.digest}",
            n=self.n,
            events=tuple(e.to_tuple() for e in self.events),
        )

    @classmethod
    def from_params(cls, *, n: int, events: Sequence = ()) -> "Schedule":
        """Decode the ``spec()`` parameter encoding (builder side)."""
        return cls.of(
            int(n),
            [
                CrashEvent(int(r), int(v), tuple(int(x) for x in receivers))
                for r, v, receivers in events
            ],
        )
