"""The search genotype: a serializable, index-based fault schedule.

A :class:`Schedule` is the unit the search strategies mutate, serialize,
and replay: a population size ``n`` plus a tuple of :class:`CrashEvent`
entries, each naming a round, a victim, a kind (``"crash"`` or a
one-round ``"omit"`` mask), and the subset of receivers that still get
the victim's broadcast.  Victims and receivers are *positional indices*
into the participant list rather than concrete process ids, so a
schedule is a pure value — JSON-serializable, hashable, independent of
the id scheme — and one genotype describes the same adversary behavior
on every replay.

Compilation targets the scripted adversaries: :meth:`Schedule.compile`
maps indices to ids and returns a
:class:`~repro.adversary.scheduled.ScheduledAdversary` (crash-only
genotypes — these keep stacking on the vectorized crash engine) or a
:class:`~repro.adversary.omission.ScheduledFaultAdversary` (genotypes
with omit events), both columnar-certified (one shared predicate,
:mod:`repro.adversary.certification`), so searched schedules run on the
fast crash engine without the search layer re-declaring eligibility.
:meth:`Schedule.spec` wraps the same value as a picklable
:class:`~repro.sim.batch.AdversarySpec` (builder name ``"schedule"``),
which is how schedules ride :class:`~repro.sim.batch.TrialSpec` through
the batch executors.

Robustness is inherited from the simulator: events naming dead victims
or rounds past termination are clamped/ignored by the engine's own plan
validation, so *every* genotype is viable and mutation operators never
need repair logic beyond :meth:`canonical` normalization.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence, Tuple

from repro.adversary.certification import certification_failure
from repro.adversary.omission import ScheduledFaultAdversary, ScheduledOmission
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.errors import ConfigurationError
from repro.ids import ProcessId

#: Event kinds a genotype may carry: ``"crash"`` kills the victim in its
#: round, ``"omit"`` masks the victim's broadcast for that one round
#: without killing it.  Both reuse the ``receivers`` field as "who still
#: hears the broadcast" (empty tuple = fully silent).
EVENT_KINDS = ("crash", "omit")


@dataclass(frozen=True)
class CrashEvent:
    """Fault ``victim`` in ``round_no``; ``receivers`` still hear its
    broadcast that round (empty tuple = silent).  ``kind="crash"`` kills
    the victim permanently; ``kind="omit"`` masks one round's links and
    leaves the victim alive."""

    round_no: int
    victim: int
    receivers: Tuple[int, ...] = ()
    kind: str = "crash"

    def canonical(self, n: int) -> "CrashEvent":
        """Sorted, deduplicated, in-range receivers excluding the victim."""
        receivers = tuple(
            sorted({r for r in self.receivers if 0 <= r < n and r != self.victim})
        )
        return replace(self, receivers=receivers)

    def validate(self, n: int) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; choose from {EVENT_KINDS}"
            )
        if self.round_no < 1:
            raise ConfigurationError(
                f"{self.kind} rounds start at 1, got {self.round_no}"
            )
        if not 0 <= self.victim < n:
            raise ConfigurationError(
                f"victim index {self.victim} out of range for n={n}"
            )

    def to_tuple(self) -> Tuple:
        """Crash events keep the historical 3-tuple encoding (stable
        digests); other kinds append the kind as a 4th element."""
        if self.kind == "crash":
            return (self.round_no, self.victim, tuple(self.receivers))
        return (self.round_no, self.victim, tuple(self.receivers), self.kind)


@dataclass(frozen=True)
class Schedule:
    """An adversary genotype: ``n`` participants, crash events by index."""

    n: int
    events: Tuple[CrashEvent, ...] = ()

    # ------------------------------------------------------------ construction
    @classmethod
    def of(cls, n: int, events: Sequence[CrashEvent] = ()) -> "Schedule":
        """Validate, canonicalize, and order a genotype.

        Events are sorted by (round, victim); a victim appearing more
        than once keeps only its earliest event (a process crashes once —
        later entries could never fire).
        """
        if n < 1:
            raise ConfigurationError(f"a schedule needs n >= 1, got {n}")
        # A victim crashes once, so crash events dedup on the victim
        # alone; omissions are per-round masks, so one victim may carry
        # one omit event per round.
        seen: Dict[Any, CrashEvent] = {}
        for event in sorted(events, key=lambda e: (e.round_no, e.victim, e.kind)):
            event.validate(n)
            key = (
                event.victim
                if event.kind == "crash"
                else (event.kind, event.victim, event.round_no)
            )
            seen.setdefault(key, event.canonical(n))
        ordered = tuple(
            sorted(seen.values(), key=lambda e: (e.round_no, e.victim, e.kind))
        )
        return cls(n=n, events=ordered)

    def canonical(self) -> "Schedule":
        """The normalized form of this genotype (idempotent)."""
        return Schedule.of(self.n, self.events)

    # -------------------------------------------------------------- mutation ops
    def with_event(self, event: CrashEvent) -> "Schedule":
        """This schedule plus one event (canonicalized)."""
        return Schedule.of(self.n, self.events + (event,))

    def without_event(self, index: int) -> "Schedule":
        """This schedule minus the event at ``index``."""
        kept = self.events[:index] + self.events[index + 1 :]
        return Schedule.of(self.n, kept)

    def replace_event(self, index: int, event: CrashEvent) -> "Schedule":
        """This schedule with the event at ``index`` swapped out."""
        kept = self.events[:index] + (event,) + self.events[index + 1 :]
        return Schedule.of(self.n, kept)

    # ---------------------------------------------------------- identity / io
    @property
    def crashes(self) -> int:
        """Number of scheduled crash events."""
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def omits(self) -> int:
        """Number of scheduled one-round omission events."""
        return sum(1 for e in self.events if e.kind == "omit")

    @property
    def digest(self) -> str:
        """A short stable content hash (dedup keys, labels, filenames)."""
        material = repr((self.n, tuple(e.to_tuple() for e in self.events)))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:10]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        return {
            "n": self.n,
            "events": [
                [e.round_no, e.victim, list(e.receivers)]
                if e.kind == "crash"
                else [e.round_no, e.victim, list(e.receivers), e.kind]
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        events = [_decode_event(entry) for entry in data.get("events", [])]
        return cls.of(int(data["n"]), events)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- compilation
    def compile(self, ids: Sequence[ProcessId]):
        """Bind indices to ``ids`` (positionally) and return the scripted
        adversary.

        Crash-only genotypes compile to the historical
        :class:`~repro.adversary.scheduled.ScheduledAdversary` (so crash
        hunts keep stacking on the vectorized crash engine); genotypes
        carrying omit events compile to
        :class:`~repro.adversary.omission.ScheduledFaultAdversary`.
        Either way the result is columnar-certified — asserted here
        against the one shared predicate so a regression in the
        certification plumbing fails loudly at compile time, not as a
        silent fast-path fallback.
        """
        if len(ids) != self.n:
            raise ConfigurationError(
                f"schedule is for n={self.n}, got {len(ids)} ids"
            )
        ordered = list(ids)
        crashes = [
            ScheduledCrash(
                e.round_no,
                ordered[e.victim],
                receivers=[ordered[r] for r in e.receivers],
            )
            for e in self.events
            if e.kind == "crash"
        ]
        omit_events = [e for e in self.events if e.kind == "omit"]
        if not omit_events:
            adversary = ScheduledAdversary(crashes)
        else:
            adversary = ScheduledFaultAdversary(
                crashes=crashes,
                omissions=[
                    ScheduledOmission(
                        e.round_no,
                        ordered[e.victim],
                        dropped=[
                            ordered[i]
                            for i in range(self.n)
                            if i != e.victim and i not in e.receivers
                        ],
                    )
                    for e in omit_events
                ],
            )
        failure = certification_failure(
            adversary, supported=("crash", "omission")
        )
        if failure is not None:  # pragma: no cover - plumbing regression
            raise ConfigurationError(
                f"schedule compiled to an uncertified adversary: {failure}"
            )
        return adversary

    def spec(self, label: str = None):
        """This schedule as a picklable batch :class:`AdversarySpec`."""
        from repro.sim.batch import AdversarySpec

        return AdversarySpec.of(
            "schedule",
            label=label or f"schedule:{self.digest}",
            n=self.n,
            events=tuple(e.to_tuple() for e in self.events),
        )

    @classmethod
    def from_params(cls, *, n: int, events: Sequence = ()) -> "Schedule":
        """Decode the ``spec()`` parameter encoding (builder side)."""
        return cls.of(int(n), [_decode_event(entry) for entry in events])


def _decode_event(entry: Sequence) -> CrashEvent:
    """Decode a 3-element (crash) or 4-element (kinded) event entry."""
    if len(entry) == 3:
        r, v, receivers = entry
        kind = "crash"
    else:
        r, v, receivers, kind = entry
    return CrashEvent(
        int(r), int(v), tuple(int(x) for x in receivers), str(kind)
    )
