"""Scenario files: a mined counterexample as one round-trippable bundle.

A hunt ends with a shrunk :class:`~repro.search.schedule.Schedule`, the
trial seed it fired under, and a pile of run configuration — enough to
reproduce the find, but scattered across a jsonl footer and a pytest
snippet.  A *scenario file* packs all of it into a single JSON document:

* the full :class:`~repro.sim.batch.TrialSpec` (algorithm, n, seed,
  halt-on-name, crash budget, kernel/monitor/trace knobs),
* the fault schedule as :meth:`Schedule.to_dict` — editable by hand,
* an optional pointer to the trace file captured on the replay
  (content-addressed by the spec digest, see
  :func:`repro.sim.trace.trace_filename`),
* a free-form ``meta`` block recording what the original run observed
  (rounds, failures, error, objective score) so a replay can be checked
  against it.

Loading is deliberately schedule-first: when the document carries a
``schedule`` block, the adversary spec is rebuilt *from that block* —
not from the serialized adversary — so editing the event list in the
file (move a crash a round later, drop a receiver) and replaying is the
supported perturb-and-replay workflow.  ``repro explore --replay`` rides
exactly this path, then certifies the edited run with the same
reference-vs-columnar byte-identity check the hunt used
(:func:`repro.search.shrink.replay_identical`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.search.schedule import Schedule
from repro.sim.batch import AdversarySpec, TrialResult, TrialSpec

#: Serialized scenario format marker (the ``format`` key of every file).
SCENARIO_FORMAT = "repro-scenario/1"


def scenario_filename(digest: str, *, prefix: str = "scenario") -> str:
    """Canonical scenario file name for a spec digest."""
    return f"{prefix}-{digest}.json"


@dataclass(frozen=True)
class Scenario:
    """One reproducible execution: spec + schedule + trace pointer + meta."""

    spec: TrialSpec
    #: The fault schedule, when the adversary is a scripted one.  This is
    #: the authoritative copy: loading rebuilds the adversary spec from
    #: it, so hand-edits to the serialized event list take effect.
    schedule: Optional[Schedule] = None
    #: Path of the trace file captured for this execution (relative paths
    #: resolve against the scenario file's directory), or None.
    trace_path: Optional[str] = None
    #: The spec digest the trace file is content-addressed by.
    trace_digest: Optional[str] = None
    #: What the original run observed (rounds, failures, error, score...).
    meta: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_trial(
        cls,
        spec: TrialSpec,
        result: Optional[TrialResult] = None,
        *,
        schedule: Optional[Schedule] = None,
        trace_path: Optional[str] = None,
        **meta: Any,
    ) -> "Scenario":
        """Bundle a trial (and optionally its result) into a scenario.

        When ``result`` is given, its headline observations are recorded
        in ``meta`` so a later replay can be checked against them.
        """
        if result is not None:
            meta.setdefault("rounds", result.rounds)
            meta.setdefault("failures", result.failures)
            meta.setdefault("messages_sent", result.messages_sent)
            meta.setdefault("last_round_named", result.last_round_named)
            if result.error is not None:
                meta.setdefault("error", result.error)
        return cls(
            spec=spec,
            schedule=schedule,
            trace_path=trace_path,
            trace_digest=spec.digest() if trace_path else None,
            meta=meta,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready encoding (inverse of :meth:`from_dict`)."""
        spec = self.spec
        adversary: Dict[str, Any] = {"name": spec.adversary.name}
        if spec.adversary.label is not None:
            adversary["label"] = spec.adversary.label
        if spec.adversary.name != "schedule" and spec.adversary.params:
            # Schedule params duplicate the schedule block (which is the
            # copy loading honors), so they are not serialized twice.
            adversary["params"] = dict(spec.adversary.params)
        document: Dict[str, Any] = {
            "format": SCENARIO_FORMAT,
            "spec": {
                "algorithm": spec.algorithm,
                "n": spec.n,
                "seed": spec.seed,
                "adversary": adversary,
                "halt_on_name": spec.halt_on_name,
                "crash_budget": spec.crash_budget,
                "check": spec.check,
                "kernel": spec.kernel,
                "capture_errors": spec.capture_errors,
                "monitor": spec.monitor,
                "trace": spec.trace,
                "digest": spec.digest(),
            },
            "schedule": (
                None if self.schedule is None else self.schedule.to_dict()
            ),
            "trace": (
                None
                if self.trace_path is None
                else {"path": self.trace_path, "digest": self.trace_digest}
            ),
            "meta": {key: self.meta[key] for key in sorted(self.meta)},
        }
        return document

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Decode a scenario document.

        The adversary is rebuilt from the ``schedule`` block when one is
        present — the perturb-and-replay contract: edits to the event
        list win over whatever adversary spec was serialized alongside.
        """
        if data.get("format") != SCENARIO_FORMAT:
            raise ConfigurationError(
                f"not a {SCENARIO_FORMAT} document "
                f"(format={data.get('format')!r})"
            )
        raw_spec = data.get("spec")
        if not isinstance(raw_spec, dict):
            raise ConfigurationError("scenario document has no 'spec' block")
        schedule = None
        raw_schedule = data.get("schedule")
        if raw_schedule is not None:
            schedule = Schedule.from_dict(raw_schedule)
        raw_adversary = raw_spec.get("adversary") or {"name": "none"}
        if schedule is not None:
            label = raw_adversary.get("label")
            if label is not None and label.startswith("schedule:"):
                # Auto-generated digest label; regenerate so a hand-edit
                # to the event list is not mislabeled with the old hash.
                label = None
            adversary = schedule.spec(label)
        else:
            adversary = AdversarySpec.of(
                raw_adversary.get("name", "none"),
                label=raw_adversary.get("label"),
                **(raw_adversary.get("params") or {}),
            )
        spec = TrialSpec(
            algorithm=raw_spec["algorithm"],
            n=int(raw_spec["n"]),
            seed=int(raw_spec["seed"]),
            adversary=adversary,
            halt_on_name=bool(raw_spec.get("halt_on_name", False)),
            crash_budget=raw_spec.get("crash_budget"),
            check=bool(raw_spec.get("check", True)),
            kernel=raw_spec.get("kernel", "auto"),
            capture_errors=bool(raw_spec.get("capture_errors", False)),
            monitor=raw_spec.get("monitor", "off"),
            trace=raw_spec.get("trace", "off"),
        )
        trace_pointer = data.get("trace") or {}
        return cls(
            spec=spec,
            schedule=schedule,
            trace_path=trace_pointer.get("path"),
            trace_digest=trace_pointer.get("digest"),
            meta=dict(data.get("meta") or {}),
        )

    def to_json(self) -> str:
        """Pretty-printed document — scenario files are meant to be edited."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


def write_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(scenario.to_json())
        handle.write("\n")


def load_scenario(path: str) -> Scenario:
    """Read a scenario document back (see :meth:`Scenario.from_dict`)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigurationError(
            f"cannot read scenario file {path}: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{path}: not valid JSON ({error})"
        ) from None
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    return Scenario.from_dict(data)
