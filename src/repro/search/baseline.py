"""The bundled-adversary baseline a hunt must beat.

A mined schedule is only interesting relative to the hand-written
gauntlet: this module scores every bundled adversary on the hunt's cell,
under the hunt's objective and an equivalent derived-seed protocol, and
adapts both sides to :class:`~repro.analysis.worst_case.WorstCaseEntry`
rows for the shared comparison table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.worst_case import WorstCaseEntry
from repro.errors import ConfigurationError
from repro.search.objectives import as_objective
from repro.search.strategies import Evaluation, HuntConfig
from repro.sim.batch import AdversarySpec, TrialSpec, run_batch
from repro.sim.rng import derive_seed

#: The hand-written strategies every synthesis run is measured against —
#: the EXP-ADV gauntlet lineup.
BUNDLED_GAUNTLET: Tuple[AdversarySpec, ...] = (
    AdversarySpec.of("none", label="none"),
    AdversarySpec.of("random", rate=0.05, label="random 5%"),
    AdversarySpec.of("random", rate=0.20, label="random 20%"),
    AdversarySpec.of("targeted", label="targeted-priority"),
    AdversarySpec.of("sandwich", label="sandwich"),
    AdversarySpec.of("half-split", label="half-split r1"),
    AdversarySpec.of("half-split", last_round=200, label="half-split all"),
)


def evaluate_bundled(
    config: HuntConfig,
    *,
    trials: int = 5,
    executor=None,
    workers: Optional[int] = None,
) -> List[WorstCaseEntry]:
    """Score each bundled adversary's worst trial on the hunt's cell.

    Each adversary runs ``trials`` seeds derived from the hunt's base
    seed (independent of the search's own streams), through the same
    batch engine and with the same capture semantics the hunt uses.
    """
    if trials < 1:
        raise ConfigurationError(f"the baseline needs >= 1 trial, got {trials}")
    objective = as_objective(config.objective)
    # One dispatch for the whole gauntlet: all specs are independent, and
    # a single run_batch call costs one worker-pool spin-up, not seven.
    specs = [
        TrialSpec(
            algorithm=config.algorithm,
            n=config.n,
            seed=derive_seed(config.seed, "hunt-baseline", adversary.key, t),
            adversary=adversary,
            halt_on_name=config.halt_on_name,
            crash_budget=config.crash_budget,
            check=False,
            kernel=config.kernel,
            capture_errors=True,
        )
        for adversary in BUNDLED_GAUNTLET
        for t in range(trials)
    ]
    all_results = run_batch(specs, executor=executor, workers=workers).trials
    entries = []
    for i, adversary in enumerate(BUNDLED_GAUNTLET):
        results = all_results[i * trials : (i + 1) * trials]
        scores = [objective.score(result) for result in results]
        worst = results[scores.index(max(scores))]
        entries.append(
            WorstCaseEntry(
                label=adversary.key,
                source="bundled",
                score=max(scores),
                rounds=worst.rounds,
                failures=worst.failures,
                messages_sent=worst.messages_sent,
                trials=trials,
                error=worst.error,
            )
        )
    return entries


def hunt_entry(evaluation: Evaluation, label: Optional[str] = None) -> WorstCaseEntry:
    """A hunted candidate as a comparison-table row."""
    best = evaluation.best_result
    return WorstCaseEntry(
        label=label or f"schedule:{evaluation.schedule.digest}",
        source="hunt",
        score=evaluation.score,
        rounds=best.rounds,
        failures=best.failures,
        messages_sent=best.messages_sent,
        trials=len(evaluation.results),
        error=best.error,
    )
