"""The bundled-adversary baseline a hunt must beat.

A mined schedule is only interesting relative to the hand-written
gauntlet: this module scores every bundled adversary on the hunt's cell,
under the hunt's objective and an equivalent derived-seed protocol, and
adapts both sides to :class:`~repro.analysis.worst_case.WorstCaseEntry`
rows for the shared comparison table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.worst_case import WorstCaseEntry
from repro.errors import ConfigurationError
from repro.search.objectives import as_objective
from repro.search.strategies import Evaluation, HuntConfig
from repro.sim.batch import AdversarySpec, TrialSpec, run_batch
from repro.sim.rng import derive_seed

#: The hand-written strategies every synthesis run is measured against —
#: the EXP-ADV gauntlet lineup.
BUNDLED_GAUNTLET: Tuple[AdversarySpec, ...] = (
    AdversarySpec.of("none", label="none"),
    AdversarySpec.of("random", rate=0.05, label="random 5%"),
    AdversarySpec.of("random", rate=0.20, label="random 20%"),
    AdversarySpec.of("targeted", label="targeted-priority"),
    AdversarySpec.of("sandwich", label="sandwich"),
    AdversarySpec.of("half-split", label="half-split r1"),
    AdversarySpec.of("half-split", last_round=200, label="half-split all"),
)

#: The omission-family counterpart: what an ``--fault-family omission``
#: hunt must beat.  Every entry's loss is capped *and* windowed well past
#: the hello round, so the bundled runs terminate and the rounds
#: objective compares finite scores: even post-hello loss can wedge a
#: silenced ball (its leaf is reused under it while its own view never
#: learns), so the windows here were tuned to settings that survive.  A
#: mined schedule is free to discover that a single round-1 hello drop
#: wedges a ball past the round limit — exactly the kind of find the
#: gauntlet should lose to.
OMISSION_GAUNTLET: Tuple[AdversarySpec, ...] = (
    AdversarySpec.of("none", label="none"),
    AdversarySpec.of(
        "omission", p=0.05, max_omissions=4, first=3, last=6,
        label="omission 5%",
    ),
    AdversarySpec.of(
        "omission", p=0.1, max_omissions=6, first=3, last=6,
        label="omission 10%",
    ),
    AdversarySpec.of(
        "omission", p=0.2, max_omissions=8, first=3, last=6,
        label="omission 20%",
    ),
    AdversarySpec.of(
        "omission-targeted", count=1, first=3, last=8,
        label="omission-targeted 1",
    ),
    AdversarySpec.of(
        "omission-targeted", count=2, first=3, last=8,
        label="omission-targeted 2",
    ),
)


def gauntlet_for(config: HuntConfig) -> Tuple[AdversarySpec, ...]:
    """The bundled lineup matching the hunt's fault family."""
    if config.fault_family == "omission":
        return OMISSION_GAUNTLET
    if config.fault_family == "mixed":
        return BUNDLED_GAUNTLET + OMISSION_GAUNTLET[1:]
    return BUNDLED_GAUNTLET


def evaluate_bundled(
    config: HuntConfig,
    *,
    trials: int = 5,
    executor=None,
    workers: Optional[int] = None,
    gauntlet: Optional[Tuple[AdversarySpec, ...]] = None,
) -> List[WorstCaseEntry]:
    """Score each bundled adversary's worst trial on the hunt's cell.

    Each adversary runs ``trials`` seeds derived from the hunt's base
    seed (independent of the search's own streams), through the same
    batch engine and with the same capture semantics the hunt uses.
    ``gauntlet`` defaults to the lineup matching the hunt's fault family
    (:func:`gauntlet_for`).
    """
    if trials < 1:
        raise ConfigurationError(f"the baseline needs >= 1 trial, got {trials}")
    lineup = gauntlet_for(config) if gauntlet is None else gauntlet
    objective = as_objective(config.objective)
    # One dispatch for the whole gauntlet: all specs are independent, and
    # a single run_batch call costs one worker-pool spin-up, not seven.
    specs = [
        TrialSpec(
            algorithm=config.algorithm,
            n=config.n,
            seed=derive_seed(config.seed, "hunt-baseline", adversary.key, t),
            adversary=adversary,
            halt_on_name=config.halt_on_name,
            crash_budget=config.crash_budget,
            check=False,
            kernel=config.kernel,
            capture_errors=True,
        )
        for adversary in lineup
        for t in range(trials)
    ]
    all_results = run_batch(specs, executor=executor, workers=workers).trials
    entries = []
    for i, adversary in enumerate(lineup):
        results = all_results[i * trials : (i + 1) * trials]
        scores = [objective.score(result) for result in results]
        worst = results[scores.index(max(scores))]
        entries.append(
            WorstCaseEntry(
                label=adversary.key,
                source="bundled",
                score=max(scores),
                rounds=worst.rounds,
                failures=worst.failures,
                messages_sent=worst.messages_sent,
                trials=trials,
                error=worst.error,
            )
        )
    return entries


def hunt_entry(evaluation: Evaluation, label: Optional[str] = None) -> WorstCaseEntry:
    """A hunted candidate as a comparison-table row."""
    best = evaluation.best_result
    return WorstCaseEntry(
        label=label or f"schedule:{evaluation.schedule.digest}",
        source="hunt",
        score=evaluation.score,
        rounds=best.rounds,
        failures=best.failures,
        messages_sent=best.messages_sent,
        trials=len(evaluation.results),
        error=best.error,
    )
