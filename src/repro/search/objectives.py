"""Search objectives: scoring a trial outcome, higher = worse for the
algorithm.

Every objective maps a :class:`~repro.sim.batch.TrialResult` to a float
the strategies *maximize*.  Scores are designed to give hill-climbing a
gradient toward a violation rather than a flat pass/fail: the
invariant-checker objective, for instance, scores *partial* violations
(each duplicate name, out-of-range name, or undecided survivor adds
weight) with the round count as a tie-breaker, so a schedule that nearly
breaks uniqueness outranks one that is merely slow.

A captured execution failure (``TrialResult.error``, produced under
``capture_errors=True``) is the strongest possible signal — a deadlock
*is* the liveness violation the paper rules out — and dominates every
violation-sensitive objective via :data:`ERROR_SCORE`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.sim.batch import TrialResult

#: Dominates any achievable round/message count: a trial that failed
#: outright (deadlock past the round budget, engine/spec error) outranks
#: every terminating execution on violation-sensitive objectives.
ERROR_SCORE = 1_000_000.0

#: Weights of the invariant objective's partial-violation terms.  A hard
#: violation (duplicate/out-of-range name) outweighs a missing decision,
#: which outweighs any round-count gradient.
DUPLICATE_WEIGHT = 10_000.0
RANGE_WEIGHT = 10_000.0
MISSING_WEIGHT = 1_000.0


class Objective(ABC):
    """One search target over trial outcomes."""

    name: str = "abstract"

    @abstractmethod
    def score(self, result: TrialResult) -> float:
        """The objective value of one trial (higher = worse case found)."""

    def describe(self) -> str:
        """One line for reports and ``--help``-style listings."""
        return self.__doc__.strip().splitlines()[0]


class RoundsObjective(Objective):
    """Worst-case round count (a deadlocked run scores its round budget)."""

    name = "rounds"

    def score(self, result: TrialResult) -> float:
        # A captured deadlock already reports rounds == the exhausted
        # budget, which exceeds any terminating run's count by design.
        return float(result.rounds)


class MessagesObjective(Objective):
    """Total messages sent (communication-complexity stress)."""

    name = "messages"

    def score(self, result: TrialResult) -> float:
        # A captured failure reports zero messages (the run never
        # finished counting); score it as the find it is rather than
        # steering the search away from deadlocks.
        if result.error is not None:
            return ERROR_SCORE
        return float(result.messages_sent)


class NamespaceObjective(Objective):
    """Namespace width: the largest name decided, plus any range breaks.

    Tight renaming promises names in ``0..n-1``; a schedule forcing the
    maximum name higher (or out of range entirely) attacks the namespace
    bound directly.
    """

    name = "namespace"

    def score(self, result: TrialResult) -> float:
        if result.error is not None:
            return ERROR_SCORE
        names = [name for _, name in result.names]
        if not names:
            return 0.0
        width = float(max(names) + 1)
        out_of_range = sum(
            1 for name in names if not 0 <= name < result.spec.n
        )
        return width + RANGE_WEIGHT * out_of_range


class InvariantObjective(Objective):
    """Renaming-invariant stress: partial violations of the Section 3
    conditions, weighted, with rounds as the climbing gradient.

    Reimplements the :mod:`repro.sim.checker` conditions as a *score*
    instead of a raise: duplicates and out-of-range names (hard safety
    breaks) dominate missing decisions (termination breaks), which
    dominate the normalized round count that lets the search climb while
    everything still holds.
    """

    name = "invariant"

    def score(self, result: TrialResult) -> float:
        if result.error is not None:
            return ERROR_SCORE
        n = result.spec.n
        names = [name for _, name in result.names]
        duplicates = len(names) - len(set(names))
        out_of_range = sum(1 for name in names if not 0 <= name < n)
        # Correct (never-crashed) processes that never decided.
        missing = max(0, n - result.failures - len(names))
        gradient = result.rounds / 1000.0
        return (
            DUPLICATE_WEIGHT * duplicates
            + RANGE_WEIGHT * out_of_range
            + MISSING_WEIGHT * missing
            + gradient
        )


class LivenessObjective(Objective):
    """Liveness-violation indicator: undecided survivors and deadlocks,
    with decision latency (the last round anyone named) as the gradient."""

    name = "liveness"

    def score(self, result: TrialResult) -> float:
        if result.error is not None:
            return ERROR_SCORE + float(result.rounds)
        n = result.spec.n
        missing = max(0, n - result.failures - len(result.names))
        latency = float(
            result.last_round_named
            if result.last_round_named is not None
            else result.rounds
        )
        return MISSING_WEIGHT * missing + latency


class TailObjective(Objective):
    """Round-tail mass proxy: rounds in ⌈log log n⌉ units, the level
    coordinate of the importance-splitting estimator.

    Hunting under this objective finds the schedules that push a run
    deepest into the round-count tail — i.e. the adversarial analogue of
    the rare events :func:`repro.monitor.splitting.run_tail` estimates
    for failure-free runs.  A deadlock (captured error) dominates: it is
    infinite tail mass.
    """

    name = "tail"

    def score(self, result: TrialResult) -> float:
        from repro.monitor.splitting import loglog_unit

        unit = loglog_unit(result.spec.n)
        if result.error is not None:
            return ERROR_SCORE + float(result.rounds)
        return result.rounds / unit


class DisruptionObjective(Objective):
    """Invariant damage per injected fault: rewards schedules that break
    the most with the least interference.

    The numerator is the :class:`InvariantObjective` score; the
    denominator counts every fault the run actually absorbed (crashes,
    dropped links, deferred links, corrupted senders), so a two-link
    omission forcing a duplicate name outranks a blanket loss pattern
    achieving the same — the natural fitness for mining *minimal* fault
    schedules before :func:`repro.search.shrink.shrink` even runs.
    """

    name = "disruption"

    def __init__(self) -> None:
        self._invariant = InvariantObjective()

    def score(self, result: TrialResult) -> float:
        damage = self._invariant.score(result)
        injected = (
            result.failures
            + result.omissions
            + result.delayed
            + result.corrupted
        )
        return damage / (1.0 + injected)


#: The built-in objectives by CLI name.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        RoundsObjective(),
        MessagesObjective(),
        NamespaceObjective(),
        InvariantObjective(),
        LivenessObjective(),
        TailObjective(),
        DisruptionObjective(),
    )
}


def as_objective(value) -> Objective:
    """Coerce a name or instance to an :class:`Objective`."""
    if isinstance(value, Objective):
        return value
    if value in OBJECTIVES:
        return OBJECTIVES[value]
    raise ConfigurationError(
        f"unknown objective {value!r}; choose from {sorted(OBJECTIVES)}"
    )


def objective_summaries() -> List[str]:
    """``name — first docstring line`` for each objective, sorted."""
    return [
        f"{name} — {OBJECTIVES[name].describe()}" for name in sorted(OBJECTIVES)
    ]
