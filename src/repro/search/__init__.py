"""Automated adversary synthesis and counterexample mining.

The paper's guarantees — O(log log n) rounds w.h.p., a tight namespace,
liveness under ``t < n`` crashes — are claims *against an adaptive
adversary*, but the bundled strategies exercise only six hand-written
crash behaviors.  This subsystem closes the gap by *searching* the space
of crash schedules for executions that maximize an objective, in the
spirit of runtime checking of distributed protocol specifications:

* :mod:`repro.search.schedule` — a serializable genotype for adversary
  behavior (per-round crash *and* one-round omission events with
  explicit receiver subsets) that compiles to a columnar-certified
  :class:`~repro.adversary.scheduled.ScheduledAdversary` or
  :class:`~repro.adversary.omission.ScheduledFaultAdversary`, so
  searched schedules run on the fast crash engine;
* :mod:`repro.search.objectives` — pluggable objectives over trial
  outcomes (worst-case rounds, message count, namespace width,
  invariant stress, liveness-violation indicators);
* :mod:`repro.search.strategies` — seeded random search, greedy
  hill-climbing over single-crash mutations, and a population strategy,
  all dispatching trial batches through :mod:`repro.sim.batch`;
* :mod:`repro.search.shrink` — delta-debugging minimization of a found
  schedule down to a minimal repro, emitted as a ready-to-paste pytest
  regression (the PR 3 ghost-leaf workflow, automated).

Entry points: ``python -m repro hunt`` and :func:`run_hunt`.
"""

from repro.search.baseline import (
    BUNDLED_GAUNTLET,
    OMISSION_GAUNTLET,
    evaluate_bundled,
    gauntlet_for,
)
from repro.search.objectives import OBJECTIVES, Objective, as_objective
from repro.search.schedule import EVENT_KINDS, CrashEvent, Schedule
from repro.search.shrink import replay, replay_identical, shrink, to_pytest
from repro.search.strategies import (
    FAULT_FAMILY_CHOICES,
    STRATEGIES,
    Evaluation,
    Evaluator,
    HuntConfig,
    HuntResult,
    run_hunt,
)

__all__ = [
    "CrashEvent",
    "EVENT_KINDS",
    "FAULT_FAMILY_CHOICES",
    "BUNDLED_GAUNTLET",
    "OMISSION_GAUNTLET",
    "evaluate_bundled",
    "gauntlet_for",
    "Schedule",
    "Objective",
    "OBJECTIVES",
    "as_objective",
    "STRATEGIES",
    "Evaluation",
    "Evaluator",
    "HuntConfig",
    "HuntResult",
    "run_hunt",
    "replay",
    "replay_identical",
    "shrink",
    "to_pytest",
]
