"""``repro lint`` — the determinism & kernel-parity static analyzer.

Every guarantee this repro sells — byte-identical results across
executors, kernels, and thread counts — is otherwise enforced only
dynamically, by differential suites that cannot see a hazard until a
seed happens to trip it.  This package turns the determinism contract
into a static gate that runs on every commit (the tier-1 ``lint`` CI
job): an AST pass over ``src/`` with three project-specific rule
families.

* **D-series** — determinism hazards (global RNG state, wall-clock
  reads, unordered iteration, identity ordering, environment reads
  outside the :mod:`repro.config` seam).
* **K-series** — kernel/contract parity (``@certified`` adversaries
  stay on the columnar ``AdversaryContext`` surface,
  ``KernelUnsupported`` raises carry vocabulary reasons,
  ``TrialSpec``/``TrialResult`` fields reach the jsonl serializer).
* **T-series** — thread safety of ``_fanout`` workers (writes only
  through the partition slice, no shared-object mutation).

Known-good exceptions are waived per line with a justified
``# repro: lint-ok[RULE] why`` comment; the engine flags unjustified
and unused waivers, so the suppression inventory is an audited list of
every hazard the project has consciously accepted.  See LINTING.md for
the full rule catalogue.
"""

from repro.lint.engine import (
    LintViolation,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.lint.report import render_report, render_rules

__all__ = [
    "LintViolation",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_report",
    "render_rules",
]
