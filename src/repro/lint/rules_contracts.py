"""K-series rules: kernel/contract parity.

These rules encode project contracts that live *between* modules —
exactly the drift a per-file review misses: a ``@certified`` adversary
quietly reading engine internals the columnar fast path never
materializes, a ``KernelUnsupported`` raised with an ad-hoc message
instead of a rejection-vocabulary reason, or a field added to
``TrialSpec``/``TrialResult`` that silently never reaches the jsonl
rows downstream tooling consumes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.engine import LintViolation, ModuleContext, Rule, register

#: The ``AdversaryContext`` surface the columnar crash engine
#: materializes (see ``repro.core.columnar``'s AdversaryContext
#: reproduction).  Includes the FaultPlan budget fields
#: (``omission_budget_remaining``, ``delay_bound``,
#: ``corrupted_so_far``) the fault generalization added — the fast path
#: materializes them for certified omission plans.  ``processes`` is
#: deliberately absent: it exposes reference-engine process objects that
#: the fast path never builds, so a certified plan reading it is
#: *mis*certified — it would produce different plans on the two engines.
CERTIFIED_CTX_FIELDS = frozenset(
    {"round_no", "running", "alive", "outbox", "crashed_so_far",
     "budget_remaining", "omission_budget_remaining", "delay_bound",
     "corrupted_so_far"}
)

#: The ``@certified`` methods that plan against an ``AdversaryContext``
#: and therefore must stay on the materialized surface.
_PLAN_METHODS = ("plan", "plan_faults")

#: Kernel names that may appear in a ``KernelUnsupported`` raise (the
#: pinnable engines; ``auto`` never raises, it falls back).
KERNEL_NAME_VOCAB = ("reference", "columnar", "vectorized")

#: The fault-family vocabulary a kernel's ``supported=`` tuple may draw
#: from (mirrors ``repro.adversary.base.FAULT_FAMILIES``; kept literal so
#: the linter needs no runtime import of the adversary layer).
FAULT_FAMILY_VOCAB = ("crash", "omission", "delay", "corruption")

#: The spec/result dataclasses whose fields must reach the jsonl
#: serializer, and the method that serializes them.
_SCHEMA_CLASSES = ("TrialSpec", "TrialResult")
_SERIALIZER = "to_row"


def _decorator_names(node: ast.ClassDef) -> List[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


@register
class CertifiedContextSurface(Rule):
    """K201: ``@certified`` plans must stay on the columnar ctx surface."""

    rule_id = "K201"
    title = "certified adversary off the columnar AdversaryContext surface"
    rationale = (
        "The columnar crash engine reproduces exactly the public "
        "AdversaryContext fields (round_no, running, alive, outbox, "
        "crashed_so_far, budget_remaining, plus the FaultPlan budget "
        "state: omission_budget_remaining, delay_bound, "
        "corrupted_so_far).  A @certified plan or plan_faults reading "
        "anything else — ctx.processes above all — produces different "
        "plans on the reference and fast paths, breaking the bit-for-bit "
        "kernel equivalence the certification asserts.  Either stay on "
        "the surface or drop the decorator (the run falls back to the "
        "reference engine with an explicit rejection)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "certified" not in _decorator_names(node):
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in _PLAN_METHODS
                ):
                    yield from self._check_plan(ctx, node, item)

    def _check_plan(
        self, ctx: ModuleContext, cls: ast.ClassDef, plan: ast.FunctionDef
    ) -> Iterator[LintViolation]:
        args = plan.args.posonlyargs + plan.args.args
        if len(args) < 2:
            return
        ctx_name = args[1].arg
        for node in ast.walk(plan):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == ctx_name
                and node.attr not in CERTIFIED_CTX_FIELDS
            ):
                detail = (
                    "reference-engine process objects the fast path "
                    "never materializes"
                    if node.attr == "processes"
                    else "not part of the columnar-materialized surface"
                )
                yield self.violation(
                    ctx,
                    node,
                    f"@certified {cls.name}.{plan.name} reads "
                    f"{ctx_name}.{node.attr} ({detail}); certified plans "
                    "may only read: "
                    + ", ".join(sorted(CERTIFIED_CTX_FIELDS)),
                )


@register
class KernelRejectionVocabulary(Rule):
    """K202: ``KernelUnsupported`` raises carry (kernel, vocabulary reason)."""

    rule_id = "K202"
    title = "KernelUnsupported without a vocabulary reason"
    rationale = (
        "Rejections are part of the kernel-selection contract: the "
        "kernel argument must name a pinnable engine "
        "(reference/columnar/vectorized) and the reason must flow from "
        "the shared rejection predicates (a rejects()/"
        "certification_failure result), not an inline string — inline "
        "messages drift apart from what auto-fallback actually checks, "
        "and tests matching rejection text silently stop covering them.  "
        "The same contract covers the fault families a kernel declares: "
        "a certification_failure(supported=...) tuple outside the "
        "crash/omission/delay/corruption vocabulary would make the "
        "rejection name a family no adversary can declare."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                call = node.exc
                if not isinstance(call, ast.Call):
                    continue
                if self._call_name(call) != "KernelUnsupported":
                    continue
                yield from self._check_raise(ctx, node, call)
            elif isinstance(node, ast.Call):
                if self._call_name(node) != "certification_failure":
                    continue
                yield from self._check_supported(ctx, node)

    @staticmethod
    def _call_name(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def _check_supported(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Iterator[LintViolation]:
        for kw in call.keywords:
            if kw.arg != "supported":
                continue
            value = kw.value
            if not isinstance(value, (ast.Tuple, ast.List)):
                # A computed vocabulary (variable, helper) is out of this
                # rule's static reach; the runtime predicate still names
                # unsupported families in its rejection text.
                return
            for element in value.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    and element.value not in FAULT_FAMILY_VOCAB
                ):
                    yield self.violation(
                        ctx,
                        element,
                        f"supported fault family {element.value!r} is not "
                        "in the vocabulary "
                        f"{FAULT_FAMILY_VOCAB}; rejections must name a "
                        "declarable family",
                    )

    def _check_raise(
        self, ctx: ModuleContext, node: ast.Raise, call: ast.Call
    ) -> Iterator[LintViolation]:
        args: List[Optional[ast.expr]] = [None, None]  # kernel, reason
        positional = list(call.args)
        for i in range(min(2, len(positional))):
            args[i] = positional[i]
        for kw in call.keywords:
            if kw.arg == "kernel":
                args[0] = kw.value
            elif kw.arg == "reason":
                args[1] = kw.value
        kernel, reason = args
        if kernel is None or reason is None or len(positional) > 2:
            yield self.violation(
                ctx,
                node,
                "KernelUnsupported takes exactly (kernel, reason)",
            )
            return
        if (
            isinstance(kernel, ast.Constant)
            and isinstance(kernel.value, str)
            and kernel.value not in KERNEL_NAME_VOCAB
        ):
            yield self.violation(
                ctx,
                node,
                f"kernel {kernel.value!r} is not in the pinnable-engine "
                f"vocabulary {KERNEL_NAME_VOCAB}",
            )
        if isinstance(reason, ast.Constant) and isinstance(reason.value, str):
            yield self.violation(
                ctx,
                node,
                "inline literal reason; pass the rejects()/"
                "certification_failure result so the raise and the "
                "auto-fallback share one rejection vocabulary",
            )


@register
class SchemaDrift(Rule):
    """K203: every ``TrialSpec``/``TrialResult`` field reaches ``to_row``."""

    rule_id = "K203"
    title = "TrialSpec/TrialResult field missing from the jsonl serializer"
    rationale = (
        "The jsonl rows are the interchange format between the batch "
        "engine, the hunt/tail tooling, and offline analysis; a field "
        "added to TrialSpec/TrialResult but not to to_row() silently "
        "vanishes from every persisted artifact.  The rule matches "
        "field names against the string keys to_row() emits.  Fields "
        "that are deliberately not serialized (composites flattened "
        "into other keys, unbounded payloads) carry a per-field "
        "suppression saying why."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        classes = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef) and node.name in _SCHEMA_CLASSES
        }
        if not classes:
            return
        serialized: Set[str] = set()
        for cls in classes.values():
            serialized |= self._serialized_keys(cls)
        if not serialized:
            # No serializer in this module: nothing to check against
            # (e.g. a TrialSpec re-export or test double).
            return
        for cls in classes.values():
            for item in cls.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                if not isinstance(item.target, ast.Name):
                    continue
                field_name = item.target.id
                if field_name.startswith("_"):
                    continue
                if field_name not in serialized:
                    yield self.violation(
                        ctx,
                        item,
                        f"{cls.name}.{field_name} never appears in "
                        f"{_SERIALIZER}(); serialize it or justify the "
                        "omission with a suppression",
                    )

    @staticmethod
    def _serialized_keys(cls: ast.ClassDef) -> Set[str]:
        """String keys the class's serializer emits (dict literals and
        ``row["key"] = ...`` stores)."""
        keys: Set[str] = set()
        for item in cls.body:
            if not (
                isinstance(item, ast.FunctionDef) and item.name == _SERIALIZER
            ):
                continue
            for node in ast.walk(item):
                if isinstance(node, ast.Dict):
                    for key in node.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Subscript)
                ):
                    sub = node.targets[0].slice
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        keys.add(sub.value)
        return keys
