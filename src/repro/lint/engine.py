"""AST walker, rule registry, and suppression comments for ``repro lint``.

A *rule* is a small object with an id (``D101``), a one-line title, a
rationale paragraph (rendered by ``repro lint --rules`` and LINTING.md),
and a ``check`` generator over one parsed module.  The engine owns
everything rules should not re-implement: file discovery, parsing,
parent links, dotted-name resolution through import aliases, suppression
comments, and the two meta-rules about suppressions themselves.

Suppressions
------------
A violation is waived by a ``# repro: lint-ok[RULE] justification``
comment on the flagged line, or on a comment-only line directly above
it.  The justification text is mandatory (S001) and a waiver that
matches no violation is itself flagged (S002), so every suppression in
the tree documents a real, consciously accepted exception.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError

#: Waiver grammar: "repro: lint-ok[D101] why" or "lint-ok[D101,K203] why"
#: after a hash (spelled without the hash here so this comment is not
#: itself parsed as a waiver).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\]"
    r"(?P<why>[^\n]*)"
)


class LintConfigError(ReproError):
    """The linter was invoked on paths or rules that do not exist."""


@dataclass(frozen=True)
class LintViolation:
    """One finding: a rule, a location, and the offending message."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line: RULE message`` (the clickable report line)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``lint-ok`` waiver: the rules it names and the lines it covers."""

    line: int
    rules: Tuple[str, ...]
    covers: Tuple[int, ...]
    justified: bool


class ModuleContext:
    """One parsed module plus the shared lookups every rule needs."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        #: child -> parent for every AST node (set-membership decisions,
        #: "is this iteration feeding an ordered sink" style questions).
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: ``alias -> module`` for plain imports (``import numpy as np``
        #: maps ``np -> numpy``) and ``name -> module.name`` for
        #: from-imports (``from time import time`` maps
        #: ``time -> time.time``).
        self.import_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def dotted(self, node: ast.AST) -> Optional[str]:
        """``node`` as a dotted name with import aliases resolved.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the
        module imported ``numpy as np``; a bare name imported via
        ``from x import y`` resolves to ``x.y``.  Non-name expressions
        resolve to None.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.import_aliases:
            head = self.import_aliases[head]
        elif head in self.from_imports:
            head = self.from_imports[head]
        parts.append(head)
        return ".".join(reversed(parts))

    def is_comment_only(self, line: int) -> bool:
        """Whether 1-indexed ``line`` holds nothing but a comment."""
        if not 1 <= line <= len(self.lines):
            return False
        return self.lines[line - 1].lstrip().startswith("#")


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`."""

    rule_id: str = ""
    title: str = ""
    #: What determinism/parity property the rule protects and when a
    #: suppression is legitimate — rendered verbatim in the catalogue.
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        """Yield this rule's findings for one module."""
        raise NotImplementedError

    def violation(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> LintViolation:
        """A finding anchored at ``node``'s line."""
        return LintViolation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            rule=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one :class:`Rule` subclass to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.title or not rule.rationale:
        raise AssertionError(f"rule {cls.__name__} is missing id/title/rationale")
    if rule.rule_id in _REGISTRY:
        raise AssertionError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order (rule modules imported lazily)."""
    # Importing the rule modules populates the registry as a side effect.
    from repro.lint import rules_contracts  # noqa: F401
    from repro.lint import rules_determinism  # noqa: F401
    from repro.lint import rules_threading  # noqa: F401

    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


# ------------------------------------------------------------- suppressions


def find_suppressions(source: str) -> List[Suppression]:
    """Every ``lint-ok`` waiver in ``source``, with covered lines.

    A waiver on a code line covers that line; a waiver on a comment-only
    line covers the comment line and the line below it (the idiomatic
    "justification above the statement" placement).
    """
    lines = source.splitlines()
    found: List[Suppression] = []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
        )
        covers: Tuple[int, ...] = (lineno,)
        if text.lstrip().startswith("#"):
            covers = (lineno, lineno + 1)
        found.append(
            Suppression(
                line=lineno,
                rules=rules,
                covers=covers,
                justified=bool(match.group("why").strip()),
            )
        )
    return found


def _apply_suppressions(
    ctx: ModuleContext,
    violations: List[LintViolation],
    suppressions: List[Suppression],
) -> List[LintViolation]:
    """Drop waived findings; flag unjustified (S001) and unused (S002) waivers."""
    kept: List[LintViolation] = []
    used: Set[int] = set()
    known = {rule.rule_id for rule in all_rules()}
    for violation in violations:
        waived = False
        for idx, sup in enumerate(suppressions):
            if violation.rule in sup.rules and violation.line in sup.covers:
                used.add(idx)
                waived = True
        if not waived:
            kept.append(violation)
    for idx, sup in enumerate(suppressions):
        if not sup.justified:
            kept.append(
                LintViolation(
                    path=ctx.path,
                    line=sup.line,
                    rule="S001",
                    message=(
                        "suppression without justification: follow "
                        "lint-ok[...] with why the hazard is acceptable"
                    ),
                )
            )
        unknown = [rule for rule in sup.rules if rule not in known]
        for rule in unknown:
            kept.append(
                LintViolation(
                    path=ctx.path,
                    line=sup.line,
                    rule="S002",
                    message=f"suppression names unknown rule {rule!r}",
                )
            )
        if idx not in used and not unknown:
            kept.append(
                LintViolation(
                    path=ctx.path,
                    line=sup.line,
                    rule="S002",
                    message=(
                        "unused suppression: no "
                        + "/".join(sup.rules)
                        + " finding on the covered line(s) — delete it"
                    ),
                )
            )
    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    return kept


# ------------------------------------------------------------------ running


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[LintViolation]:
    """Lint one module's source text; syntax errors are findings too."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            LintViolation(
                path=path,
                line=error.lineno or 1,
                rule="E999",
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    found: List[LintViolation] = []
    for rule in rules if rules is not None else all_rules():
        found.extend(rule.check(ctx))
    return _apply_suppressions(ctx, found, find_suppressions(source))


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintConfigError(f"no such file or directory: {raw}")
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[LintViolation]:
    """Lint every python file under ``paths``; findings in path order."""
    found: List[LintViolation] = []
    for file_path in iter_python_files(paths):
        found.extend(
            lint_source(
                file_path.read_text(encoding="utf-8"),
                path=file_path.as_posix(),
                rules=rules,
            )
        )
    return found
