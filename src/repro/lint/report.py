"""Rendering for ``repro lint``: text/json reports and the rule catalogue."""

from __future__ import annotations

import json
import textwrap
from typing import Dict, List, Sequence

from repro.lint.engine import LintViolation, Rule

#: Exit codes: clean / findings / bad invocation (argparse uses 2 too).
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def render_report(
    violations: Sequence[LintViolation],
    *,
    files_checked: int,
    fmt: str = "text",
) -> str:
    """The run's report: grouped findings plus a one-line summary."""
    if fmt == "json":
        return json.dumps(
            {
                "files_checked": files_checked,
                "violations": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "rule": v.rule,
                        "message": v.message,
                    }
                    for v in violations
                ],
            },
            indent=2,
            sort_keys=True,
        )
    lines: List[str] = [v.render() for v in violations]
    by_rule: Dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    if violations:
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(violations)} finding(s) in {files_checked} file(s): "
            f"{breakdown}"
        )
        lines.append(
            "suppress a consciously accepted hazard with "
            "'# repro: lint-ok[RULE] justification' on (or above) the "
            "flagged line; see LINTING.md"
        )
    else:
        lines.append(f"{files_checked} file(s) clean")
    return "\n".join(lines)


def render_rules(rules: Sequence[Rule]) -> str:
    """The rule catalogue (``repro lint --rules``), id-ordered."""
    blocks: List[str] = []
    for rule in rules:
        body = textwrap.fill(
            rule.rationale,
            width=72,
            initial_indent="    ",
            subsequent_indent="    ",
        )
        blocks.append(f"{rule.rule_id}  {rule.title}\n{body}")
    blocks.append(
        "S001  suppression without justification\n"
        "    Every lint-ok waiver must say why the hazard is acceptable;\n"
        "    the suppression inventory doubles as the audited list of\n"
        "    consciously accepted exceptions.\n"
        "S002  unused or unknown suppression\n"
        "    A waiver that matches no finding (or names a rule that does\n"
        "    not exist) is stale documentation; delete or fix it."
    )
    return "\n\n".join(blocks)
