"""D-series rules: determinism hazards.

Each rule targets one way a PR can silently break the repo's byte-
identity guarantee (same spec + seed => same bytes, on every executor,
kernel, and thread count).  The hazards are exactly the ones the
differential suites can only catch *dynamically*, when a lucky seed
trips them — the point of the static gate is to catch the pattern on
every commit instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.engine import LintViolation, ModuleContext, Rule, register

#: The only modules allowed to touch ``os.environ`` (the config seam,
#: see :mod:`repro.config`).  Matched as posix-path suffixes.
CONFIG_SEAM = ("repro/config.py",)

#: ``random`` module functions that read or write the *global* MT state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "seed", "random", "randint", "randrange", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "triangular",
        "getrandbits", "getstate", "setstate", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "paretovariate", "vonmisesvariate",
        "weibullvariate", "binomialvariate",
    }
)

#: Wall-clock reads: anything whose value depends on when the run
#: happened rather than on the spec + seed.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.localtime", "time.gmtime",
        "time.ctime", "time.asctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: RNG draw methods whose *argument* order matters (feeding them an
#: unordered collection consumes randomness in hash order).
_RNG_CONSUMERS = frozenset({"choice", "choices", "sample", "shuffle"})

#: Environment surfaces D105 polices (reads and writes alike).
_ENV_NAMES = frozenset({"os.environ", "os.getenv", "os.putenv", "os.unsetenv"})


def _is_set_like(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to an unordered set (statically visible)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_dict_view(node: ast.AST) -> Optional[str]:
    """``"keys"``/``"values"``/``"items"`` when ``node`` is that view call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


@register
class GlobalRandomState(Rule):
    """D101: calls into the process-global ``random`` / ``numpy.random`` state."""

    rule_id = "D101"
    title = "global RNG state call"
    rationale = (
        "All randomness must flow from per-trial seeds through "
        "explicitly constructed generators (random.Random(seed), the MT "
        "stream bank).  Module-level random.* / numpy.random.* calls "
        "share one hidden global state, so results depend on call order "
        "across the whole process — the exact hazard the serial==mp and "
        "thread-invariance suites exist to rule out.  There is no "
        "legitimate use in src/; construct a seeded generator instead."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted is None:
                continue
            if (
                dotted.startswith("random.")
                and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() draws from the process-global RNG; "
                    "construct random.Random(seed) instead",
                )
            elif dotted.startswith("numpy.random."):
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() uses numpy's global (or entropy-seeded) "
                    "RNG; derive state from the trial seed instead",
                )


@register
class WallClockRead(Rule):
    """D102: wall-clock reads that can leak into result paths."""

    rule_id = "D102"
    title = "wall-clock read"
    rationale = (
        "time.*/datetime.now() values differ run to run, so any result "
        "they touch is unreproducible.  Legitimate uses are wall-clock "
        "telemetry (elapsed-time fields, progress display) that never "
        "feeds a result row or an RNG — suppress those with a "
        "justification saying exactly that."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted in _WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() reads the wall clock; results must be a "
                    "function of spec + seed only",
                )


@register
class UnorderedIteration(Rule):
    """D103: set iteration order (or dict views) feeding ordered output / RNG."""

    rule_id = "D103"
    title = "iteration over unordered collection"
    rationale = (
        "Set iteration order follows item hashes, which vary with "
        "PYTHONHASHSEED and pointer values — looping over a set, "
        "materializing it with list()/tuple(), or feeding a set or dict "
        "view to rng.choice/sample/shuffle makes output depend on that "
        "order.  Sort first (sorted(...) is the sanctioned consumer) or "
        "iterate the original ordered sequence."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_like(node.iter):
                yield self.violation(
                    ctx,
                    node.iter,
                    "for-loop over a set: iteration order follows item "
                    "hashes; sort first",
                )
            elif isinstance(node, ast.comprehension) and _is_set_like(node.iter):
                yield self.violation(
                    ctx,
                    node.iter,
                    "comprehension over a set: iteration order follows "
                    "item hashes; sort first",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[LintViolation]:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter", "next")
            and node.args
            and _is_set_like(node.args[0])
        ):
            yield self.violation(
                ctx,
                node,
                f"{node.func.id}() materializes a set in hash order; "
                "use sorted(...) instead",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RNG_CONSUMERS
            and node.args
        ):
            arg = node.args[0]
            view = _is_dict_view(arg)
            if _is_set_like(arg) or view is not None:
                what = f"a .{view}() view" if view else "a set"
                yield self.violation(
                    ctx,
                    node,
                    f".{node.func.attr}({what}) consumes randomness in "
                    "collection-iteration order; pass a sorted sequence",
                )


@register
class IdentityOrdering(Rule):
    """D104: ``id()`` / ``hash()`` values, which vary per process."""

    rule_id = "D104"
    title = "id()/hash() identity value"
    rationale = (
        "id() is an address (differs per process, so mp workers disagree "
        "with the serial path) and hash() of str/bytes is randomized per "
        "interpreter start.  Either is fine for *within-process* "
        "dedup/cache keys whose iteration order never reaches output — "
        "every such site must say so in a suppression; anything feeding "
        "ordering, output, or cross-process state is a real bug."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{node.func.id}() varies across processes/interpreter "
                    "starts; justify (within-process key only) or use a "
                    "stable key",
                )


@register
class UnstableTracePayload(Rule):
    """D106: unstable values recorded into trace/telemetry payloads."""

    rule_id = "D106"
    title = "unstable value in a recorded event payload"
    rationale = (
        "Traces and telemetry records are compared across kernels and "
        "re-runs (the differential suite pins full-vs-cheap equality, "
        "and scenario replays diff against stored traces), so a payload "
        "built inside a .record(...) call must be a function of spec + "
        "seed only.  Wall-clock reads, id()/hash() values, set displays, "
        "and dict views all vary run to run or interpreter to "
        "interpreter; compute timings outside the payload (StageTimers "
        "passes precomputed deltas) and sort collections before "
        "recording them."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record"
            ):
                continue
            for argument in [*node.args, *(kw.value for kw in node.keywords)]:
                yield from self._check_payload(ctx, argument)

    def _check_payload(
        self, ctx: ModuleContext, payload: ast.AST
    ) -> Iterator[LintViolation]:
        for node in ast.walk(payload):
            if _is_set_like(node):
                yield self.violation(
                    ctx,
                    node,
                    "set in a recorded payload: its iteration order "
                    "follows item hashes; record sorted(...) instead",
                )
                continue
            view = _is_dict_view(node)
            if view is not None:
                yield self.violation(
                    ctx,
                    node,
                    f".{view}() view in a recorded payload serializes in "
                    "insertion order; record a sorted sequence instead",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted in _WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() inside a recorded payload: timings "
                    "belong in telemetry deltas computed outside the "
                    "record call, never in event data",
                )
            elif isinstance(node.func, ast.Name) and node.func.id in (
                "id",
                "hash",
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{node.func.id}() inside a recorded payload varies "
                    "per process; use a stable key",
                )


@register
class EnvOutsideSeam(Rule):
    """D105: ``os.environ`` touched outside the :mod:`repro.config` seam."""

    rule_id = "D105"
    title = "environment read outside the config seam"
    rationale = (
        "Environment knobs may steer wall-clock strategy only, never "
        "results — and auditing that contract is only possible when "
        "every read lives in one place.  repro/config.py is that seam: "
        "it validates, documents, and types each REPRO_* knob.  Add a "
        "reader there instead of touching os.environ in feature code "
        "(scattered reads are a re-creation of the pre-centralization "
        "hazard this rule was written against)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        if any(ctx.path.endswith(seam) for seam in CONFIG_SEAM):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only report the outermost dotted reference, once
            # (os.environ.get(...) is one finding, not three).
            if isinstance(ctx.parents.get(node), ast.Attribute):
                continue
            dotted = ctx.dotted(node)
            if dotted is None:
                continue
            if dotted in _ENV_NAMES or dotted.startswith("os.environ."):
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted} outside repro/config.py; add a typed "
                    "reader to the config seam instead",
                )
