"""T-series rules: thread safety of the ``REPRO_VEC_THREADS`` fanout.

The vectorized kernel's byte-identity-at-any-thread-count guarantee
rests on one discipline: a worker dispatched by ``_fanout(work, count)``
owns exactly its contiguous column partition.  It may write shared
arrays only through views sliced by its partition parameter, and it may
not mutate shared Python objects at all (list appends from worker
threads interleave nondeterministically even under the GIL).  These
rules check that discipline statically for every function passed to a
``_fanout`` dispatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.engine import LintViolation, ModuleContext, Rule, register

#: Mutating methods a fanout worker may not call on shared objects.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "pop", "popitem",
        "remove", "discard", "clear", "setdefault", "sort", "reverse",
        "appendleft", "extendleft",
    }
)


def _fanout_workers(ctx: ModuleContext) -> List[ast.FunctionDef]:
    """Every function passed (by name) to a ``_fanout(...)`` call.

    Worker defs are closures, conventionally all named ``work``; each
    dispatch resolves to the nearest definition above it, so several
    enclosing functions may each define their own worker.
    """
    defs: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef):
            defs.setdefault(node.name, []).append(node)
    workers: List[ast.FunctionDef] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "_fanout" or not node.args:
            continue
        target = node.args[0]
        if not isinstance(target, ast.Name):
            continue
        above = [
            candidate
            for candidate in defs.get(target.id, [])
            if candidate.lineno <= node.lineno
        ]
        if above:
            worker = max(above, key=lambda candidate: candidate.lineno)
            if worker not in workers:
                workers.append(worker)
    return workers


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names a target *binds*.

    ``sub[0] = ...`` and ``obj.attr = ...`` bind nothing — the base name
    stays whatever the closure says it is — so only plain names and
    destructuring structure count.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _locals_of(worker: ast.FunctionDef) -> Set[str]:
    """Names bound inside ``worker`` (params + every assignment target)."""
    bound: Set[str] = {
        arg.arg
        for arg in (
            worker.args.posonlyargs
            + worker.args.args
            + worker.args.kwonlyargs
        )
    }
    if worker.args.vararg:
        bound.add(worker.args.vararg.arg)
    if worker.args.kwarg:
        bound.add(worker.args.kwarg.arg)
    for node in ast.walk(worker):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.comprehension)):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars:
            targets = [node.optional_vars]
        for target in targets:
            bound.update(_binding_names(target))
    return bound


def _mentions(tree: ast.expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(tree)
    )


def _slice_param(worker: ast.FunctionDef) -> str:
    """The partition parameter: a fanout worker's first argument."""
    args = worker.args.posonlyargs + worker.args.args
    return args[0].arg if args else ""


@register
class PartitionSliceWrites(Rule):
    """T301: fanout workers write shared arrays only via their partition."""

    rule_id = "T301"
    title = "fanout worker writes a shared array outside its partition slice"
    rationale = (
        "Byte-identity at any REPRO_VEC_THREADS count holds because the "
        "column partitions are disjoint: each worker derives "
        "partition-local views (sub = shared[:, cols]) and writes only "
        "through them.  A subscript store or ufunc out= targeting a "
        "closure array without the slice parameter in the index races "
        "other workers on overlapping elements, making results depend "
        "on thread scheduling."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for worker in _fanout_workers(ctx):
            bound = _locals_of(worker)
            part = _slice_param(worker)
            for node in ast.walk(worker):
                yield from self._check_node(ctx, worker, node, bound, part)

    def _check_node(
        self,
        ctx: ModuleContext,
        worker: ast.FunctionDef,
        node: ast.AST,
        bound: Set[str],
        part: str,
    ) -> Iterator[LintViolation]:
        stores: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            stores = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            stores = [node.target]
        for target in stores:
            if not isinstance(target, ast.Subscript):
                continue
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id not in bound
                and not _mentions(target.slice, part)
            ):
                yield self.violation(
                    ctx,
                    target,
                    f"fanout worker {worker.name!r} stores into shared "
                    f"{base.id!r} without the partition parameter "
                    f"{part!r} in the index; write through a "
                    "partition-sliced view",
                )
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "out"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id not in bound
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"fanout worker {worker.name!r} directs ufunc "
                        f"out= at shared {kw.value.id!r}; target a "
                        "partition-sliced local view",
                    )


@register
class SharedObjectMutation(Rule):
    """T302: fanout workers must not mutate shared Python objects."""

    rule_id = "T302"
    title = "fanout worker mutates a shared Python object"
    rationale = (
        "Workers run concurrently: appending to a shared list, updating "
        "a shared dict, or rebinding closure state (nonlocal/global) "
        "interleaves in thread-scheduling order, so the result — or at "
        "minimum its internal order — varies run to run.  Workers "
        "communicate only by writing their own array partition; "
        "aggregate in the dispatching caller after the fanout returns."
    )

    def check(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        for worker in _fanout_workers(ctx):
            bound = _locals_of(worker)
            for node in ast.walk(worker):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    kind = (
                        "global"
                        if isinstance(node, ast.Global)
                        else "nonlocal"
                    )
                    yield self.violation(
                        ctx,
                        node,
                        f"fanout worker {worker.name!r} declares {kind} "
                        f"{', '.join(node.names)}: workers may not rebind "
                        "shared state",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in bound
                    # Module aliases are not shared containers: np.add is
                    # a ufunc call, and its out= target is T301's job.
                    and node.func.value.id not in ctx.import_aliases
                    and node.func.value.id not in ctx.from_imports
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"fanout worker {worker.name!r} calls "
                        f"{node.func.value.id}.{node.func.attr}() on a "
                        "shared object; aggregate after the fanout "
                        "instead",
                    )
