"""Fixed-effort multilevel importance splitting over round counts.

The paper's running-time theorem is a tail statement — w.h.p. every ball
names within O(log log n) rounds — but direct Monte Carlo can only see
tail mass down to ~1/trials.  This estimator reaches far deeper by
splitting the rare event "the run is still going after round L" into a
chain of level crossings

    P(rounds > L_m) = P(rounds > L_0) · ∏ P(rounds > L_j | rounds > L_{j-1})

and estimating each conditional factor with a fixed-size population:
stage 0 runs fresh trials to the first level; each later stage resamples
the previous stage's survivor checkpoints (with replacement), clones
them under freshly derived seeds, and advances the clones to the next
level.  Cloning mid-run is sound because the protocol is Markov given
the exported engine state (positions, lifecycle, subtree counts): future
coin flips are independent of past ones, so a fresh derived stream is
just another realization of the conditional law.

Levels are absolute round numbers, by default the ladder of *odd* rounds
spanning k·⌈log log n⌉ for a range of k (balls only halt in odd position
rounds, so even levels would add degenerate factors of exactly 1).  With
T trials per stage and m stages of factor ~p each, the reachable tail is
p^m (e.g. three stages of p ≈ 1e-3 ≈ 1e-9) at cost m·T runs instead of
1/p^m; because the factors decay with depth, ``growth`` lets the deep
(cheap, two-round) stages run larger populations than stage 0.

Everything is deterministic by construction: trial seeds and resampling
choices all derive from the root seed via :func:`repro.sim.rng.derive_seed`
scopes, work ships in fixed-size chunks, and ``Pool.map`` preserves
chunk order — so serial and multiprocessing executions produce
byte-identical results (asserted by the estimator determinism suite).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import derive_rng, derive_seed

#: Kernel names the estimator accepts ("auto" resolves in the driver
#: process so worker chunks never re-negotiate).
TAIL_KERNELS = ("auto", "columnar", "vectorized")


def loglog_unit(n: int) -> int:
    """⌈log₂ log₂ n⌉, clamped to ≥ 1 — the paper's round-complexity unit."""
    inner = math.log2(max(2, n))
    return max(1, math.ceil(math.log2(max(2.0, inner))))


def default_levels(n: int, k_min: int = 2, k_max: int = 5) -> Tuple[int, ...]:
    """Odd-round levels spanning ``k_min``·⌈log log n⌉ .. ``k_max``·⌈log log n⌉.

    Balls only halt in position rounds (odd rounds ≥ 3), so "running
    after round 2m" is the *same event* as "running after round 2m-1"
    and even levels would contribute degenerate factors of exactly 1.
    The useful ladder is consecutive odd rounds — each crossing is one
    position-round survival, which keeps every conditional factor away
    from 0 and 1 even though the round distribution is doubly-
    exponentially concentrated.
    """
    if k_min < 1 or k_max < k_min:
        raise ConfigurationError(
            f"need 1 <= k_min <= k_max, got k_min={k_min}, k_max={k_max}"
        )
    unit = loglog_unit(n)
    lo, hi = k_min * unit, k_max * unit
    # Round the low end DOWN to its odd round (the events are equal and
    # the first level then covers P(rounds > k_min·unit) exactly) and
    # the high end UP so the ladder spans the whole requested k range.
    first = max(3, lo if lo % 2 == 1 else lo - 1)
    last = max(first, hi if hi % 2 == 1 else hi + 1)
    return tuple(range(first, last + 1, 2))


@dataclass(frozen=True)
class TailConfig:
    """One tail-estimation job: the cell, the levels, the effort."""

    n: int
    algorithm: str = "balls-into-leaves"
    seed: int = 0
    #: Trials per stage (the fixed splitting effort).
    trials: int = 256
    #: Absolute round-number levels, strictly increasing; empty = the
    #: :func:`default_levels` ladder.
    levels: Tuple[int, ...] = ()
    halt_on_name: bool = False
    kernel: str = "auto"
    #: Work-unit size: trials ship to workers in chunks of exactly this
    #: many, independent of the executor, so parallel runs replay the
    #: serial schedule.
    chunk: int = 64
    #: Per-stage population growth factor.  The conditional factors of
    #: this process decay doubly-exponentially (survivors of level L are
    #: "almost done" states), so a fixed-effort ladder goes extinct after
    #: one or two stages; growth > 1 spends more clones on the deep
    #: stages, which are cheap — each clone only advances two rounds.
    growth: float = 1.0
    #: Hard cap on any single stage's population.
    max_trials: int = 65536

    def stage_trials(self, stage: int) -> int:
        """Population size of stage ``stage``: trials·growth^stage, capped."""
        return min(self.max_trials, max(1, round(self.trials * self.growth**stage)))

    def resolved_levels(self) -> Tuple[int, ...]:
        levels = self.levels or default_levels(self.n)
        if any(b <= a for a, b in zip(levels, levels[1:])) or levels[0] < 1:
            raise ConfigurationError(
                f"levels must be strictly increasing round numbers >= 1, "
                f"got {levels}"
            )
        return tuple(int(level) for level in levels)


@dataclass(frozen=True)
class StageResult:
    """One level crossing: survivors / trials estimates the factor."""

    stage: int
    level: int
    trials: int
    survivors: int

    @property
    def p(self) -> float:
        return self.survivors / self.trials


@dataclass(frozen=True)
class TailResult:
    """The full splitting ladder for one cell."""

    config: TailConfig
    unit: int
    levels: Tuple[int, ...]
    stages: Tuple[StageResult, ...] = field(default_factory=tuple)

    def estimate_after(self, stage: int) -> float:
        """P(rounds > levels[stage]) — the product of factors so far."""
        product = 1.0
        for result in self.stages[: stage + 1]:
            product *= result.p
        return product

    @property
    def estimate(self) -> float:
        """P(rounds > levels[-1]); 0.0 if any stage lost every trial."""
        return self.estimate_after(len(self.stages) - 1)

    @property
    def upper_bound(self) -> Optional[float]:
        """When the ladder went extinct (last stage had 0 survivors),
        the one-survivor resolution limit: the estimate would have been
        at most ~ estimate_before · 1/N.  None for a live ladder."""
        if not self.stages or self.stages[-1].survivors > 0:
            return None
        last = self.stages[-1]
        before = self.estimate_after(last.stage - 1) if last.stage else 1.0
        return before / last.trials

    @property
    def rel_std(self) -> Optional[float]:
        """First-order relative standard error of the fixed-effort
        estimator, √Σ(1-p_j)/(N·p_j); None once a stage hit p = 0."""
        total = 0.0
        for result in self.stages:
            if result.survivors == 0:
                return None
            total += (1.0 - result.p) / (result.trials * result.p)
        return math.sqrt(total)

    def rows(self) -> List[Dict[str, Any]]:
        """jsonl rows: one per stage plus a final estimate row."""
        config = self.config
        base = {
            "algorithm": config.algorithm,
            "n": config.n,
            "seed": config.seed,
            "halt_on_name": config.halt_on_name,
            "unit": self.unit,
        }
        rows = []
        for result in self.stages:
            rows.append(
                dict(
                    base,
                    row="stage",
                    stage=result.stage,
                    level=result.level,
                    trials=result.trials,
                    survivors=result.survivors,
                    p=result.p,
                    estimate=self.estimate_after(result.stage),
                )
            )
        rows.append(
            dict(
                base,
                row="estimate",
                level=self.levels[-1] if self.levels else None,
                levels=list(self.levels),
                estimate=self.estimate,
                rel_std=self.rel_std,
                upper_bound=self.upper_bound,
            )
        )
        return rows

    def render(self) -> str:
        lines = [
            f"tail estimate: {self.config.algorithm} n={self.config.n} "
            f"seed={self.config.seed} unit=ceil(loglog n)={self.unit}",
            f"{'stage':>5} {'level':>6} {'k':>6} {'trials':>7} "
            f"{'survivors':>9} {'p':>12} {'estimate':>12}",
        ]
        for result in self.stages:
            lines.append(
                f"{result.stage:>5} {result.level:>6} "
                f"{result.level / self.unit:>6.2f} {result.trials:>7} "
                f"{result.survivors:>9} {result.p:>12.3e} "
                f"{self.estimate_after(result.stage):>12.3e}"
            )
        rel = self.rel_std
        bound = self.upper_bound
        if bound is not None:
            last = self.stages[-1]
            lines.append(
                f"extinct at level {last.level}: 0 of {last.trials} clones "
                f"survived, so P(rounds > {last.level}) <~ {bound:.3e} "
                f"(raise --trials/--growth to resolve deeper)"
            )
        lines.append(
            f"P(rounds > {self.levels[-1]}) ~= {self.estimate:.3e}"
            + (f" (rel_std ~= {rel:.2f})" if rel is not None else "")
        )
        return "\n".join(lines)


# ----------------------------------------------------------------- worker side

#: One chunk of trials: (policy, n, halt_on_name, kernel, start_round,
#: stop_round, seeds, states) where ``states`` is None for fresh stage-0
#: trials or one exported checkpoint per seed for cloned resumes.
_ChunkTask = Tuple[
    str, int, bool, str, int, int, Tuple[int, ...], Optional[Tuple[dict, ...]]
]


def _run_tail_chunk(task: _ChunkTask) -> List[Tuple[bool, Optional[dict]]]:
    """Advance one chunk of trials to ``stop_round`` (module-level so
    pools can pickle it); returns ``(survived, checkpoint)`` per trial."""
    policy, n, halt_on_name, kernel, start_round, stop_round, seeds, states = task
    ids = list(range(n))
    if kernel == "vectorized":
        from repro.core.vectorized import VectorizedCellEngine

        engine = VectorizedCellEngine(
            ids, list(seeds), policy=policy, halt_on_name=halt_on_name
        )
        if states is not None:
            engine.inject_trial_states(list(states), start_round)
        engine.run(stop_after=stop_round)
        return [
            (
                bool(engine.running[t] > 0),
                engine.export_trial_state(t) if engine.running[t] > 0 else None,
            )
            for t in range(len(seeds))
        ]
    from repro.core.columnar import ColumnarBallsEngine

    out: List[Tuple[bool, Optional[dict]]] = []
    for i, trial_seed in enumerate(seeds):
        engine = ColumnarBallsEngine(
            ids, seed=trial_seed, policy=policy, halt_on_name=halt_on_name
        )
        round_no = 0
        if states is not None:
            engine.restore_state(states[i], start_round)
            round_no = start_round
        while engine.running_count and round_no < stop_round:
            round_no += 1
            engine.step(round_no)
        survived = engine.running_count > 0
        out.append((survived, engine.export_state() if survived else None))
    return out


# ----------------------------------------------------------------- driver side


def _resolve_kernel(kernel: str) -> str:
    if kernel not in TAIL_KERNELS:
        raise ConfigurationError(
            f"tail estimation runs on the fast engines only; choose a "
            f"kernel from {TAIL_KERNELS}, got {kernel!r}"
        )
    if kernel == "auto":
        from repro.core.mt19937 import HAVE_NUMPY

        return "vectorized" if HAVE_NUMPY else "columnar"
    if kernel == "vectorized":
        from repro.core.mt19937 import HAVE_NUMPY

        if not HAVE_NUMPY:
            raise ConfigurationError(
                "kernel 'vectorized' requires numpy (pip install .[fast])"
            )
    return kernel


def _chunks(values: Sequence, size: int) -> List[Tuple]:
    return [tuple(values[i : i + size]) for i in range(0, len(values), size)]


def run_tail(
    config: TailConfig,
    *,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
) -> TailResult:
    """Estimate P(rounds > L) for every level L of ``config``.

    ``executor`` is "serial" / "process" / None (serial unless
    ``workers > 1``), mirroring the batch engine's executor names; the
    result is byte-identical across executors.
    """
    from repro.sim.runner import ALGORITHMS

    if config.algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {config.algorithm!r}; "
            f"choose from {tuple(ALGORITHMS)}"
        )
    policy = ALGORITHMS[config.algorithm]
    if policy is None:
        raise ConfigurationError(
            f"{config.algorithm!r} has no Balls-into-Leaves round structure "
            f"to estimate tails for"
        )
    if config.trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {config.trials}")
    if config.chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {config.chunk}")
    if config.growth < 1.0:
        raise ConfigurationError(f"growth must be >= 1.0, got {config.growth}")
    if config.max_trials < config.trials:
        raise ConfigurationError(
            f"max_trials ({config.max_trials}) must be >= trials "
            f"({config.trials})"
        )
    if executor not in (None, "serial", "process"):
        raise ConfigurationError(
            f"unknown executor {executor!r}; choose from ('serial', 'process')"
        )
    kernel = _resolve_kernel(config.kernel)
    levels = config.resolved_levels()
    unit = loglog_unit(config.n)
    pool_workers = workers if workers is not None else (os.cpu_count() or 1)
    parallel = executor == "process" or (executor is None and (workers or 1) > 1)

    def run_stage(tasks: List[_ChunkTask]) -> List[Tuple[bool, Optional[dict]]]:
        if parallel and pool_workers > 1 and len(tasks) > 1:
            with multiprocessing.Pool(processes=pool_workers) as pool:
                nested = pool.map(_run_tail_chunk, tasks)
        else:
            nested = [_run_tail_chunk(task) for task in tasks]
        return [result for chunk in nested for result in chunk]

    stages: List[StageResult] = []
    checkpoints: List[dict] = []
    start_round = 0
    for stage, level in enumerate(levels):
        stage_trials = config.stage_trials(stage)
        seeds = tuple(
            derive_seed(config.seed, "tail", stage, i)
            for i in range(stage_trials)
        )
        if stage == 0:
            states: Optional[Tuple[dict, ...]] = None
        else:
            if not checkpoints:
                break  # extinct: every deeper level keeps estimate 0.0
            resample = derive_rng(config.seed, "tail", "resample", stage)
            states = tuple(
                checkpoints[resample.randrange(len(checkpoints))]
                for i in range(stage_trials)
            )
        tasks = []
        seed_chunks = _chunks(seeds, config.chunk)
        state_chunks = (
            _chunks(states, config.chunk) if states is not None else None
        )
        for c, seed_chunk in enumerate(seed_chunks):
            tasks.append(
                (
                    policy,
                    config.n,
                    config.halt_on_name,
                    kernel,
                    start_round,
                    level,
                    seed_chunk,
                    state_chunks[c] if state_chunks is not None else None,
                )
            )
        outcomes = run_stage(tasks)
        checkpoints = [state for survived, state in outcomes if survived]
        stages.append(
            StageResult(
                stage=stage,
                level=level,
                trials=stage_trials,
                survivors=len(checkpoints),
            )
        )
        start_round = level
    return TailResult(
        config=config, unit=unit, levels=levels, stages=tuple(stages)
    )
