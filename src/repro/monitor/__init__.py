"""Always-on runtime monitoring: columnar invariant predicates and the
importance-splitting rare-event estimator.

* :mod:`repro.monitor.invariants` — the paper's safety/liveness
  invariants as flat-array predicates cheap enough to leave enabled in
  columnar/vectorized sweeps (``monitor="cheap"``), plus the stateful
  per-run monitor with progress/deadlock detection.
* :mod:`repro.monitor.splitting` — fixed-effort multilevel importance
  splitting over round-count level sets, estimating tail probabilities
  P(rounds > k·log log n) far below what direct Monte Carlo can reach.
"""

from repro.monitor.invariants import (
    MONITOR_MODES,
    RunMonitor,
    Violation,
    evaluate_round,
)
from repro.monitor.splitting import TailConfig, TailResult, loglog_unit, run_tail

__all__ = [
    "MONITOR_MODES",
    "RunMonitor",
    "Violation",
    "evaluate_round",
    "TailConfig",
    "TailResult",
    "loglog_unit",
    "run_tail",
]
