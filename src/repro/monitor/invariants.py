"""The paper's invariants as cheap flat-array predicates, always on.

The reference engine can instrument every movement step
(``check_invariants=True`` walks the whole subtree audit of
:func:`repro.core.movement.assert_capacity_invariant`), but that forces
the slow engine, so every fast-path sweep used to run blind.  This
module reformulates the safety/liveness conditions as per-round
predicates over the columnar state the fast engines already expose —
cheap enough to leave enabled in production sweeps (``monitor="cheap"``):

* **namespace** — every decided name lies in ``0..n-1``;
* **uniqueness** — no two correct balls decide the same name;
* **leaf-capacity** — in every local view, a leaf holds at most one ball
  plus its announced (retained) terminators, the per-leaf core of the
  headroom rule of :func:`~repro.core.movement.assert_capacity_invariant`;
* **retention** — an ``ANNOUNCED`` ball (the
  :class:`~repro.core.lifecycle.BallStatus` lifecycle) only ever holds a
  leaf, never an inner node;
* **crash-retention** — a crashed ball that never announced is purged
  from every view by the end of the round after its crash (ACTIVE
  silence means removal; announced terminators are retained forever);
* **progress** — the run's observable state (views, decisions, crashes)
  must not freeze while balls are still running.  A frozen full phase
  consumes no RNG draws (a consumed draw implies a ball had capacity
  below it and the first such ball in ``<R`` order moves), so the state
  is a deterministic fixed point: a true deadlock, reported after
  :data:`STALL_WINDOW` identical rounds instead of a silent spin to the
  round limit.

Verdicts are engine-independent: the same :class:`Violation` records —
round, invariant, ball/node attribution, message — come out of the
reference, columnar, and vectorized kernels (asserted by the
differential monitor suite), so jsonl rows can be compared across
kernels byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.lifecycle import BallStatus
from repro.core.mt19937 import HAVE_NUMPY
from repro.errors import ConfigurationError, MonitorViolation

if HAVE_NUMPY:
    import numpy as np

#: Monitor modes accepted by ``run_renaming``, the batch engine, and the
#: CLI: "off" (no checking), "cheap" (per-round flat-array predicates on
#: any kernel), "full" (cheap predicates plus the instrumented reference
#: movement audit; pins the reference engine).
MONITOR_MODES = ("off", "cheap", "full")

#: Identical consecutive fingerprints before the progress monitor calls
#: a deadlock.  Any full frozen phase (two rounds) is already a fixed
#: point; eight rounds is a four-phase margin against transient
#: re-merging of diverged views.
STALL_WINDOW = 8

_ACTIVE = int(BallStatus.ACTIVE)
_ANNOUNCED = int(BallStatus.ANNOUNCED)


def check_monitor_mode(monitor: str) -> str:
    """Validate a monitor-mode name (returns it for chaining)."""
    if monitor not in MONITOR_MODES:
        raise ConfigurationError(
            f"unknown monitor mode {monitor!r}; choose from {MONITOR_MODES}"
        )
    return monitor


@dataclass(frozen=True)
class Violation:
    """One violated invariant, with round and ball/node attribution."""

    invariant: str
    round_no: int
    detail: str
    #: Label rank of the offending ball (None for view-level findings).
    ball: Optional[int] = None
    #: Node index in the run's :class:`~repro.tree.arrays.TopologyArrays`.
    node: Optional[int] = None

    def render(self) -> str:
        """The jsonl/report form, identical across kernels."""
        return f"round {self.round_no} [{self.invariant}] {self.detail}"

    def sort_key(self) -> Tuple:
        return (
            self.round_no,
            self.invariant,
            -1 if self.ball is None else self.ball,
            -1 if self.node is None else self.node,
            self.detail,
        )


#: One local view in monitor form: positions by label rank (-1 = the
#: ball is absent from this view) and lifecycle bytes (None = all
#: ACTIVE).  The flat-array twin of ``LocalTreeView.state_set()``.
MonitorView = Tuple[Sequence[int], Optional[bytes]]


def _view_key(view: MonitorView) -> Tuple[Tuple[int, ...], Optional[bytes]]:
    pos, status = view
    return (tuple(pos), None if status is None else bytes(bytearray(status)))


def evaluate_round(
    round_no: int,
    arrays,
    labels: Sequence,
    *,
    views: Iterable[MonitorView],
    decisions: Sequence[Optional[int]],
    crashed: Optional[Sequence[bool]] = None,
    crash_rounds: Optional[Dict[int, int]] = None,
    silenced_rounds: Optional[Dict[int, int]] = None,
) -> List[Violation]:
    """All violated invariants of one observed round, sorted.

    Pure function of the observed state: ``arrays`` is the run's
    :class:`~repro.tree.arrays.TopologyArrays`, ``views`` the distinct
    live local views in :data:`MonitorView` form, ``decisions`` the
    decided names by label rank (None = undecided), ``crashed`` the
    crash flags, and ``crash_rounds`` the first round each crashed rank
    was observed crashed (for the purge-deadline check).

    ``silenced_rounds`` maps each rank silenced by a message-omission
    adversary to the first silenced round.  Omission is outside the
    paper's crash-fault model, and a silenced-but-alive ball genuinely
    can collide on a name (its peers purged it, its own view never
    learns); the monitor still reports that uniqueness violation — the
    honest verdict — but annotates it so a fault-injection sweep can
    tell algorithmic bugs from injected, expected degradation.
    """
    n = len(labels)
    span = arrays.span
    violations: List[Violation] = []

    # Namespace + uniqueness over the decisions of correct balls.
    first_owner: Dict[int, int] = {}
    for j in range(n):
        name = decisions[j]
        if name is None or name < 0 or (crashed is not None and crashed[j]):
            continue
        if name >= n:
            violations.append(
                Violation(
                    "namespace",
                    round_no,
                    f"ball {labels[j]!r} decided name {name} outside 0..{n - 1}",
                    ball=j,
                )
            )
            continue
        owner = first_owner.get(name)
        if owner is None:
            first_owner[name] = j
        else:
            detail = (
                f"balls {labels[owner]!r} and {labels[j]!r} both "
                f"decided name {name}"
            )
            if silenced_rounds:
                for rank in (owner, j):
                    if rank in silenced_rounds:
                        detail += (
                            f" (ball {labels[rank]!r} silenced by omission "
                            f"since round {silenced_rounds[rank]}, "
                            f"not crashed)"
                        )
            violations.append(
                Violation("uniqueness", round_no, detail, ball=j)
            )

    # Per-view structural checks, deduplicated by view content.
    seen = set()
    for view in views:
        key = _view_key(view)
        if key in seen:
            continue
        seen.add(key)
        pos, status = key
        occupancy: Dict[int, int] = {}
        announced_at: Dict[int, int] = {}
        for j in range(n):
            p = pos[j]
            if p < 0:
                continue
            st = status[j] if status is not None else _ACTIVE
            if span[p] == 1:
                occupancy[p] = occupancy.get(p, 0) + 1
                if st == _ANNOUNCED:
                    announced_at[p] = announced_at.get(p, 0) + 1
            elif st == _ANNOUNCED:
                violations.append(
                    Violation(
                        "retention",
                        round_no,
                        f"announced ball {labels[j]!r} parked at inner "
                        f"node {p}",
                        ball=j,
                        node=p,
                    )
                )
            if (
                crashed is not None
                and crashed[j]
                and st == _ACTIVE
                and crash_rounds is not None
                and round_no > crash_rounds.get(j, round_no)
            ):
                violations.append(
                    Violation(
                        "crash-retention",
                        round_no,
                        f"ball {labels[j]!r} crashed in round "
                        f"{crash_rounds[j]} but is still present as ACTIVE",
                        ball=j,
                        node=p,
                    )
                )
        for leaf, occ in occupancy.items():
            announced = announced_at.get(leaf, 0)
            if occ > 1 + announced:
                violations.append(
                    Violation(
                        "leaf-capacity",
                        round_no,
                        f"leaf {leaf} holds {occ} balls "
                        f"({announced} announced)",
                        node=leaf,
                    )
                )
    violations.sort(key=Violation.sort_key)
    return violations


class RunMonitor:
    """Stateful per-run monitor: per-round predicates + progress tracking.

    One instance observes one run, round by round, through an
    engine-specific adapter.  ``violations`` accumulates every finding;
    ``deadlocked`` latches once the progress monitor proves a fixed
    point, at which point the driving kernel aborts the run with
    :class:`~repro.errors.MonitorViolation` instead of spinning to the
    round limit.
    """

    def __init__(
        self,
        labels: Sequence,
        arrays,
        *,
        halt_on_name: bool = False,
        stall_window: int = STALL_WINDOW,
    ) -> None:
        self.labels = list(labels)
        self.n = len(self.labels)
        self.arrays = arrays
        self.halt_on_name = halt_on_name
        self.stall_window = stall_window
        self.violations: List[Violation] = []
        self.deadlocked = False
        self._crash_rounds: Dict[int, int] = {}
        self._silenced_rounds: Dict[int, int] = {}
        self._fingerprint = None
        self._streak = 0

    def observe(
        self,
        round_no: int,
        *,
        views: Iterable[MonitorView],
        decisions: Sequence[Optional[int]],
        crashed: Optional[Sequence[bool]] = None,
        running: int = 0,
        silenced: Optional[Dict[int, int]] = None,
    ) -> List[Violation]:
        """Record one round's state; returns that round's new findings.

        ``silenced`` maps ranks silenced by omission to their first
        silenced round (monotone per run; later observations may only
        add entries), used to annotate uniqueness findings.
        """
        views = [(_view_key(view)) for view in views]
        if crashed is not None:
            for j in range(self.n):
                if crashed[j] and j not in self._crash_rounds:
                    self._crash_rounds[j] = round_no
        if silenced:
            for j, since in silenced.items():
                self._silenced_rounds.setdefault(j, since)
        found = evaluate_round(
            round_no,
            self.arrays,
            self.labels,
            views=views,
            decisions=decisions,
            crashed=crashed,
            crash_rounds=self._crash_rounds,
            silenced_rounds=self._silenced_rounds,
        )
        # Progress: the observable state as an engine-independent
        # fingerprint.  Identical for STALL_WINDOW consecutive rounds
        # with balls still running = a deterministic fixed point.
        fingerprint = (
            tuple(sorted(set(views))),
            tuple(-1 if d is None else int(d) for d in decisions),
            tuple(bool(c) for c in crashed) if crashed is not None else None,
            int(running),
        )
        if running > 0 and fingerprint == self._fingerprint:
            self._streak += 1
            if self._streak == self.stall_window:
                self.deadlocked = True
                stall = Violation(
                    "progress",
                    round_no,
                    f"no state change for {self._streak} rounds with "
                    f"{running} ball(s) running",
                )
                found = found + [stall]
        else:
            self._streak = 0
        self._fingerprint = fingerprint
        self.violations.extend(found)
        return found

    def report(self) -> List[str]:
        """All findings rendered (jsonl-ready), in observation order."""
        return [violation.render() for violation in self.violations]


# --------------------------------------------------------------- adapters


def observe_balls_engine(monitor: RunMonitor, engine, round_no: int) -> None:
    """One observation of a failure-free ``ColumnarBallsEngine`` round."""
    if engine.running_count > 0:
        if monitor.halt_on_name:
            status = bytes(
                _ANNOUNCED if halted else _ACTIVE for halted in engine.halted
            )
        else:
            status = bytes(engine.n)
        views = [(engine.pos, status)]
    else:
        # The run just finished: every ball halted, no live view remains
        # (matching the reference engine's running-process views).
        views = []
    monitor.observe(
        round_no,
        views=views,
        decisions=engine.decision,
        crashed=None,
        running=engine.running_count,
    )


def observe_crash_engine(monitor: RunMonitor, engine, round_no: int) -> None:
    """One observation of a ``ColumnarCrashEngine`` round."""
    monitor.observe(
        round_no,
        views=engine.monitor_views(),
        decisions=engine.decision,
        crashed=engine.crashed,
        running=engine.running_count,
        silenced=engine.silenced_round,
    )


class ReferenceMonitorAdapter:
    """A :class:`~repro.sim.simulator.Simulation` observer feeding the
    monitor the same state the columnar adapters see.

    Attach to the reference kernel's observer list; after every round it
    extracts the distinct local views of running balls, converts node
    tuples to array indices, and aborts the simulation on a detected
    deadlock — byte-identical verdicts to the fast-path monitors.
    """

    def __init__(self, monitor: RunMonitor) -> None:
        self.monitor = monitor
        self._rank = {label: j for j, label in enumerate(monitor.labels)}
        self._index_of = monitor.arrays.index_of

    def __call__(self, simulation, round_no: int) -> None:
        monitor = self.monitor
        n = monitor.n
        rank = self._rank
        index_of = self._index_of
        crashed_set = simulation.crashed
        crashed = [False] * n
        for pid in crashed_set:
            crashed[rank[pid]] = True
        decisions: List[Optional[int]] = [None] * n
        raw_views = []
        seen_ids = set()
        running = 0
        for pid, proc in simulation.processes.items():
            decisions[rank[pid]] = proc.decision
            if pid in crashed_set or proc.halted:
                continue
            running += 1
            view = proc.view
            # repro: lint-ok[D104] identity dedup; raw_views keep deterministic pid order
            if id(view) not in seen_ids:
                # repro: lint-ok[D104] identity dedup; raw_views keep deterministic pid order
                seen_ids.add(id(view))
                raw_views.append(view)
        views = []
        for view in raw_views:
            pos = [-1] * n
            status = bytearray(n)
            for ball in view.balls():
                j = rank[ball]
                pos[j] = index_of[view.position(ball)]
                status[j] = view.status(ball)
            views.append((pos, bytes(status)))
        silenced = {
            rank[pid]: since
            for pid, since in simulation.silenced_rounds.items()
        }
        monitor.observe(
            round_no,
            views=views,
            decisions=decisions,
            crashed=crashed,
            running=running,
            silenced=silenced,
        )
        if monitor.deadlocked:
            raise MonitorViolation(monitor.violations)


class StackedMonitor:
    """Per-round monitoring of a ``VectorizedCellEngine``, all trials at
    once.

    The screens are O(T·n) ufunc passes (a handful per round, against
    the engine's own dozens); a trial flagged by any screen drops to the
    scalar :func:`evaluate_round` for that round, so the violation
    strings are identical to the scalar monitors'.
    """

    def __init__(self, engine, *, stall_window: int = STALL_WINDOW) -> None:
        self.engine = engine
        self.labels = engine.labels
        self.n = engine.n
        self.trials = engine.trials
        self.halt_on_name = engine._halt_on_name
        self.stall_window = stall_window
        from repro.tree.topology import cached_topology

        self.arrays = cached_topology(self.n).arrays()
        self._is_leaf_tiled = np.tile(engine._topo.is_leaf, engine.trials)
        self._violations: Dict[int, List[Violation]] = {}
        self._streak = np.zeros(engine.trials, dtype=np.int64)
        self._stalled = np.zeros(engine.trials, dtype=bool)
        self._prev_pos = None
        self._prev_halted = None
        self._prev_decision = None

    @property
    def deadlocked(self) -> bool:
        return bool(self._stalled.any())

    def violations(self, t: int) -> List[Violation]:
        """Trial ``t``'s findings, in observation order."""
        return list(self._violations.get(t, ()))

    # ------------------------------------------------------------- observing
    def __call__(self, engine, round_no: int, active: "np.ndarray") -> None:
        n = self.n
        T = self.trials
        pos = engine.pos
        halted = engine.halted
        decision = engine.decision
        flagged = np.zeros(T, dtype=bool)

        # Namespace screen: any decided name out of 0..n-1.
        bad_name = decision >= n
        if bad_name.any():
            flagged |= np.bincount(
                engine._trial[bad_name], minlength=T
            ).astype(bool)

        # Uniqueness screen: duplicate decided names within a trial.
        decided = decision >= 0
        if decided.any():
            keys = (
                engine._trial[decided] * np.int64(n)
                + np.minimum(decision[decided], n - 1)
            )
            counts = np.bincount(keys, minlength=T * n)
            dupes = np.flatnonzero(counts > 1)
            if dupes.size:
                flagged |= np.bincount(
                    (dupes // n).astype(np.int64), minlength=T
                ).astype(bool)

        # Leaf-capacity / retention screens over the shared view.
        at_leaf = self._is_leaf_tiled[engine._tbase + pos]
        if self.halt_on_name and (halted & ~at_leaf).any():
            flagged |= np.bincount(
                engine._trial[halted & ~at_leaf], minlength=T
            ).astype(bool)
        occ_keys = engine._tbase + pos
        occupancy = np.bincount(
            occ_keys[at_leaf], minlength=T * engine._topo.node_count
        )
        allowance = 1
        if self.halt_on_name and halted.any():
            announced = np.bincount(
                occ_keys[at_leaf & halted],
                minlength=T * engine._topo.node_count,
            )
            over = occupancy > 1 + announced
        else:
            over = occupancy > allowance
        if over.any():
            flagged |= np.bincount(
                (np.flatnonzero(over) // engine._topo.node_count).astype(
                    np.int64
                ),
                minlength=T,
            ).astype(bool)

        # Progress: per-trial frozen-state streaks (same fingerprint the
        # scalar monitor hashes: positions, lifecycle, decisions).
        if self._prev_pos is not None:
            same = (
                (pos == self._prev_pos)
                & (halted == self._prev_halted)
                & (decision == self._prev_decision)
            )
            trial_same = np.logical_and.reduceat(
                same, np.arange(0, T * n, n)
            ) & (engine.running > 0)
            self._streak = np.where(trial_same, self._streak + 1, 0)
            firing = (self._streak == self.stall_window) & ~self._stalled
            if firing.any():
                self._stalled |= firing
                for t in np.flatnonzero(firing):
                    t = int(t)
                    self._violations.setdefault(t, []).append(
                        Violation(
                            "progress",
                            round_no,
                            f"no state change for {self.stall_window} "
                            f"rounds with {int(engine.running[t])} "
                            f"ball(s) running",
                        )
                    )
        self._prev_pos = pos.copy()
        self._prev_halted = halted.copy()
        self._prev_decision = decision.copy()

        # Flagged trials re-run the scalar predicates for identical
        # attribution/wording (rare by construction: a screen only fires
        # on an actual violation).
        for t in map(int, np.flatnonzero(flagged)):
            base = t * n
            trial_pos = pos[base : base + n].tolist()
            trial_halted = halted[base : base + n]
            if self.halt_on_name:
                status = bytes(
                    _ANNOUNCED if h else _ACTIVE for h in trial_halted
                )
            else:
                status = bytes(n)
            trial_decisions = [
                None if d < 0 else int(d)
                for d in decision[base : base + n]
            ]
            if int(engine.running[t]) > 0:
                views = [(trial_pos, status)]
            else:
                views = []
            found = evaluate_round(
                round_no,
                self.arrays,
                self.labels,
                views=views,
                decisions=trial_decisions,
            )
            if found:
                self._violations.setdefault(t, []).extend(found)
