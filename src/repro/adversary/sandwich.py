"""The "sandwich" failure pattern of Chaudhuri, Herlihy and Tuttle.

Their Omega(log n) lower bound keeps deterministic comparison-based
processes in order-equivalent states by crashing, each round, the
*median-labelled* processes mid-broadcast so the survivors' views stay
symmetric.  Against randomized BiL the pattern is just another crash mix
(Section 5.3); against the deterministic rank baseline it forces repeated
rank collisions — the separation experiment uses it for exactly that.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified


@certified
class SandwichAdversary(Adversary):
    """Crash the median running process each striking round.

    The victim's broadcast reaches only the lower half of the survivors
    (by label), keeping the two halves order-inequivalent about the
    middle — the sandwich.  One victim per strike; strikes continue while
    budget remains.
    """

    def __init__(
        self,
        *,
        max_crashes: Optional[int] = None,
        every_k_rounds: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if every_k_rounds < 1:
            raise ValueError(f"every_k_rounds must be >= 1, got {every_k_rounds}")
        self._cap = max_crashes
        self._stride = every_k_rounds
        self._crashes = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        if self._cap is not None and self._crashes >= self._cap:
            return {}
        if (ctx.round_no - 2) % self._stride:
            # Strike on path rounds (2, 2+k, ...); round 1 is the hello.
            return {}
        running = sorted(ctx.running, key=repr)
        if len(running) < 3:
            return {}
        victim = running[len(running) // 2]
        survivors = [p for p in sorted(ctx.alive, key=repr) if p != victim]
        lower_half = frozenset(survivors[: len(survivors) // 2])
        self._crashes += 1
        return {victim: lower_half}
