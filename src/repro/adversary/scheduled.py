"""Scripted crash schedules, for tests and figure reproduction.

A :class:`ScheduledCrash` names the round, the victim, and which receivers
still get the victim's broadcast ("all", "none", or an explicit list), so
unit tests can stage the exact view-divergence scenarios the paper argues
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified
from repro.ids import ProcessId

#: Receiver spec: "all", "none", or an explicit pid list.
Receivers = Union[str, Sequence[ProcessId]]


@dataclass(frozen=True)
class ScheduledCrash:
    """Crash ``victim`` in ``round_no``, delivering to ``receivers``."""

    round_no: int
    victim: ProcessId
    receivers: Receivers = "none"


@certified
class ScheduledAdversary(Adversary):
    """Replays a fixed list of :class:`ScheduledCrash` entries."""

    def __init__(self, schedule: Sequence[ScheduledCrash]) -> None:
        super().__init__(seed=0)
        self._by_round: Dict[int, List[ScheduledCrash]] = {}
        for entry in schedule:
            self._by_round.setdefault(entry.round_no, []).append(entry)

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        plan: CrashPlan = {}
        for entry in self._by_round.get(ctx.round_no, []):
            if entry.receivers == "all":
                receivers = frozenset(p for p in ctx.alive if p != entry.victim)
            elif entry.receivers == "none":
                receivers = frozenset()
            else:
                receivers = frozenset(entry.receivers)
            plan[entry.victim] = receivers
        return plan
