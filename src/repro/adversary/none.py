"""The trivial fault-free adversary."""

from __future__ import annotations

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified


@certified
class NoFailures(Adversary):
    """Never crashes anyone — the failure-free executions of Theorem 3."""

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        return {}
