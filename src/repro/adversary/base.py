"""Adversary protocol shared by the simulator and all strategies."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.ids import ProcessId

#: A round's crash plan: victim pid -> receivers that still get its
#: broadcast.  An empty set means the victim crashed before sending.
CrashPlan = Dict[ProcessId, FrozenSet[ProcessId]]


@dataclass(frozen=True)
class AdversaryContext:
    """Everything a strong adaptive adversary may inspect for one round.

    ``outbox`` exposes the payloads about to be broadcast — including the
    processes' random choices for the round — realizing the "strong"
    adversary of the paper.  ``processes`` gives read access to process
    objects for fully adaptive strategies; adversaries must treat them as
    read-only.
    """

    round_no: int
    running: Sequence[ProcessId]
    alive: Sequence[ProcessId]
    outbox: Mapping[ProcessId, Any]
    crashed_so_far: FrozenSet[ProcessId]
    budget_remaining: int
    processes: Mapping[ProcessId, Any]


class Adversary(ABC):
    """Base class for crash adversaries.

    Subclasses implement :meth:`plan`; the simulator validates and clamps
    the returned plan against the crash budget ``t`` and the set of
    processes still alive, so strategies may be written optimistically.
    """

    def __init__(self, *, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    @property
    def rng(self) -> random.Random:
        """The adversary's private randomness (independent of processes')."""
        return self._rng

    @abstractmethod
    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        """Return this round's crash plan (possibly empty)."""

    # ------------------------------------------------------------ conveniences
    @staticmethod
    def silent(victims: Sequence[ProcessId]) -> CrashPlan:
        """Plan that crashes ``victims`` before they send anything."""
        return {victim: frozenset() for victim in victims}

    @staticmethod
    def partial(victim: ProcessId, receivers: Sequence[ProcessId]) -> CrashPlan:
        """Plan that crashes ``victim`` mid-broadcast, reaching ``receivers``."""
        return {victim: frozenset(receivers)}


def merge_plans(*plans: CrashPlan) -> CrashPlan:
    """Union several plans; duplicate victims keep the first plan's receivers."""
    merged: CrashPlan = {}
    for plan in plans:
        for victim, receivers in plan.items():
            merged.setdefault(victim, receivers)
    return merged


def clamp_plan(
    plan: CrashPlan,
    *,
    alive: Sequence[ProcessId],
    budget_remaining: int,
) -> CrashPlan:
    """Drop victims that are not alive and enforce the remaining budget.

    Victims are kept in sorted-by-repr order for determinism when the plan
    exceeds the budget.
    """
    alive_set = set(alive)
    valid: List[ProcessId] = [v for v in plan if v in alive_set]
    valid.sort(key=repr)
    kept = valid[: max(0, budget_remaining)]
    return {victim: frozenset(plan[victim]) for victim in kept}
