"""Adversary protocol shared by the simulator and all strategies.

Two layers of plan:

* :data:`CrashPlan` — the original crash-only protocol: victim pid ->
  receivers that still get its broadcast.
* :class:`FaultPlan` — the generalized protocol composing four fault
  families: ``crash`` (the plan above), ``omission`` (per-link delivery
  masks: the sender stays alive, some links drop), ``delay`` (a link's
  message deferred up to Δ rounds and delivered late), and ``corruption``
  (a bounded set of senders whose payloads the adversary rewrites within
  the message schema).  Crash-only adversaries keep implementing
  :meth:`Adversary.plan`; fault adversaries override
  :meth:`Adversary.plan_faults` and declare their families and budgets.

Both engines clamp through the same :func:`clamp_fault_plan`, so the
fault semantics — crash wins over omission for the same sender, omission
wins over delay for the same link, no self-links, no resurrecting a
crashed sender, deterministic budget truncation — are identical on the
reference and columnar kernels.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.ids import ProcessId

#: A round's crash plan: victim pid -> receivers that still get its
#: broadcast.  An empty set means the victim crashed before sending.
CrashPlan = Dict[ProcessId, FrozenSet[ProcessId]]

#: A round's omission plan: sender pid -> receivers that do NOT hear its
#: broadcast this round (the sender itself is never maskable).
OmissionPlan = Dict[ProcessId, FrozenSet[ProcessId]]

#: A round's delay plan: (sender, receiver) link -> rounds of deferral
#: (clamped to 1..Δ); the message arrives late into the receiver's merge.
DelayPlan = Dict[Tuple[ProcessId, ProcessId], int]

#: A round's corruption plan: sender pid -> replacement payload (must
#: stay within the message schema; the sender itself keeps the original).
CorruptionPlan = Dict[ProcessId, Any]

#: The canonical fault-family vocabulary, in engine-support order.
FAULT_FAMILIES: Tuple[str, ...] = ("crash", "omission", "delay", "corruption")


@dataclass(frozen=True)
class FaultBudget:
    """Per-family limits an adversary declares for a whole run.

    ``crashes`` is informational (the model's ``t`` is enforced by the
    engine's crash budget); ``omissions`` bounds the total dropped links
    over the run (None = unbounded, 0 = none); ``delay_bound`` is the
    partial-synchrony Δ (0 = fully synchronous, delays disabled);
    ``corruptions`` bounds the number of *distinct* corrupted senders.
    """

    crashes: Optional[int] = None
    omissions: Optional[int] = None
    delay_bound: int = 0
    corruptions: int = 0

    def describe(self) -> str:
        """Compact ``key=value`` rendering for jsonl rows ("" = default)."""
        parts = []
        if self.crashes is not None:
            parts.append(f"crashes={self.crashes}")
        if self.omissions is not None:
            parts.append(f"omissions={self.omissions}")
        if self.delay_bound:
            parts.append(f"delay_bound={self.delay_bound}")
        if self.corruptions:
            parts.append(f"corruptions={self.corruptions}")
        return ",".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """One round's composed fault injection across all four families."""

    crashes: CrashPlan = field(default_factory=dict)
    omissions: OmissionPlan = field(default_factory=dict)
    delays: DelayPlan = field(default_factory=dict)
    corruptions: CorruptionPlan = field(default_factory=dict)

    @property
    def crash_only(self) -> bool:
        """True when only the crash family is exercised this round."""
        return not (self.omissions or self.delays or self.corruptions)

    @classmethod
    def of_crashes(cls, plan: Optional[CrashPlan]) -> "FaultPlan":
        """Wrap a legacy crash plan (None tolerated) as a fault plan."""
        return cls(crashes=dict(plan) if plan else {})


@dataclass(frozen=True)
class AdversaryContext:
    """Everything a strong adaptive adversary may inspect for one round.

    ``outbox`` exposes the payloads about to be broadcast — including the
    processes' random choices for the round — realizing the "strong"
    adversary of the paper.  ``processes`` gives read access to process
    objects for fully adaptive strategies; adversaries must treat them as
    read-only.  The trailing fields carry the fault-family budget state:
    ``omission_budget_remaining`` (None = unbounded), the partial-synchrony
    ``delay_bound`` Δ, and the senders corrupted so far.
    """

    round_no: int
    running: Sequence[ProcessId]
    alive: Sequence[ProcessId]
    outbox: Mapping[ProcessId, Any]
    crashed_so_far: FrozenSet[ProcessId]
    budget_remaining: int
    processes: Mapping[ProcessId, Any]
    omission_budget_remaining: Optional[int] = None
    delay_bound: int = 0
    corrupted_so_far: FrozenSet[ProcessId] = frozenset()


class Adversary(ABC):
    """Base class for fault adversaries.

    Crash-only subclasses implement :meth:`plan`; fault-injecting
    subclasses additionally override :meth:`plan_faults` (whose default
    wraps :meth:`plan`), :meth:`fault_families`, and :meth:`fault_budget`.
    The engines validate and clamp every returned plan against the crash
    budget ``t``, the per-family :class:`FaultBudget`, and the set of
    processes still alive, so strategies may be written optimistically.
    """

    def __init__(self, *, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    @property
    def rng(self) -> random.Random:
        """The adversary's private randomness (independent of processes')."""
        return self._rng

    @abstractmethod
    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        """Return this round's crash plan (possibly empty)."""

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        """Return this round's full fault plan.

        The default wraps :meth:`plan`, so crash-only strategies are
        fault adversaries for free — with bit-identical RNG consumption,
        which the cross-kernel differential suite relies on.
        """
        return FaultPlan.of_crashes(self.plan(ctx))

    def fault_families(self) -> Tuple[str, ...]:
        """The fault families this adversary may exercise.

        Kernel selection consults this through
        :func:`repro.adversary.certification.certification_failure`: a
        kernel that does not support every declared family rejects the
        run (naming the family), and ``auto`` falls back to the
        reference engine.
        """
        return ("crash",)

    def fault_budget(self) -> FaultBudget:
        """The per-family budget this adversary declares for a run."""
        return FaultBudget()

    # ------------------------------------------------------------ conveniences
    @staticmethod
    def silent(victims: Sequence[ProcessId]) -> CrashPlan:
        """Plan that crashes ``victims`` before they send anything."""
        return {victim: frozenset() for victim in victims}

    @staticmethod
    def partial(victim: ProcessId, receivers: Sequence[ProcessId]) -> CrashPlan:
        """Plan that crashes ``victim`` mid-broadcast, reaching ``receivers``."""
        return {victim: frozenset(receivers)}


def merge_plans(*plans: CrashPlan) -> CrashPlan:
    """Union several plans; duplicate victims keep the first plan's receivers."""
    merged: CrashPlan = {}
    for plan in plans:
        for victim, receivers in plan.items():
            merged.setdefault(victim, receivers)
    return merged


def clamp_plan(
    plan: CrashPlan,
    *,
    alive: Sequence[ProcessId],
    budget_remaining: int,
) -> CrashPlan:
    """Drop victims that are not alive and enforce the remaining budget.

    Victims are kept in sorted-by-repr order for determinism when the plan
    exceeds the budget.
    """
    alive_set = set(alive)
    valid: List[ProcessId] = [v for v in plan if v in alive_set]
    valid.sort(key=repr)
    kept = valid[: max(0, budget_remaining)]
    return {victim: frozenset(plan[victim]) for victim in kept}


def clamp_fault_plan(
    plan: FaultPlan,
    *,
    alive: Sequence[ProcessId],
    budget_remaining: int,
    budget: FaultBudget,
    omissions_used: int = 0,
    corrupted_so_far: FrozenSet[ProcessId] = frozenset(),
) -> FaultPlan:
    """Validate one round's fault plan against budgets and liveness.

    The shared rulebook both engines apply (identically, so fault runs
    are bit-for-bit comparable across kernels):

    * crashes clamp exactly as :func:`clamp_plan`;
    * an omitting / delaying / corrupting sender must be alive and not
      crashing this round (**crash wins** over the other families for
      the same sender — a dead sender has no links to mask);
    * self-links are never maskable or delayable (a process always knows
      its own message), and links to dead receivers are dropped;
    * a link both omitted and delayed is omitted (**omission wins**);
    * the omission budget counts dropped links over the whole run, with
      deterministic repr-sorted truncation when a plan exceeds it;
    * delays clamp into ``1..delay_bound`` (Δ = 0 disables the family);
    * the corruption budget bounds *distinct* corrupted senders over the
      run; already-corrupted senders stay corruptible for free.
    """
    crashes = clamp_plan(plan.crashes, alive=alive, budget_remaining=budget_remaining)
    alive_set = set(alive)

    omissions: OmissionPlan = {}
    om_remaining = (
        None if budget.omissions is None else max(0, budget.omissions - omissions_used)
    )
    for sender in sorted(plan.omissions, key=repr):
        if sender not in alive_set or sender in crashes:
            continue
        dropped = frozenset(
            r for r in plan.omissions[sender] if r != sender and r in alive_set
        )
        if not dropped:
            continue
        if om_remaining is not None:
            if om_remaining <= 0:
                break
            if len(dropped) > om_remaining:
                dropped = frozenset(sorted(dropped, key=repr)[:om_remaining])
            om_remaining -= len(dropped)
        omissions[sender] = dropped

    delays: DelayPlan = {}
    if budget.delay_bound > 0:
        for link in sorted(plan.delays, key=repr):
            sender, receiver = link
            if sender == receiver:
                continue
            if sender not in alive_set or receiver not in alive_set:
                continue
            if sender in crashes or receiver in omissions.get(sender, ()):
                continue
            deferral = int(plan.delays[link])
            if deferral < 1:
                continue
            delays[link] = min(deferral, budget.delay_bound)

    corruptions: CorruptionPlan = {}
    distinct = set(corrupted_so_far)
    for sender in sorted(plan.corruptions, key=repr):
        if sender not in alive_set or sender in crashes:
            continue
        if sender not in distinct:
            if len(distinct) >= budget.corruptions:
                continue
            distinct.add(sender)
        corruptions[sender] = plan.corruptions[sender]

    return FaultPlan(
        crashes=crashes, omissions=omissions, delays=delays, corruptions=corruptions
    )
