"""Value-corruption (Byzantine-lite) adversaries.

A bounded set of at most ``b`` distinct senders have their broadcast
payloads rewritten by the adversary — *within the message schema* (a path
message stays a path message, a position message stays a position
message), so receivers parse and apply the forged value through the
normal rules.  The sender itself always keeps its original payload: a
process knows what it sent.

Corruption is a reference-engine family: the columnar and vectorized
kernels reject it by name (their delivery never materializes rewritable
payloads), and ``auto`` selection falls back to the lock-step engine.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.adversary.base import (
    Adversary,
    AdversaryContext,
    CorruptionPlan,
    CrashPlan,
    FaultBudget,
    FaultPlan,
)
from repro.adversary.certification import certified
from repro.core.messages import parse_path, parse_position, path_message, position_message

#: Rewrite modes, all schema-preserving.
CORRUPTION_MODES = ("stall", "replay")


@certified
class CorruptingAdversary(Adversary):
    """Rewrite up to ``b`` distinct senders' payloads within the schema.

    Each round, each not-yet-exhausted running sender is picked with
    probability ``rate``; once ``b`` distinct senders have been
    corrupted, the set is frozen (the engine's clamp enforces the same
    bound independently).  Modes:

    * ``"stall"`` — truncate a candidate path to its current node (the
      ball claims it is not moving) and leave position reports intact:
      the forged value freezes the sender in every other view.
    * ``"replay"`` — re-broadcast the sender's previous payload of the
      same kind (first occurrence falls back to stalling): stale state
      presented as fresh.

    Note that sustained stalling (``rate=1.0``) can make two *alive*
    corrupted balls collide on a leaf — each hid the other's descent —
    after which the broken capacity invariant may wedge a third ball
    below a full subtree until the round limit.  That is the honest
    Byzantine-lite degradation EXP-FAULT measures (run with
    ``capture_errors``), not an engine artifact.
    """

    def __init__(
        self,
        b: int = 1,
        *,
        mode: str = "stall",
        rate: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if b < 1:
            raise ValueError(f"corruption bound b must be >= 1, got {b}")
        if mode not in CORRUPTION_MODES:
            raise ValueError(
                f"mode must be one of {CORRUPTION_MODES}, got {mode!r}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        self._b = b
        self._mode = mode
        self._rate = rate
        self._victims: set = set()
        self._previous: dict = {}

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        return {}

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        corruptions: CorruptionPlan = {}
        for sender in sorted(ctx.running, key=repr):
            payload = ctx.outbox.get(sender)
            if payload is None:
                continue
            eligible = sender in self._victims or len(self._victims) < self._b
            if not eligible:
                continue
            if self.rng.random() < self._rate:
                forged = self._forge(sender, payload)
                if forged is not None:
                    self._victims.add(sender)
                    corruptions[sender] = forged
            self._previous[sender] = payload
        return FaultPlan(corruptions=corruptions)

    def _forge(self, sender: Any, payload: Any) -> Optional[Any]:
        """A schema-safe rewrite of ``payload``, or None to leave it be."""
        path = parse_path(payload)
        if path is not None:
            if self._mode == "replay":
                previous = parse_path(self._previous.get(sender))
                if previous is not None and previous != path:
                    return path_message(previous)
            if len(path) > 1:
                return path_message(path[:1])
            return None
        position = parse_position(payload)
        if position is not None and self._mode == "replay":
            previous = parse_position(self._previous.get(sender))
            if previous is not None and previous != position:
                return position_message(previous)
        return None

    def fault_families(self) -> Tuple[str, ...]:
        return ("corruption",)

    def fault_budget(self) -> FaultBudget:
        return FaultBudget(corruptions=self._b)
