"""Bounded-delay adversaries: partial synchrony on the lock-step rails.

A delayed link's message is not lost — it is deferred up to Δ rounds and
delivered *late* into the receiver's view merge (unless a fresher message
from the same sender arrives in the same round, which then wins).  The
synchronous algorithm has no way to tell lateness from a crash at the
moment of silence, so a delayed sender is purged and the late arrival
usually lands on an already-purged ball — making Δ-bounded delay an
honest stress of the algorithm's synchrony assumption.

Delay is a reference-engine family: the columnar and vectorized kernels
reject it by name (no pending-delivery buffer in the array layout), and
``auto`` selection falls back to the lock-step engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.adversary.base import (
    Adversary,
    AdversaryContext,
    CrashPlan,
    DelayPlan,
    FaultBudget,
    FaultPlan,
)
from repro.adversary.certification import certified


@certified
class BoundedDelayAdversary(Adversary):
    """Defer each link i.i.d. with probability ``rate`` by 1..``d`` rounds.

    Parameters
    ----------
    d:
        The delay bound Δ (>= 1); each deferred message arrives within
        Δ rounds, chosen uniformly by the adversary's private RNG.
    rate:
        Per-link, per-round deferral probability.
    """

    def __init__(
        self,
        d: int,
        *,
        rate: float = 0.2,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if d < 1:
            raise ValueError(f"delay bound d must be >= 1, got {d}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"delay rate must be in [0, 1], got {rate}")
        self._d = d
        self._rate = rate

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        return {}

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        if self._rate == 0.0:
            return FaultPlan()
        delays: DelayPlan = {}
        receivers = sorted(ctx.alive, key=repr)
        for sender in sorted(ctx.running, key=repr):
            for receiver in receivers:
                if receiver == sender:
                    continue
                if self.rng.random() < self._rate:
                    delays[(sender, receiver)] = 1 + self.rng.randrange(self._d)
        return FaultPlan(delays=delays)

    def fault_families(self) -> Tuple[str, ...]:
        return ("delay",)

    def fault_budget(self) -> FaultBudget:
        return FaultBudget(delay_bound=self._d)
