"""Columnar certification: one predicate for adversary fast-path eligibility.

The columnar crash engine (:mod:`repro.core.columnar`) reproduces exactly
the public :class:`~repro.adversary.base.AdversaryContext` surface —
round number, running/alive sets, outbox payloads, the adversary's own
RNG.  An adversary whose :meth:`plan` is a pure function of those fields
produces bit-identical plans on the fast path, so runs under it may leave
the reference engine.

Certification is declared *where the plan is written*: a strategy module
marks its class with the :func:`certified` decorator, and every consumer
— kernel selection in :mod:`repro.sim.columnar`, the schedule compiler in
:mod:`repro.search.schedule` — asks the same :func:`certification_failure`
predicate.  Registration is by exact type: a subclass may override
``plan`` with logic the certification does not cover, so it must certify
itself explicitly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Type

from repro.adversary.base import FAULT_FAMILIES, Adversary

_CERTIFIED: set = set()


def certified(cls: Type[Adversary]) -> Type[Adversary]:
    """Class decorator: mark ``cls`` (exactly) as columnar-certified.

    Only decorate strategies whose ``plan`` reads nothing beyond the
    public :class:`~repro.adversary.base.AdversaryContext` fields.
    """
    _CERTIFIED.add(cls)
    return cls


def certified_types() -> Tuple[Type[Adversary], ...]:
    """The currently certified exact types, in a stable (name) order."""
    return tuple(sorted(_CERTIFIED, key=lambda cls: cls.__name__))


def is_certified(adversary: Optional[Adversary]) -> bool:
    """True when ``adversary`` (or no adversary at all) may run columnar."""
    return adversary is None or type(adversary) in _CERTIFIED


def certification_failure(
    adversary: Optional[Adversary],
    *,
    supported: Sequence[str] = ("crash",),
) -> Optional[str]:
    """Why ``adversary`` cannot run on a fast path (None = it can).

    Two gates behind one predicate, consulted identically by kernel
    selection and the schedule compiler:

    * *type certification* — the adversary's plan must read only the
      public :class:`~repro.adversary.base.AdversaryContext` surface
      (declared via :func:`certified` where the strategy is written);
    * *family support* — every fault family the adversary declares
      (:meth:`~repro.adversary.base.Adversary.fault_families`) must be
      in the kernel's ``supported`` tuple; a rejection names the first
      unsupported family, so ``auto`` fallbacks are diagnosable.
    """
    if adversary is None:
        return None
    if not is_certified(adversary):
        return (
            f"adversary type {type(adversary).__name__} is not columnar-"
            "certified (its plan may inspect process internals the fast "
            "path never materializes); certified types: "
            + ", ".join(cls.__name__ for cls in certified_types())
        )
    families = tuple(adversary.fault_families())
    unsupported = [family for family in families if family not in supported]
    if unsupported:
        return (
            f"adversary type {type(adversary).__name__} plans fault family "
            f"{unsupported[0]!r}, which this kernel does not apply "
            f"(supported fault families: {', '.join(supported)}; "
            f"the full vocabulary is {', '.join(FAULT_FAMILIES)})"
        )
    return None
