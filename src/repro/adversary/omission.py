"""Message-omission adversaries: drop links without killing senders.

The omission family masks individual sender -> receiver edges: the sender
stays alive (it keeps broadcasting, it keeps hearing everyone, it always
hears itself), but the masked receivers see silence and — under the
synchronous algorithm's rules — purge the sender from their views exactly
as if it had crashed.  A silenced-but-alive ball therefore keeps holding
its leaf in its *own* view while other views reuse it, which is the
honest degradation mode EXP-FAULT measures.

All three strategies plan from the public
:class:`~repro.adversary.base.AdversaryContext` surface only, so they are
columnar-certified and omission cells keep the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.adversary.base import (
    Adversary,
    AdversaryContext,
    CrashPlan,
    FaultBudget,
    FaultPlan,
    OmissionPlan,
)
from repro.adversary.certification import certified
from repro.ids import ProcessId

#: Dropped-receiver spec: "all" (everyone but the sender) or a pid list.
Dropped = Union[str, Sequence[ProcessId]]


@certified
class IIDOmissionAdversary(Adversary):
    """Drop each sender -> receiver link i.i.d. with probability ``p``.

    The loss process uses the adversary's private RNG (independent of the
    processes' randomness), iterating senders and receivers in sorted
    order so the same seed reproduces the same loss pattern on every
    kernel.

    Parameters
    ----------
    p:
        Per-link, per-round loss probability.
    max_omissions:
        Optional run-total cap on dropped links (the declared omission
        budget; None = unbounded).
    rounds:
        Optional inclusive ``(first, last)`` round window for the loss.
        Note that round-1 (hello) drops leave the sender permanently
        unknown to the masked receivers, which can wedge the silenced
        ball past the round limit; a window starting at 2 keeps the loss
        pattern survivable.
    """

    def __init__(
        self,
        p: float,
        *,
        max_omissions: Optional[int] = None,
        rounds: Optional[Tuple[int, int]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"omission probability must be in [0, 1], got {p}")
        if max_omissions is not None and max_omissions < 0:
            raise ValueError(f"max_omissions must be >= 0, got {max_omissions}")
        if rounds is not None:
            first, last = rounds
            if first < 1 or last < first:
                raise ValueError(
                    f"rounds must satisfy 1 <= first <= last, got {rounds}"
                )
        self._p = p
        self._cap = max_omissions
        self._rounds = tuple(rounds) if rounds is not None else None
        self._dropped = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        return {}

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        if self._p == 0.0:
            return FaultPlan()
        if self._rounds is not None:
            first, last = self._rounds
            if not first <= ctx.round_no <= last:
                return FaultPlan()
        remaining = None if self._cap is None else self._cap - self._dropped
        omissions: OmissionPlan = {}
        receivers = sorted(ctx.alive, key=repr)
        for sender in sorted(ctx.running, key=repr):
            if remaining is not None and remaining <= 0:
                break
            dropped: List[ProcessId] = []
            for receiver in receivers:
                if receiver == sender:
                    continue
                if self.rng.random() < self._p:
                    if remaining is not None:
                        if remaining <= 0:
                            continue
                        remaining -= 1
                    dropped.append(receiver)
            if dropped:
                omissions[sender] = frozenset(dropped)
        self._dropped += sum(len(d) for d in omissions.values())
        return FaultPlan(omissions=omissions)

    def fault_families(self) -> Tuple[str, ...]:
        return ("omission",)

    def fault_budget(self) -> FaultBudget:
        return FaultBudget(omissions=self._cap)


@certified
class TargetedOmissionAdversary(Adversary):
    """Silence the ``count`` lowest-labelled running senders every round.

    The targeted counterpart of i.i.d. loss: the same victims lose every
    outgoing link (to everyone but themselves) round after round, so
    their balls are permanently invisible to the rest of the population
    while staying alive — the strongest sustained not-crashed-but-
    silenced pressure the omission family can apply.

    ``rounds`` optionally restricts the silencing to an inclusive
    ``(first, last)`` round window.
    """

    def __init__(
        self,
        count: int = 1,
        *,
        rounds: Optional[Tuple[int, int]] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if rounds is not None:
            first, last = rounds
            if first < 1 or last < first:
                raise ValueError(f"rounds must satisfy 1 <= first <= last, got {rounds}")
        self._count = count
        self._rounds = tuple(rounds) if rounds is not None else None

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        return {}

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        if self._rounds is not None:
            first, last = self._rounds
            if not first <= ctx.round_no <= last:
                return FaultPlan()
        victims = sorted(ctx.running, key=repr)[: self._count]
        omissions: OmissionPlan = {}
        for sender in victims:
            dropped = frozenset(p for p in ctx.alive if p != sender)
            if dropped:
                omissions[sender] = dropped
        return FaultPlan(omissions=omissions)

    def fault_families(self) -> Tuple[str, ...]:
        return ("omission",)


@dataclass(frozen=True)
class ScheduledOmission:
    """Drop ``sender``'s round-``round_no`` broadcast to ``dropped``."""

    round_no: int
    sender: ProcessId
    dropped: Dropped = "all"


@certified
class ScheduledFaultAdversary(Adversary):
    """Replays scripted crash *and* omission events.

    The compilation target of omission-bearing search genotypes
    (:meth:`repro.search.schedule.Schedule.compile`): crash entries
    behave exactly like :class:`~repro.adversary.scheduled
    .ScheduledAdversary`'s, omission entries mask the named links for
    one round without crashing the sender.
    """

    def __init__(
        self,
        crashes: Sequence = (),
        omissions: Sequence[ScheduledOmission] = (),
    ) -> None:
        super().__init__(seed=0)
        self._crashes_by_round: Dict[int, List] = {}
        for entry in crashes:
            self._crashes_by_round.setdefault(entry.round_no, []).append(entry)
        self._omissions_by_round: Dict[int, List[ScheduledOmission]] = {}
        for omission in omissions:
            self._omissions_by_round.setdefault(omission.round_no, []).append(omission)

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        plan: CrashPlan = {}
        for entry in self._crashes_by_round.get(ctx.round_no, []):
            if entry.receivers == "all":
                receivers = frozenset(p for p in ctx.alive if p != entry.victim)
            elif entry.receivers == "none":
                receivers = frozenset()
            else:
                receivers = frozenset(entry.receivers)
            plan[entry.victim] = receivers
        return plan

    def plan_faults(self, ctx: AdversaryContext) -> FaultPlan:
        omissions: OmissionPlan = {}
        for entry in self._omissions_by_round.get(ctx.round_no, []):
            if entry.dropped == "all":
                dropped = frozenset(p for p in ctx.alive if p != entry.sender)
            else:
                dropped = frozenset(entry.dropped)
            if dropped:
                omissions[entry.sender] = dropped
        return FaultPlan(crashes=self.plan(ctx), omissions=omissions)

    def fault_families(self) -> Tuple[str, ...]:
        return ("crash", "omission")
