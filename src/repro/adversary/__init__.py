"""Failure adversaries for the synchronous crash model.

The paper's adversary is *strong* and *adaptive*: each round it sees the
full state, including the messages about to be sent (and hence the
processes' random choices for the round), then picks up to ``t`` victims
and, for each victim, the subset of receivers that still get its
broadcast — the "crash while broadcasting" semantics of Section 4.

Strategies provided:

* :class:`NoFailures` — fault-free runs.
* :class:`RandomCrashAdversary` — oblivious random crashes.
* :class:`ScheduledAdversary` — scripted crash plans (tests, figures).
* :class:`TargetedPriorityAdversary` — adaptively crashes the highest
  ``<R``-priority-relevant ball mid-broadcast each phase, splitting views.
* :class:`SandwichAdversary` — the order-equivalence crash pattern behind
  the CHT Omega(log n) lower bound, aimed at deterministic algorithms.
* :class:`HalfSplitAdversary` — Section 6's example: the lowest-label ball
  delivers to every second process and crashes, forcing ~n/2 collisions.

Beyond crashes, the :class:`FaultPlan` protocol composes three more
injectable fault families (see :mod:`repro.adversary.base`):

* :class:`IIDOmissionAdversary` / :class:`TargetedOmissionAdversary` /
  :class:`ScheduledFaultAdversary` — per-link message omission (drop
  victim -> receiver edges without crashing the sender).
* :class:`BoundedDelayAdversary` — partial synchrony: messages deferred
  up to Δ rounds and delivered late (reference engine only).
* :class:`CorruptingAdversary` — Byzantine-lite value corruption of at
  most ``b`` senders' payloads, within the message schema (reference
  engine only).
"""

from repro.adversary.base import (
    FAULT_FAMILIES,
    Adversary,
    AdversaryContext,
    CrashPlan,
    FaultBudget,
    FaultPlan,
    clamp_fault_plan,
)
from repro.adversary.certification import (
    certification_failure,
    certified,
    is_certified,
)
from repro.adversary.corruption import CorruptingAdversary
from repro.adversary.delay import BoundedDelayAdversary
from repro.adversary.none import NoFailures
from repro.adversary.omission import (
    IIDOmissionAdversary,
    ScheduledFaultAdversary,
    ScheduledOmission,
    TargetedOmissionAdversary,
)
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary

__all__ = [
    "Adversary",
    "AdversaryContext",
    "CrashPlan",
    "FAULT_FAMILIES",
    "FaultBudget",
    "FaultPlan",
    "clamp_fault_plan",
    "certification_failure",
    "certified",
    "is_certified",
    "NoFailures",
    "RandomCrashAdversary",
    "ScheduledAdversary",
    "ScheduledCrash",
    "IIDOmissionAdversary",
    "TargetedOmissionAdversary",
    "ScheduledFaultAdversary",
    "ScheduledOmission",
    "BoundedDelayAdversary",
    "CorruptingAdversary",
    "TargetedPriorityAdversary",
    "SandwichAdversary",
    "HalfSplitAdversary",
]
