"""Failure adversaries for the synchronous crash model.

The paper's adversary is *strong* and *adaptive*: each round it sees the
full state, including the messages about to be sent (and hence the
processes' random choices for the round), then picks up to ``t`` victims
and, for each victim, the subset of receivers that still get its
broadcast — the "crash while broadcasting" semantics of Section 4.

Strategies provided:

* :class:`NoFailures` — fault-free runs.
* :class:`RandomCrashAdversary` — oblivious random crashes.
* :class:`ScheduledAdversary` — scripted crash plans (tests, figures).
* :class:`TargetedPriorityAdversary` — adaptively crashes the highest
  ``<R``-priority-relevant ball mid-broadcast each phase, splitting views.
* :class:`SandwichAdversary` — the order-equivalence crash pattern behind
  the CHT Omega(log n) lower bound, aimed at deterministic algorithms.
* :class:`HalfSplitAdversary` — Section 6's example: the lowest-label ball
  delivers to every second process and crashes, forcing ~n/2 collisions.
"""

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import (
    certification_failure,
    certified,
    is_certified,
)
from repro.adversary.none import NoFailures
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary

__all__ = [
    "Adversary",
    "AdversaryContext",
    "CrashPlan",
    "certification_failure",
    "certified",
    "is_certified",
    "NoFailures",
    "RandomCrashAdversary",
    "ScheduledAdversary",
    "ScheduledCrash",
    "TargetedPriorityAdversary",
    "SandwichAdversary",
    "HalfSplitAdversary",
]
