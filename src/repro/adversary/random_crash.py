"""Oblivious random crashes.

Each round, each running process independently crashes with probability
``rate`` (subject to the budget), and the message of a crashing process is
delivered to a uniformly random subset of receivers — the least
coordinated failure pattern, used as the baseline crash mix in the
scaling experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified


@certified
class RandomCrashAdversary(Adversary):
    """Crash each running process with probability ``rate`` per round.

    Parameters
    ----------
    rate:
        Per-process, per-round crash probability.
    max_crashes:
        Optional cap below the simulator's budget (e.g. to realize an
        exact ``f`` for the Theorem 4 experiment).
    delivery:
        How a victim's broadcast is partially delivered.  ``"uniform"``
        gives every victim an independent uniformly random receiver
        subset — up to n distinct views per round, the worst case for
        simulation cost.  ``"split"`` (default) delivers to either the
        even- or odd-indexed half of the alive processes (per victim),
        producing coherent divergent camps; this is the pattern the
        paper's examples use and it keeps large-``n`` sweeps tractable.
    """

    def __init__(
        self,
        rate: float,
        *,
        max_crashes: Optional[int] = None,
        delivery: str = "split",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"crash rate must be in [0, 1], got {rate}")
        if delivery not in ("uniform", "split"):
            raise ValueError(f"delivery must be 'uniform' or 'split', got {delivery!r}")
        self._rate = rate
        self._cap = max_crashes
        self._delivery = delivery
        self._crashes = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        plan: CrashPlan = {}
        halves = None
        for pid in ctx.running:
            if self._cap is not None and self._crashes + len(plan) >= self._cap:
                break
            if self.rng.random() >= self._rate:
                continue
            if self._delivery == "uniform":
                others = [p for p in ctx.alive if p != pid]
                keep = [p for p in others if self.rng.random() < 0.5]
            else:
                if halves is None:
                    ordered = sorted(ctx.alive, key=repr)
                    halves = (ordered[::2], ordered[1::2])
                keep = [p for p in halves[self.rng.randrange(2)] if p != pid]
            plan[pid] = frozenset(keep)
        self._crashes += len(plan)
        return plan
