"""Adaptive adversary targeting the algorithm's priority structure.

Each path round (where the damage is largest) it crashes the running ball
with the *smallest label* — the one whose broadcast the ``<R`` tie-break
favors — mid-broadcast, delivering to exactly every second alive process.
Splitting receivers in half maximizes view divergence, the mechanism the
Section 5.3 argument shows BiL absorbs without slowdown.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified

# Wire tag of Algorithm 1's candidate-path broadcasts.  Kept as a literal
# (matching repro.core.messages.PATH) to avoid an adversary -> core import
# cycle through the package __init__ modules.
_PATH_TAG = "path"


@certified
class TargetedPriorityAdversary(Adversary):
    """Crash the lowest-labelled running ball each path round.

    Parameters
    ----------
    max_crashes:
        Total victims (defaults to the simulator budget).
    every_k_phases:
        Strike every ``k``-th path round, to stretch a budget over a run.
    """

    def __init__(
        self,
        *,
        max_crashes: Optional[int] = None,
        every_k_phases: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if every_k_phases < 1:
            raise ValueError(f"every_k_phases must be >= 1, got {every_k_phases}")
        self._cap = max_crashes
        self._stride = every_k_phases
        self._crashes = 0
        self._strikes_seen = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        if self._cap is not None and self._crashes >= self._cap:
            return {}
        if not self._is_path_round(ctx):
            return {}
        self._strikes_seen += 1
        if (self._strikes_seen - 1) % self._stride:
            return {}
        victims = sorted(ctx.running, key=repr)
        if not victims:
            return {}
        victim = victims[0]
        others = sorted((p for p in ctx.alive if p != victim), key=repr)
        receivers = frozenset(others[::2])
        self._crashes += 1
        return {victim: receivers}

    @staticmethod
    def _is_path_round(ctx: AdversaryContext) -> bool:
        return any(
            isinstance(payload, tuple) and payload and payload[0] == _PATH_TAG
            for payload in ctx.outbox.values()
        )
