"""Section 6's worst case for deterministic rank choices.

"A single crash can cause up to n/2 collisions: the ball with the lowest
label sends to every second ball (by label order) and then crashes, so
that all other balls collide in pairs."  This adversary stages exactly
that on the very first broadcast, and can repeat the trick on later
rounds while budget remains — the stress test for the early-terminating
extension (Theorem 4's analysis starts from this pattern).
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.adversary.certification import certified


@certified
class HalfSplitAdversary(Adversary):
    """Crash the lowest-labelled sender, delivering to every second process.

    Parameters
    ----------
    rounds:
        Which rounds to strike on (default: only round 1, the label
        announcement — the paper's example).
    victims_per_round:
        How many senders to crash per strike, spread over the label
        order.  Each victim's broadcast reaches an alternating half with
        its own offset, maximizing the number of distinct views.
    max_crashes:
        Optional total cap.
    """

    def __init__(
        self,
        *,
        rounds: Optional[frozenset] = None,
        victims_per_round: int = 1,
        max_crashes: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed)
        if victims_per_round < 1:
            raise ValueError(f"victims_per_round must be >= 1, got {victims_per_round}")
        self._rounds = rounds if rounds is not None else frozenset({1})
        self._victims_per_round = victims_per_round
        self._cap = max_crashes
        self._crashes = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        if ctx.round_no not in self._rounds:
            return {}
        if self._cap is not None and self._crashes >= self._cap:
            return {}
        running = sorted(ctx.running, key=repr)
        if len(running) < 2:
            return {}
        count = min(
            self._victims_per_round,
            len(running) - 1,
            (self._cap - self._crashes) if self._cap is not None else len(running),
        )
        if count < 1:
            return {}
        stride = max(1, len(running) // count)
        victims = running[::stride][:count]
        plan: CrashPlan = {}
        for offset, victim in enumerate(victims):
            others = [p for p in sorted(ctx.alive, key=repr) if p != victim]
            plan[victim] = frozenset(others[offset % 2 :: 2])
        self._crashes += len(plan)
        return plan
