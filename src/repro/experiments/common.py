"""Shared scaffolding for experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.analysis.stats import TrialStats, summarize
from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.ids import sparse_ids
from repro.sim.runner import RenamingRun, run_renaming

#: Experiment scales: "smoke" finishes in seconds (CI / benchmarks),
#: "paper" uses the full sweeps recorded in EXPERIMENTS.md.
Scale = str
SCALES = ("smoke", "paper")

#: A per-trial adversary factory (fresh instance per run, seeded).
AdversaryFactory = Callable[[int], Optional[Adversary]]


def no_adversary(_seed: int) -> Optional[Adversary]:
    """Factory for failure-free runs."""
    return None


@dataclass
class ExperimentResult:
    """What an experiment produces: tables, plots, and prose notes."""

    experiment_id: str
    title: str
    scale: Scale
    tables: List[Table] = field(default_factory=list)
    plots: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"### {self.experiment_id}: {self.title} (scale={self.scale})", ""]
        for table in self.tables:
            parts.append(table.render())
        for plot in self.plots:
            parts.append(plot)
            parts.append("")
        for note in self.notes:
            parts.append(f"* {note}")
        parts.append(
            f"reproduce with: python -m repro run {self.experiment_id} --scale {self.scale}"
        )
        return "\n".join(parts)


def check_scale(scale: Scale) -> None:
    """Validate a scale name."""
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; choose from {SCALES}")


def rounds_over_trials(
    algorithm: str,
    n: int,
    *,
    trials: int,
    base_seed: int,
    adversary_factory: AdversaryFactory = no_adversary,
    collect_phase_stats: bool = False,
    **run_kwargs,
) -> List[RenamingRun]:
    """Run ``trials`` seeded executions of ``algorithm`` at size ``n``."""
    runs = []
    ids = sparse_ids(n)
    for trial in range(trials):
        seed = base_seed * 100_003 + trial
        runs.append(
            run_renaming(
                algorithm,
                ids,
                seed=seed,
                adversary=adversary_factory(seed),
                collect_phase_stats=collect_phase_stats,
                **run_kwargs,
            )
        )
    return runs


def round_stats(runs: Sequence[RenamingRun]) -> TrialStats:
    """Distribution of total round counts across runs."""
    return summarize([run.rounds for run in runs])


def failure_stats(runs: Sequence[RenamingRun]) -> TrialStats:
    """Distribution of actual failure counts across runs."""
    return summarize([run.failures for run in runs])


def scaled(scale: Scale, smoke_value, paper_value):
    """Pick a parameter by scale."""
    check_scale(scale)
    return smoke_value if scale == "smoke" else paper_value


def mean_by_size(
    sizes: Sequence[int], stats_by_size: Dict[int, TrialStats]
) -> List[float]:
    """Mean series aligned with ``sizes`` (helper for plots/fits)."""
    return [stats_by_size[n].mean for n in sizes]
