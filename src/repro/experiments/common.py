"""Shared scaffolding for experiment modules.

Seed sweeps route through :mod:`repro.sim.batch`: :func:`sweep` expands a
scenario matrix and runs it on the chosen executor (serial by default,
multiprocessing when the caller passes ``executor="process"`` or
``workers > 1``), and :func:`rounds_over_trials` — for experiments that
need full :class:`~repro.sim.runner.RenamingRun` objects such as phase
statistics — shares the engine's legacy per-trial seed schedule so both
paths stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.adversary.base import Adversary
from repro.analysis.stats import TrialStats, summarize
from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.ids import sparse_ids
from repro.sim.batch import (
    AdversaryLike,
    BatchResult,
    MultiprocessingExecutor,
    ScenarioMatrix,
    SerialExecutor,
    legacy_trial_seeds,
    run_batch,
)
from repro.sim.runner import RenamingRun, run_renaming

#: What experiments accept as an execution backend.
ExecutorLike = Union[None, str, SerialExecutor, MultiprocessingExecutor]

#: Experiment scales: "smoke" finishes in seconds (CI / benchmarks),
#: "paper" uses the full sweeps recorded in EXPERIMENTS.md, and "deep"
#: extends kernel-aware sweeps to sizes only the columnar fast path can
#: reach (experiments without a deep grid treat it as "paper").
Scale = str
SCALES = ("smoke", "paper", "deep")

#: A per-trial adversary factory (fresh instance per run, seeded).
AdversaryFactory = Callable[[int], Optional[Adversary]]


def no_adversary(_seed: int) -> Optional[Adversary]:
    """Factory for failure-free runs."""
    return None


@dataclass
class ExperimentResult:
    """What an experiment produces: tables, plots, and prose notes."""

    experiment_id: str
    title: str
    scale: Scale
    tables: List[Table] = field(default_factory=list)
    plots: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"### {self.experiment_id}: {self.title} (scale={self.scale})", ""]
        for table in self.tables:
            parts.append(table.render())
        for plot in self.plots:
            parts.append(plot)
            parts.append("")
        for note in self.notes:
            parts.append(f"* {note}")
        parts.append(
            f"reproduce with: python -m repro run {self.experiment_id} --scale {self.scale}"
        )
        return "\n".join(parts)


def check_scale(scale: Scale) -> None:
    """Validate a scale name."""
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; choose from {SCALES}")


def sweep(
    algorithms: Iterable[str],
    sizes: Iterable[int],
    adversaries: Iterable[AdversaryLike] = ("none",),
    *,
    trials: int,
    base_seed: int,
    executor: ExecutorLike = None,
    workers: Optional[int] = None,
    halt_on_name: bool = False,
    kernel: str = "auto",
) -> BatchResult:
    """Run an algorithm x size x adversary x seed grid through the engine.

    Uses the legacy seed schedule, so a cell's trials see exactly the
    seeds the old per-experiment serial loops used — tables built from
    the result are byte-identical to the historical output, on any
    executor and any kernel (the columnar fast path is differentially
    checked against the reference engine).
    """
    matrix = ScenarioMatrix.build(
        algorithms,
        sizes,
        adversaries,
        trials=trials,
        base_seed=base_seed,
        halt_on_name=halt_on_name,
        kernel=kernel,
    )
    return run_batch(matrix, executor=executor, workers=workers)


def rounds_over_trials(
    algorithm: str,
    n: int,
    *,
    trials: int,
    base_seed: int,
    adversary_factory: AdversaryFactory = no_adversary,
    collect_phase_stats: bool = False,
    **run_kwargs,
) -> List[RenamingRun]:
    """Run ``trials`` seeded executions of ``algorithm`` at size ``n``.

    In-process sibling of :func:`sweep` for experiments that need full
    :class:`RenamingRun` objects (phase statistics, traces) or ad-hoc
    adversary factories; the seed schedule is the engine's.
    """
    runs = []
    ids = sparse_ids(n)
    for seed in legacy_trial_seeds(base_seed, trials):
        runs.append(
            run_renaming(
                algorithm,
                ids,
                seed=seed,
                adversary=adversary_factory(seed),
                collect_phase_stats=collect_phase_stats,
                **run_kwargs,
            )
        )
    return runs


def round_stats(runs: Sequence) -> TrialStats:
    """Distribution of total round counts across runs (or trial results)."""
    return summarize([run.rounds for run in runs])


def failure_stats(runs: Sequence) -> TrialStats:
    """Distribution of actual failure counts across runs (or trial results)."""
    return summarize([run.failures for run in runs])


def scaled(scale: Scale, smoke_value, paper_value):
    """Pick a parameter by scale."""
    check_scale(scale)
    return smoke_value if scale == "smoke" else paper_value


def mean_by_size(
    sizes: Sequence[int], stats_by_size: Dict[int, TrialStats]
) -> List[float]:
    """Mean series aligned with ``sizes`` (helper for plots/fits)."""
    return [stats_by_size[n].mean for n in sizes]
