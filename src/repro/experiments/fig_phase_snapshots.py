"""EXP-F12 — Figures 1 and 2: the tree before and after one phase.

Reproduce the three illustrated states for a 16-leaf tree:

* Figure 1 — the initial configuration, all balls at the root;
* Figure 2(a) — "all balls choose the first leaf": the pile-up along the
  leftmost path when every candidate path targets leaf 0 (forced with the
  ``leftmost`` policy);
* Figure 2(b) — "choices are well distributed": the spread after one
  phase of capacity-weighted random paths.
"""

from __future__ import annotations

from repro.core.balls_into_leaves import build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.experiments.common import ExperimentResult, scaled
from repro.ids import sparse_ids
from repro.sim.simulator import Simulation
from repro.tree.render import render_view

EXPERIMENT_ID = "EXP-F12"
TITLE = "Figures 1-2: local tree before and after one phase"


def _snapshot_after(policy: str, n: int, seed: int, rounds: int) -> str:
    """Run ``rounds`` rounds and render the reference ball's view."""
    config = BallsIntoLeavesConfig(path_policy=policy, view_mode="shared")
    processes, store = build_balls_into_leaves(sparse_ids(n), seed=seed, config=config)
    simulation = Simulation(processes, max_rounds=10 * n + 8)
    for _ in range(rounds):
        if not simulation.step():
            break
    reference = min(simulation.alive(), key=repr)
    return render_view(store.view_of(reference))


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Render the three tree states."""
    n = scaled(scale, 8, 16)
    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)

    result.plots.append(
        "Figure 1 (initial configuration, all balls at the root):\n"
        + _snapshot_after("random", n, seed, rounds=1)
    )
    result.plots.append(
        "Figure 2a (all balls choose the first leaf -> pile-up on the path):\n"
        + _snapshot_after("leftmost", n, seed, rounds=3)
    )
    result.plots.append(
        "Figure 2b (random choices are well distributed after one phase):\n"
        + _snapshot_after("random", n, seed, rounds=3)
    )
    result.notes.append(
        "in 2a exactly one ball reached leaf 0 and the rest stack along the "
        "leftmost path at increasing heights, as the movement rule dictates"
    )
    return result
