"""EXP-HUNT — adversary synthesis: worst schedules per (algorithm, n) cell.

For each cell, spend a fixed evaluation budget searching crash-schedule
space (:mod:`repro.search`) and rank what the search found against the
bundled adversary gauntlet under the same objective and seed protocol.
The paper's Section 5.3 claim — crashes do not slow Balls-into-Leaves
down beyond a small constant — predicts the synthesized schedules win by
*little*; a large gap (or any invariant/liveness score) is a finding.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.worst_case import beats_every_bundled, worst_case_table
from repro.experiments.common import ExecutorLike, ExperimentResult, check_scale
from repro.search.baseline import evaluate_bundled, hunt_entry
from repro.search.strategies import HuntConfig, run_hunt

EXPERIMENT_ID = "EXP-HUNT"
TITLE = "Adversary synthesis: worst mined schedules vs the bundled gauntlet"

#: (algorithm, n) cells and search effort per scale.
_GRIDS = {
    "smoke": (("balls-into-leaves", (8,)),),
    "paper": (("balls-into-leaves", (16, 32)), ("early-terminating", (16,))),
    "deep": (("balls-into-leaves", (16, 32, 64)), ("early-terminating", (16, 32))),
}
_BUDGETS = {"smoke": 32, "paper": 150, "deep": 400}
_STRATEGIES = {"smoke": "random", "paper": "hillclimb", "deep": "hillclimb"}
_BASELINE_TRIALS = {"smoke": 2, "paper": 5, "deep": 8}


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: Optional[int] = None,
    kernel: str = "auto",
    objective: str = "rounds",
) -> ExperimentResult:
    """Hunt every cell of the scale's grid and report the comparisons."""
    check_scale(scale)
    budget = _BUDGETS[scale]
    strategy = _STRATEGIES[scale]
    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    beaten = 0
    cells: Tuple[Tuple[str, Tuple[int, ...]], ...] = _GRIDS[scale]
    for algorithm, sizes in cells:
        for n in sizes:
            config = HuntConfig(
                algorithm=algorithm,
                n=n,
                objective=objective,
                budget=budget,
                seed=seed,
                kernel=kernel,
            )
            hunt = run_hunt(config, strategy, executor=executor, workers=workers)
            entries = [hunt_entry(e) for e in hunt.top(3)] + evaluate_bundled(
                config,
                trials=_BASELINE_TRIALS[scale],
                executor=executor,
                workers=workers,
            )
            result.tables.append(
                worst_case_table(f"{algorithm} n={n}", objective, entries)
            )
            best = hunt.best
            result.notes.append(
                f"{algorithm} n={n}: worst genotype {best.schedule.to_json()} "
                f"(score {best.score:g}, trial seed {best.best_result.spec.seed})"
            )
            if beats_every_bundled(entries):
                beaten += 1
    total = sum(len(sizes) for _, sizes in cells)
    result.notes.append(
        f"synthesized schedules beat the whole bundled gauntlet on "
        f"{beaten}/{total} cells ({strategy} strategy, budget {budget}/cell); "
        "shrink any genotype via: python -m repro hunt --objective "
        f"{objective} --strategy {strategy} --seed {seed} --budget {budget}"
    )
    return result
