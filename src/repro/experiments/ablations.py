"""EXP-ABL — ablations: why each design choice of Algorithm 1 is there.

Three knobs, each removed in isolation, measured failure-free and under
the half-split crash adversary:

* **capacity-weighted coins** (lines 5-10) → fair coins: safety intact
  but contention concentrates where space is scarce; rounds grow.
* **the <R priority order** (Definition 1) → plain label order: capacity
  checks keep safety, but space below descended balls is no longer
  protected, hurting progress.
* **round-2 position synchronization** (lines 22-28) → skipped: phases
  cost one round instead of two, and failure-free nothing breaks — but
  under crashes view divergence is permanent and *uniqueness fails*.
  The violation rate is the measurement: round 2 is a safety mechanism,
  not an optimization.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.splitter import HalfSplitAdversary
from repro.analysis.tables import Table
from repro.core.balls_into_leaves import build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.errors import RoundLimitExceeded, SpecViolation
from repro.experiments.common import ExperimentResult, scaled
from repro.ids import sparse_ids
from repro.sim.checker import RenamingSpec, check_renaming
from repro.sim.simulator import Simulation

EXPERIMENT_ID = "EXP-ABL"
TITLE = "Ablations: weighted coins, <R order, and round-2 synchronization"

VARIANTS = {
    "full algorithm": BallsIntoLeavesConfig(),
    "fair coins": BallsIntoLeavesConfig(path_policy="random-unweighted"),
    "label order": BallsIntoLeavesConfig(movement_order="label"),
    "no round-2 sync": BallsIntoLeavesConfig(sync_positions=False),
}


def _duplicate_decisions(simulation: Simulation) -> int:
    """Distinct names decided by more than one correct (alive) ball."""
    crashed = simulation.crashed
    owners = {}
    duplicates = set()
    for pid, proc in simulation.processes.items():
        if pid in crashed or proc.decision is None:
            continue
        name = proc.decision
        if name in owners:
            duplicates.add(name)
        owners[name] = pid
    return len(duplicates)


def _one_run(config: BallsIntoLeavesConfig, n: int, seed: int, with_crashes: bool):
    """Run one variant; returns (rounds, violated?, timed_out?, duplicates)."""
    adversary: Optional[HalfSplitAdversary] = None
    if with_crashes:
        adversary = HalfSplitAdversary(
            rounds=frozenset({1} | set(range(2, 64))),
            max_crashes=max(1, n // 8),
            seed=seed,
        )
    processes, _store = build_balls_into_leaves(sparse_ids(n), seed=seed, config=config)
    simulation = Simulation(
        processes, adversary=adversary, max_rounds=6 * n + 32
    )
    try:
        result = simulation.run()
    except RoundLimitExceeded:
        # Non-termination is itself a spec failure; also report any
        # duplicate names that were already decided when we stopped.
        return None, False, True, _duplicate_decisions(simulation)
    try:
        check_renaming(result, RenamingSpec(n=n))
    except SpecViolation:
        return result.rounds, True, False, _duplicate_decisions(simulation)
    return result.rounds, False, False, 0


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Compare the variants failure-free and under crashes."""
    n = scaled(scale, 64, 256)
    trials = scaled(scale, 4, 25)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        f"Ablation outcomes (n={n}, {trials} trials each)",
        [
            "variant",
            "ff rounds (mean)",
            "crash rounds (mean)",
            "spec failures",
            "stuck runs",
            "dup names",
        ],
        notes="crashes: half-split bursts with budget n/8; a spec failure or "
        "stuck (non-terminating) run means the *ablated* variant broke",
    )
    for name, config in VARIANTS.items():
        ff_rounds = []
        crash_rounds = []
        violations = 0
        timeouts = 0
        duplicate_names = 0
        for trial in range(trials):
            trial_seed = seed * 31 + trial
            rounds, _violated, _timed_out, _dups = _one_run(
                config, n, trial_seed, False
            )
            if rounds is not None:
                ff_rounds.append(rounds)
            rounds, violated, timed_out, dups = _one_run(config, n, trial_seed, True)
            if timed_out:
                timeouts += 1
            elif violated:
                violations += 1
            duplicate_names += dups
            if rounds is not None:
                crash_rounds.append(rounds)
        table.add_row(
            name,
            sum(ff_rounds) / len(ff_rounds) if ff_rounds else float("nan"),
            sum(crash_rounds) / len(crash_rounds) if crash_rounds else float("nan"),
            f"{violations}/{trials}",
            f"{timeouts}/{trials}",
            duplicate_names,
        )
    result.tables.append(table)
    result.notes.append(
        "expected shape: 'full algorithm' and the liveness ablations never "
        "violate the spec (violations 0); 'no round-2 sync' violates under "
        "crashes, demonstrating round 2 is what Proposition 1 needs"
    )
    result.notes.append(
        "fair coins and label order keep correctness but pay rounds — the "
        "capacity weighting and <R order are liveness mechanisms"
    )
    return result
