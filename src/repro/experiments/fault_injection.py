"""EXP-FAULT — degradation beyond the crash model: omission, delay, corruption.

The paper's guarantees are proved for crash faults only.  This
experiment measures what each *stronger* fault family does to
Balls-into-Leaves on the same rails the crash results use, one sub-table
per family:

* **omission** — i.i.d. per-link loss at rate ``p``.  Loss is not
  graceful: an asymmetric drop of a round-1 hello partitions the
  membership picture (peers purge the silenced ball; its own view never
  learns), which can wedge the run past the round limit or produce
  duplicate names.  The table reports both failure modes honestly —
  wedged runs are captured as error rows, duplicate names are counted
  against the survivors — alongside the round/message degradation of the
  runs that do terminate.
* **bounded delay** — every message arrives within ``Δ`` rounds.  The
  synchronous algorithm treats a late message as silence followed by a
  re-announcement, so delays cost rounds but (unlike omission) every
  view eventually hears every survivor.  The table sweeps the *rate*,
  not the bound: every sender re-broadcasts its current state each
  round and the simulator supersedes a buffered late message with any
  fresher one from the same sender, so a link delayed by Δ=1 and Δ=4
  behave identically — the stale copy is discarded either way.  The
  lineup keeps one Δ=4 row as an executable witness of that
  insensitivity.  Reference engine only: the columnar kernel rejects
  the family by name at selection.
* **corruption** — up to ``b`` Byzantine-lite senders whose payloads are
  rewritten schema-preservingly.  Also reference-only.

Every trial runs with ``check=False`` and ``capture_errors=True``: the
point is to *measure* violations, not raise on the first one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.experiments.common import ExecutorLike, ExperimentResult, scaled
from repro.sim.batch import AdversarySpec, TrialResult, TrialSpec, run_batch

EXPERIMENT_ID = "EXP-FAULT"
TITLE = "Fault injection beyond crashes: omission, delay, corruption"

ALGORITHM = "balls-into-leaves"


def _specs_for(
    adversary: AdversarySpec, n: int, trials: int, base_seed: int
) -> List[TrialSpec]:
    return [
        TrialSpec(
            algorithm=ALGORITHM,
            n=n,
            seed=base_seed + t,
            adversary=adversary,
            halt_on_name=True,
            check=False,
            capture_errors=True,
        )
        for t in range(trials)
    ]


def _duplicate_names(trial: TrialResult) -> bool:
    names = [name for _pid, name in trial.names]
    return len(names) != len(set(names))


def _row(
    label: str, results: Sequence[TrialResult]
) -> Tuple[str, float, float, float, float, float]:
    """(label, mean rounds, p95 rounds, wedged%, dup%, mean injected)."""
    finished = [r for r in results if r.error is None]
    wedged = 100.0 * (len(results) - len(finished)) / len(results)
    dup = (
        100.0 * sum(1 for r in finished if _duplicate_names(r)) / len(finished)
        if finished
        else 0.0
    )
    rounds = summarize([r.rounds for r in finished]) if finished else None
    injected = (
        sum(r.omissions + r.delayed + r.corrupted for r in results)
        / len(results)
    )
    return (
        label,
        rounds.mean if rounds else float("nan"),
        rounds.p95 if rounds else float("nan"),
        wedged,
        dup,
        injected,
    )


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Measure each fault family's degradation at a fixed n."""
    n = scaled(scale, 16, 64)
    trials = scaled(scale, 5, 25)
    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)

    families: List[Tuple[str, List[AdversarySpec]]] = [
        (
            "omission",
            [
                AdversarySpec.of("none", label="none"),
                AdversarySpec.of("omission", p=0.02, label="iid p=0.02"),
                AdversarySpec.of("omission", p=0.05, label="iid p=0.05"),
                AdversarySpec.of("omission", p=0.1, label="iid p=0.10"),
                AdversarySpec.of("omission", p=0.2, label="iid p=0.20"),
                AdversarySpec.of(
                    "omission",
                    p=0.2,
                    first=3,
                    last=6,
                    label="iid p=0.20 rounds 3-6",
                ),
                AdversarySpec.of(
                    "omission-targeted", count=1, label="targeted 1"
                ),
            ],
        ),
        (
            "delay",
            [
                AdversarySpec.of(
                    "delay", d=2, rate=0.05, label="delay rate=0.05"
                ),
                AdversarySpec.of(
                    "delay", d=2, rate=0.1, label="delay rate=0.10"
                ),
                AdversarySpec.of(
                    "delay", d=2, rate=0.2, label="delay rate=0.20"
                ),
                AdversarySpec.of(
                    "delay", d=4, rate=0.2, label="delay rate=0.20 Δ=4"
                ),
            ],
        ),
        (
            "corruption",
            [
                AdversarySpec.of("corrupt", b=1, label="corrupt b=1"),
                AdversarySpec.of("corrupt", b=2, label="corrupt b=2"),
            ],
        ),
    ]

    for family, lineup in families:
        specs: List[TrialSpec] = []
        for adversary in lineup:
            specs.extend(_specs_for(adversary, n, trials, seed))
        batch = run_batch(specs, executor=executor, workers=workers)
        table = Table(
            f"{family} faults on {ALGORITHM} (n={n}, {trials} trials each)",
            [
                "adversary",
                "mean rounds",
                "p95",
                "wedged %",
                "dup-name %",
                "mean injected",
            ],
            notes=(
                "wedged = runs captured at the round limit; dup-name = "
                "terminating runs whose survivors share a name; injected "
                "= dropped + delayed + corrupted messages per trial"
            ),
        )
        for i, adversary in enumerate(lineup):
            results = batch.trials[i * trials : (i + 1) * trials]
            table.add_row(*_row(adversary.key, results))
        result.tables.append(table)

    result.notes.append(
        "omission is the only extra family the columnar fast path "
        "certifies; delay and corruption rows ran on the reference "
        "engine (rejected by family name at kernel selection)"
    )
    result.notes.append(
        "wedged omission runs are the hello-partition livelock the "
        "omission hunt mines deliberately (see repro hunt "
        "--fault-family omission)"
    )
    result.notes.append(
        "delay degradation tracks the delay *rate*, not the bound: "
        "every round's fresh re-broadcast supersedes a buffered late "
        "message, so the Δ=4 row matches Δ=2 at the same rate by "
        "construction"
    )
    return result
