"""EXP-NP2 — arbitrary n: the power-of-two assumption is removable.

Footnote 1 of the paper assumes ``n`` is a power of two "to simplify
exposition".  Our tree nodes are leaf-rank intervals split as evenly as
possible, so any ``n >= 1`` works.  This experiment checks there is no
hidden cliff: round counts vary smoothly across n, including just-above
and just-below powers of two, and every run renames correctly.
"""

from __future__ import annotations

import math

from repro.analysis.tables import Table
from repro.experiments.common import (
    ExperimentResult,
    round_stats,
    rounds_over_trials,
    scaled,
)

EXPERIMENT_ID = "EXP-NP2"
TITLE = "Arbitrary n: no power-of-two cliffs"


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Sweep sizes straddling powers of two."""
    sizes = scaled(
        scale,
        [15, 16, 17, 33],
        [15, 16, 17, 31, 32, 33, 100, 255, 256, 257, 1000, 1023, 1024, 1025, 2000],
    )
    trials = scaled(scale, 3, 12)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        "Balls-into-Leaves rounds across non-power-of-two sizes",
        ["n", "tree height", "mean rounds", "max rounds"],
        notes="height = ceil(log2 n); interval splitting keeps the tree "
        "balanced within one level for every n",
    )
    by_size = {}
    for n in sizes:
        stats = round_stats(
            rounds_over_trials("balls-into-leaves", n, trials=trials, base_seed=seed)
        )
        by_size[n] = stats
        table.add_row(n, math.ceil(math.log2(n)), stats.mean, stats.maximum)
    result.tables.append(table)

    cliffs = []
    ordered = sorted(by_size)
    for prev, nxt in zip(ordered, ordered[1:]):
        jump = abs(by_size[nxt].mean - by_size[prev].mean)
        if jump > 2.0:
            cliffs.append((prev, nxt, jump))
    if cliffs:
        result.notes.append(f"round-count cliffs detected: {cliffs}")
    else:
        result.notes.append(
            "no adjacent sizes differ by more than 2 mean rounds: the "
            "generalization is smooth"
        )
    result.notes.append(
        "every run passed the tight-renaming checker (names exactly 0..n-1)"
    )
    return result
