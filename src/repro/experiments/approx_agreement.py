"""EXP-AA — Section 2's enabling fact: approximate agreement is fast.

The paper situates its result against Okun's order-preserving renaming,
which runs on approximate agreement and "terminates in a constant number
of rounds if n > 2f^2 ... because with few faults approximate agreement
can be solved in constant time."  This experiment measures the substrate
directly: the diameter of the value interval per round, failure-free and
against an adaptive *extreme-holder* adversary (crashes the process whose
broadcast carries the current maximum, delivering to half the peers —
the worst thing a crash can do to the midpoint rule).

Expected shape: geometric halving per crash-free round; each crash buys
the adversary at most ~one round of stall, so rounds-to-epsilon grows
additively with f, not multiplicatively.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryContext, CrashPlan
from repro.analysis.tables import Table
from repro.baselines.approximate_agreement import (
    VALUE,
    build_approximate_agreement,
    decision_diameter,
    rounds_for,
)
from repro.experiments.common import ExperimentResult, scaled
from repro.ids import sparse_ids
from repro.sim.simulator import Simulation

EXPERIMENT_ID = "EXP-AA"
TITLE = "Approximate agreement converges fast (the engine behind [19]/[3])"


class ExtremeHolderAdversary(Adversary):
    """Crash the current maximum-value broadcaster, splitting receivers.

    A strong adaptive strategy: it reads the outbox (legal per the model)
    to find the value that defines the interval's top end, then makes
    that value visible to only half the survivors.
    """

    def __init__(self, *, max_crashes: int, seed: Optional[int] = None) -> None:
        super().__init__(seed=seed)
        self._cap = max_crashes
        self._crashes = 0

    def plan(self, ctx: AdversaryContext) -> CrashPlan:
        if self._crashes >= self._cap:
            return {}
        carriers = [
            (payload[1], pid)
            for pid, payload in ctx.outbox.items()
            if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == VALUE
        ]
        if len(carriers) < 2:
            return {}
        _value, victim = max(carriers)
        others = sorted((p for p in ctx.alive if p != victim), key=repr)
        self._crashes += 1
        return {victim: frozenset(others[::2])}


def _measure(n: int, f: int, seed: int, epsilon: float = 1.0):
    """Run one AA instance; returns (diameter trajectory, final diameter)."""
    ids = sparse_ids(n)
    initial = [float(i * n) for i in range(n)]  # range n^2, forces ~2 log2 n halvings
    rounds = rounds_for(epsilon, max(initial) - min(initial), f)
    processes = build_approximate_agreement(ids, initial, rounds=rounds)
    adversary = ExtremeHolderAdversary(max_crashes=f, seed=seed) if f else None
    simulation = Simulation(processes, adversary=adversary, max_rounds=rounds + 4)
    result = simulation.run()
    survivors = [p for p in processes if p.pid not in result.crashed]
    length = max(len(p.history) for p in survivors)
    trajectory = []
    for index in range(length):
        values = [p.history[index] for p in survivors if index < len(p.history)]
        trajectory.append(max(values) - min(values))
    correct_decisions = {
        pid: value
        for pid, value in result.decisions.items()
        if pid not in result.crashed
    }
    return trajectory, decision_diameter(correct_decisions), rounds


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Diameter trajectories and rounds-to-epsilon across failure counts."""
    n = scaled(scale, 32, 128)
    failure_counts = scaled(scale, [0, 4], [0, 1, 2, 4, 8, 16, 32])
    trials = scaled(scale, 2, 6)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        f"Approximate agreement vs adaptive extreme-holder crashes (n={n})",
        ["f", "rounds budgeted", "final diameter (max)", "rounds to diam<=1 (mean)"],
        notes="budget = log2(range) + f; trajectory halves every crash-free round",
    )
    for f in failure_counts:
        finals = []
        to_eps = []
        for trial in range(trials):
            trajectory, final, budget = _measure(n, f, seed * 131 + trial)
            finals.append(final)
            reached = next(
                (index for index, d in enumerate(trajectory) if d <= 1.0),
                len(trajectory),
            )
            to_eps.append(reached)
        table.add_row(f, budget, max(finals), sum(to_eps) / len(to_eps))
    result.tables.append(table)

    worst_f = failure_counts[-1]
    trajectory, _final, _budget = _measure(n, worst_f, seed)
    shown = ", ".join(f"{d:.1f}" for d in trajectory[:10])
    result.plots.append(f"diameter per round under f={worst_f} crashes: {shown}, ...")
    result.notes.append(
        "failure-free, full-information midpoint agreement converges in a "
        "single round (everyone sees the same extremes); *crashes* are what "
        "keep values apart, and the diameter the adversary can sustain halves "
        "each round while costing it one victim"
    )
    result.notes.append(
        "rounds-to-epsilon therefore grows additively with f — the 'constant "
        "time with few faults' fact the paper quotes from [19]; compare the "
        "renaming route in EXP-T4, which scales as log log f"
    )
    return result
