"""Registry of experiment ids -> runner modules.

Experiments whose ``run`` accepts ``executor`` / ``workers`` (the modules
routed through :mod:`repro.sim.batch`) get the caller's execution backend
threaded through; the rest keep their historical signature and run
in-process.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict, List, Optional

from repro.errors import UnknownExperimentError
from repro.experiments import (
    ablations,
    adversary_gauntlet,
    approx_agreement,
    det_termination,
    fault_injection,
    fig_path_view,
    fig_phase_snapshots,
    hunt,
    l6_node_occupancy,
    l10_path_drain,
    loadbalance_motivation,
    message_complexity,
    nonpow2,
    separation,
    t2_scaling,
    t3_failure_free,
    t4_early_termination,
    tail,
)
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    title: str
    run: Callable[..., ExperimentResult]

    @property
    def batched(self) -> bool:
        """True when the runner routes its sweeps through the batch engine."""
        return "executor" in inspect.signature(self.run).parameters

    @property
    def kernel_aware(self) -> bool:
        """True when the runner accepts a simulation-kernel selection."""
        return "kernel" in inspect.signature(self.run).parameters


_MODULES: List[ModuleType] = [
    fig_phase_snapshots,
    fig_path_view,
    t2_scaling,
    separation,
    l6_node_occupancy,
    l10_path_drain,
    t3_failure_free,
    t4_early_termination,
    adversary_gauntlet,
    loadbalance_motivation,
    det_termination,
    ablations,
    message_complexity,
    approx_agreement,
    nonpow2,
    hunt,
    tail,
    fault_injection,
]

_REGISTRY: Dict[str, ExperimentEntry] = {
    module.EXPERIMENT_ID: ExperimentEntry(
        experiment_id=module.EXPERIMENT_ID, title=module.TITLE, run=module.run
    )
    for module in _MODULES
}


def all_experiments() -> List[ExperimentEntry]:
    """All registered experiments in presentation order."""
    return [_REGISTRY[module.EXPERIMENT_ID] for module in _MODULES]


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment; raises :class:`UnknownExperimentError`."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(experiment_id, list(_REGISTRY)) from None


def run_experiment(
    experiment_id: str,
    *,
    scale: str = "paper",
    seed: int = 0,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by id, threading the execution backend (and the
    simulation-kernel selection) through when the experiment supports it
    (others ignore them and run serially on the default kernel)."""
    entry = get_experiment(experiment_id)
    kwargs = {"scale": scale, "seed": seed}
    if entry.batched:
        kwargs["executor"] = executor
        kwargs["workers"] = workers
    if entry.kernel_aware and kernel is not None:
        kwargs["kernel"] = kernel
    return entry.run(**kwargs)
