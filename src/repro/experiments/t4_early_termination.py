"""EXP-T4 — Theorem 4: O(log log f) rounds with f actual failures.

Fix ``n`` and force *exactly* ``f`` crashes during the label announcement
(round 1), each delivered to an adversarially chosen half of the
receivers — the generalization of Section 6's half-split example, which
is the pattern Theorem 4's proof reasons about (ranks shift by at most
``f``, so collisions are confined to subtrees of size ~f).  Measured
rounds should grow doubly-logarithmically in ``f``, not with ``n``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.adversary.scheduled import ScheduledAdversary, ScheduledCrash
from repro.analysis.fitting import best_model
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, round_stats, scaled
from repro.ids import sparse_ids
from repro.sim.rng import derive_rng
from repro.sim.runner import run_renaming

EXPERIMENT_ID = "EXP-T4"
TITLE = "Theorem 4: early termination in O(log log f) rounds"


def _first_round_crashes(ids: List[int], f: int, seed: int) -> Optional[ScheduledAdversary]:
    """Crash ``f`` spread-out balls in round 1, each reaching half the peers.

    Receiver halves are by *absolute* parity of the id list (the same two
    camps for every victim), matching the paper's every-second-ball
    example while keeping the number of distinct views — and hence the
    simulation cost — independent of ``f``.
    """
    if f == 0:
        return None
    rng = derive_rng(seed, "t4-adversary")
    stride = max(1, len(ids) // f)
    victims = ids[::stride][:f]
    # Camps are the first and second half of the id space: whatever the
    # victim set is, survivors exist in both camps, so their views of the
    # crashed labels genuinely diverge (the rank-shift mechanism of the
    # Theorem 4 analysis).
    half = len(ids) // 2
    camps = (ids[:half], ids[half:])
    schedule = []
    for victim in victims:
        camp = camps[rng.randrange(2)]
        schedule.append(
            ScheduledCrash(
                round_no=1,
                victim=victim,
                receivers=[pid for pid in camp if pid != victim],
            )
        )
    return ScheduledAdversary(schedule)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Sweep f at fixed n; fit rounds against log log f."""
    n = scaled(scale, 256, 2048)
    failure_counts = scaled(
        scale, [0, 2, 8], [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    )
    trials = scaled(scale, 2, 16)
    ids = sparse_ids(n)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        f"Early-terminating rounds vs f (n={n}, crashes in round 1)",
        ["f", "mean rounds", "p95", "max", "log2 log2 f"],
        notes="Theorem 4 predicts growth ~ log log f; the f=0 row is Theorem 3",
    )
    means: List[float] = []
    measured_f: List[int] = []
    for f in failure_counts:
        runs = []
        for trial in range(trials):
            trial_seed = seed * 7919 + trial
            adversary = _first_round_crashes(ids, f, trial_seed)
            runs.append(
                run_renaming(
                    "early-terminating", ids, seed=trial_seed, adversary=adversary
                )
            )
        stats = round_stats(runs)
        loglog_f = math.log2(math.log2(f)) if f >= 4 else 0.0
        table.add_row(f, stats.mean, stats.p95, stats.maximum, loglog_f)
        if f >= 1:
            means.append(stats.mean)
            measured_f.append(f)
    result.tables.append(table)

    if len(measured_f) >= 3:
        fit = best_model(measured_f, means, models=("const", "loglog", "log", "linear"))
        result.notes.append(
            f"best fit of mean rounds vs f: {fit.model} (R^2={fit.r_squared:.3f}); "
            "Theorem 4 predicts loglog (or const at these small absolute values)"
        )
    result.notes.append(
        "rounds depend on f, not n: compare with EXP-T2 where rounds grow with n "
        "only for the non-early-terminating algorithm"
    )
    return result
