"""EXP-DET — Lemma 11: deterministic termination in O(n) phases.

Balls-into-Leaves guarantees termination even with maximally unlucky
random choices.  Force the worst case with the ``leftmost`` policy (every
ball aims at the same leaf, the configuration of Figure 2a): exactly one
ball secures a leaf per phase, so the run takes ``~2n`` rounds — linear,
matching Lemma 11's bound, and still correct.
"""

from __future__ import annotations

from repro.analysis.fitting import best_model
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, rounds_over_trials, scaled

EXPERIMENT_ID = "EXP-DET"
TITLE = "Lemma 11: guaranteed termination, linear in the degenerate worst case"


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Sweep n under the leftmost policy; rounds must grow linearly."""
    sizes = scaled(scale, [4, 8, 16], [4, 8, 16, 32, 64, 128])

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        "Rounds under the all-collide (leftmost) policy",
        ["n", "rounds", "2n + 1"],
        notes="one ball secures a leaf per phase: hello + n phases of 2 rounds",
    )
    rounds_list = []
    for n in sizes:
        runs = rounds_over_trials("leftmost", n, trials=1, base_seed=seed)
        rounds = runs[0].rounds
        rounds_list.append(rounds)
        table.add_row(n, rounds, 2 * n + 1)
    result.tables.append(table)

    fit = best_model(sizes, rounds_list, models=("const", "loglog", "log", "linear"))
    result.notes.append(
        f"best fit: {fit.model} (slope {fit.slope:.2f}, R^2={fit.r_squared:.3f}); "
        "Lemma 11 predicts linear with slope ~2"
    )
    result.notes.append(
        "every run still satisfies tight renaming: the deterministic "
        "termination guarantee costs rounds, never correctness"
    )
    return result
