"""EXP-T2 — Theorem 2: Balls-into-Leaves finishes in O(log log n) rounds.

Sweep ``n`` over powers of two, run many seeded trials (failure-free and
with an aggressive random crash mix), and fit the mean round count to the
candidate growth models.  Theorem 2 predicts the ``loglog`` model wins by
a wide margin over ``log`` — and that crashes do not slow the algorithm
down (Section 5.3).

The whole sweep is two scenario matrices through the batch engine; pass
``executor="process"`` (or ``--workers`` on the CLI) to spread the trials
over cores without changing a digit of the output.
"""

from __future__ import annotations

import math

from repro.analysis.ascii_plot import line_plot
from repro.analysis.fitting import fit_growth_models
from repro.analysis.tables import Table
from repro.experiments.common import (
    ExecutorLike,
    ExperimentResult,
    round_stats,
    scaled,
    sweep,
)
from repro.sim.batch import AdversarySpec

EXPERIMENT_ID = "EXP-T2"
TITLE = "Theorem 2: O(log log n) rounds w.h.p. for Balls-into-Leaves"


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: int = None,
    kernel: str = "auto",
) -> ExperimentResult:
    """Run the scaling sweep and return tables + fit report.

    ``--scale deep`` extends the grid to n = 2^14..2^17, where the
    log log shape becomes visually unmistakable.  Those sizes are only
    tractable on the columnar fast kernel, so the deep sweep is
    failure-free only (a crashing adversary would force every trial back
    onto the reference engine at ~minutes per trial).
    """
    deep = scale == "deep"
    if deep:
        sizes = [1024, 4096, 16384, 32768, 65536, 131072]
        trials = 5
    else:
        sizes = scaled(
            scale, [16, 64, 256], [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        )
        trials = scaled(scale, 3, 20)
    crash_rate = 0.05

    ff_batch = sweep(
        ["balls-into-leaves"],
        sizes,
        ["none"],
        trials=trials,
        base_seed=seed,
        executor=executor,
        workers=workers,
        kernel=kernel,
    )
    crash_batch = None
    if not deep:
        crash_batch = sweep(
            ["balls-into-leaves"],
            sizes,
            [AdversarySpec.of("random", rate=crash_rate)],
            trials=trials,
            base_seed=seed + 1,
            executor=executor,
            workers=workers,
            kernel=kernel,
        )

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    if deep:
        table = Table(
            "Rounds to rename, Balls-into-Leaves (deep grid, fast kernel)",
            ["n", "log2(log2 n)", "ff mean", "ff p95", "ff max", "kernel"],
            notes="failure-free only: the columnar kernel is what makes "
            "n up to 2^17 tractable",
        )
    else:
        table = Table(
            "Rounds to rename, Balls-into-Leaves",
            [
                "n",
                "log2(log2 n)",
                "ff mean",
                "ff p95",
                "ff max",
                "crash mean",
                "crash p95",
                "crash max",
                "mean f",
            ],
            notes="ff = failure-free; crash = 5%/round random crashes, budget t=n-1",
        )

    ff_means, crash_means = [], []
    for n in sizes:
        ff_runs = ff_batch.cell("balls-into-leaves", n, "none")
        ff = round_stats(ff_runs)
        if deep:
            kernels = sorted({run_.kernel for run_ in ff_runs})
            table.add_row(
                n,
                math.log2(math.log2(n)),
                ff.mean,
                ff.p95,
                ff.maximum,
                "+".join(kernels),
            )
            ff_means.append(ff.mean)
            continue
        crash_runs = crash_batch.cell(
            "balls-into-leaves", n, AdversarySpec.of("random", rate=crash_rate)
        )
        crash = round_stats(crash_runs)
        mean_f = sum(run_.failures for run_ in crash_runs) / len(crash_runs)
        table.add_row(
            n,
            math.log2(math.log2(n)),
            ff.mean,
            ff.p95,
            ff.maximum,
            crash.mean,
            crash.p95,
            crash.maximum,
            mean_f,
        )
        ff_means.append(ff.mean)
        crash_means.append(crash.mean)
    result.tables.append(table)

    fits = fit_growth_models(sizes, ff_means)
    fit_table = Table(
        "Growth-model fit of failure-free mean rounds",
        ["model", "intercept", "slope", "R^2", "RMSE"],
        notes="Theorem 2 predicts 'loglog' beats 'log' and 'linear'",
    )
    for fit in fits:
        fit_table.add_row(fit.model, fit.intercept, fit.slope, fit.r_squared, fit.rmse)
    result.tables.append(fit_table)

    series = {"failure-free": ff_means}
    if not deep:
        series["5% crashes"] = crash_means
    result.plots.append(
        line_plot(
            series,
            xs=[math.log2(n) for n in sizes],
            title="mean rounds vs log2(n)  (flat-ish curve == sub-logarithmic)",
            x_label="log2(n)",
            y_label="rounds",
        )
    )
    best = fits[0]
    result.notes.append(
        f"best-fitting growth model: {best.model} "
        f"(R^2={best.r_squared:.3f}); paper predicts loglog or const-like at these sizes"
    )
    if deep:
        result.notes.append(
            "deep grid (n up to 2^17) runs on the columnar kernel; the crash "
            "matrix is omitted because crashing adversaries fall back to the "
            "reference engine (see EXPERIMENTS.md, kernel selection)"
        )
    else:
        result.notes.append(
            "crashes do not slow the run down (Section 5.3): compare 'crash mean' "
            "with 'ff mean' per row"
        )
    return result
