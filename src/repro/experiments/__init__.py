"""The experiment suite: one module per reproduced claim.

The paper is a theory paper — its "evaluation" is Theorems 1-4 and the
key lemmas, plus three illustrative figures.  Each module here regenerates
one of those claims empirically; :mod:`repro.experiments.registry` maps
experiment ids (EXP-T2, EXP-L6, ...) to runners, and
``python -m repro run <id>`` executes them.  EXPERIMENTS.md records the
paper-vs-measured comparison produced by these modules.
"""

from repro.experiments.common import ExperimentResult, Scale
from repro.experiments.registry import all_experiments, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "Scale",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
