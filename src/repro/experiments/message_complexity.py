"""EXP-MSG — message complexity of Balls-into-Leaves.

The paper counts rounds; a systems reader also wants the message bill.
Every process broadcasts once per round (Section 3's model), so
broadcasts = alive-process-rounds and point-to-point deliveries ~ n per
broadcast.  This experiment measures both for Balls-into-Leaves and the
early-terminating variant, failure-free and under crashes, giving the
O(n^2 log log n) delivery total implied by Theorem 2.

Three scenario matrices through the batch engine (failure-free,
halt-on-name, crash mix); the failure-free trials are shared across the
three tables instead of being recomputed.
"""

from __future__ import annotations

import math

from repro.analysis.tables import Table
from repro.experiments.common import ExecutorLike, ExperimentResult, scaled, sweep
from repro.sim.batch import AdversarySpec

EXPERIMENT_ID = "EXP-MSG"
TITLE = "Message complexity: broadcasts and deliveries per run"


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: int = None,
) -> ExperimentResult:
    """Measure message counts across sizes."""
    sizes = scaled(scale, [16, 64], [64, 256, 1024, 4096])
    trials = scaled(scale, 2, 5)

    ff_batch = sweep(
        ["balls-into-leaves", "early-terminating"],
        sizes,
        ["none"],
        trials=trials,
        base_seed=seed,
        executor=executor,
        workers=workers,
    )
    halting_batch = sweep(
        ["balls-into-leaves"],
        sizes,
        ["none"],
        trials=trials,
        base_seed=seed,
        executor=executor,
        workers=workers,
        halt_on_name=True,
    )
    crash_batch = sweep(
        ["balls-into-leaves"],
        sizes,
        [AdversarySpec.of("random", rate=0.05)],
        trials=trials,
        base_seed=seed + 1,
        executor=executor,
        workers=workers,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    for algorithm in ("balls-into-leaves", "early-terminating"):
        table = Table(
            f"{algorithm}: mean message counts over {trials} trials",
            [
                "n",
                "rounds",
                "broadcasts",
                "deliveries",
                "deliv / n^2",
                "n^2 log2 log2 n",
            ],
            notes="deliveries ~ n^2 per phase: the n^2 loglog n total of Theorem 2",
        )
        for n in sizes:
            runs = ff_batch.cell(algorithm, n)
            mean_rounds = sum(r.rounds for r in runs) / trials
            broadcasts = sum(r.messages_sent for r in runs) / trials
            deliveries = sum(r.messages_delivered for r in runs) / trials
            table.add_row(
                n,
                mean_rounds,
                broadcasts,
                deliveries,
                deliveries / (n * n),
                n * n * math.log2(math.log2(n)),
            )
        result.tables.append(table)

    halt_table = Table(
        "halt-on-name extension: broadcast savings at identical rounds",
        ["n", "rounds", "broadcasts (standard)", "broadcasts (halt-on-name)", "saved"],
        notes="a ball goes silent right after announcing its leaf "
        "(the per-ball termination extension the paper sketches)",
    )
    for n in sizes:
        standard = ff_batch.cell("balls-into-leaves", n)
        early_halt = halting_batch.cell("balls-into-leaves", n)
        sent_standard = sum(r.messages_sent for r in standard) / trials
        sent_halting = sum(r.messages_sent for r in early_halt) / trials
        halt_table.add_row(
            n,
            sum(r.rounds for r in early_halt) / trials,
            sent_standard,
            sent_halting,
            f"{(1 - sent_halting / sent_standard) * 100:.0f}%",
        )
    result.tables.append(halt_table)

    crash_table = Table(
        "balls-into-leaves under 5% crashes: crashes shrink the bill",
        ["n", "rounds", "deliveries (ff)", "deliveries (crash)", "failures"],
        notes="crashed processes stop broadcasting, so failures reduce traffic",
    )
    for n in sizes:
        ff = ff_batch.cell("balls-into-leaves", n)
        crash = crash_batch.cell(
            "balls-into-leaves", n, AdversarySpec.of("random", rate=0.05)
        )
        crash_table.add_row(
            n,
            sum(r.rounds for r in crash) / trials,
            sum(r.messages_delivered for r in ff) / trials,
            sum(r.messages_delivered for r in crash) / trials,
            sum(r.failures for r in crash) / trials,
        )
    result.tables.append(crash_table)
    result.notes.append(
        "the early-terminating variant needs ~3 rounds failure-free, so its "
        "delivery bill is ~3 n^2 — the minimum any full-information "
        "broadcast protocol pays per round"
    )
    return result
