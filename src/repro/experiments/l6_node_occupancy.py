"""EXP-L6 — Lemma 6: per-node occupancy collapses to O(log^2 n).

Track ``bmax`` (the most populated inner node, in the reference view) at
the end of every phase.  Lemma 6 says that within O(log log n) phases
``bmax`` drops below ``c^2 log^2 n`` w.h.p.; the measured trajectory
should contract at least as fast as the ``x -> sqrt(x) * log n``
recurrence that drives the proof.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.concentration import lemma6_occupancy_bound, lemma6_phase_budget
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, rounds_over_trials, scaled

EXPERIMENT_ID = "EXP-L6"
TITLE = "Lemma 6: bmax drops to O(log^2 n) within O(log log n) phases"


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Measure the bmax trajectory phase by phase."""
    sizes = scaled(scale, [256], [1024, 4096])
    trials = scaled(scale, 3, 10)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    for n in sizes:
        runs = rounds_over_trials(
            "balls-into-leaves",
            n,
            trials=trials,
            base_seed=seed,
            collect_phase_stats=True,
        )
        max_phases = max(len(r.phase_stats) for r in runs)
        table = Table(
            f"bmax per phase, n={n} (max over {trials} trials)",
            ["phase", "bmax max", "bmax mean", "balls at leaves (mean)"],
            notes=(
                f"Lemma 6 bound c^2 log^2 n = {lemma6_occupancy_bound(n):.0f} "
                f"within ~{lemma6_phase_budget(n)} phases (c=1); "
                f"phase 1 starts with all {n} balls at the root"
            ),
        )
        for phase_index in range(max_phases):
            values: List[int] = []
            at_leaves: List[int] = []
            for r in runs:
                if phase_index < len(r.phase_stats):
                    values.append(r.phase_stats[phase_index].bmax_inner)
                    at_leaves.append(r.phase_stats[phase_index].balls_at_leaves)
            table.add_row(
                phase_index + 1,
                max(values),
                sum(values) / len(values),
                sum(at_leaves) / len(at_leaves),
            )
        result.tables.append(table)

        bound = lemma6_occupancy_bound(n)
        budget = lemma6_phase_budget(n)
        within: Dict[int, bool] = {}
        for r in runs:
            stats = r.phase_stats
            reached = next(
                (s.phase for s in stats if s.bmax_inner <= bound), len(stats) + 1
            )
            # repro: lint-ok[D104] per-run key, only ever summed; no ordering reaches output
            within[id(r)] = reached <= max(budget, 1) + 1
        fraction = sum(within.values()) / len(within)
        result.notes.append(
            f"n={n}: fraction of trials with bmax <= {bound:.0f} within "
            f"{budget + 1} phases: {fraction:.2f} (Lemma 6 predicts ~1 w.h.p.)"
        )
        result.notes.append(
            f"n={n}: Lemma 4 scale after phase 1 at the root's children is "
            f"sqrt(n log n) ~ {math.sqrt(n * math.log2(n)):.0f}; compare the "
            "phase-1 'bmax max' row"
        )
    return result
