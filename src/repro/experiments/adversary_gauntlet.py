"""EXP-ADV — Section 5.3: crashes do not slow Balls-into-Leaves down.

Run the algorithm against every adversary in the suite — oblivious
random, adaptive targeted-priority, sandwich, half-split — and compare
round distributions against the failure-free baseline.  The paper's
argument: a failure only ever *increases* the gateway capacity relative
to path populations, so every ball is at least as likely to escape; round
counts should not degrade beyond a small constant.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.adversary.base import Adversary
from repro.adversary.random_crash import RandomCrashAdversary
from repro.adversary.sandwich import SandwichAdversary
from repro.adversary.splitter import HalfSplitAdversary
from repro.adversary.targeted import TargetedPriorityAdversary
from repro.analysis.tables import Table
from repro.experiments.common import (
    ExperimentResult,
    failure_stats,
    round_stats,
    rounds_over_trials,
    scaled,
)

EXPERIMENT_ID = "EXP-ADV"
TITLE = "Section 5.3: adversary gauntlet for Balls-into-Leaves"


def _strategies() -> Dict[str, Callable[[int], Optional[Adversary]]]:
    return {
        "none": lambda seed: None,
        "random 5%": lambda seed: RandomCrashAdversary(0.05, seed=seed),
        "random 20%": lambda seed: RandomCrashAdversary(0.20, seed=seed),
        "targeted-priority": lambda seed: TargetedPriorityAdversary(seed=seed),
        "sandwich": lambda seed: SandwichAdversary(seed=seed),
        "half-split r1": lambda seed: HalfSplitAdversary(seed=seed),
        "half-split all": lambda seed: HalfSplitAdversary(
            rounds=frozenset({1} | set(range(3, 200, 2))), seed=seed
        ),
    }


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Run the gauntlet at a fixed n."""
    n = scaled(scale, 64, 512)
    trials = scaled(scale, 3, 15)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        f"Balls-into-Leaves under each adversary (n={n}, {trials} trials)",
        ["adversary", "mean rounds", "p95", "max", "mean failures"],
        notes="every run passes the tight-renaming checker; budget t = n-1",
    )
    baseline = None
    for name, factory in _strategies().items():
        runs = rounds_over_trials(
            "balls-into-leaves",
            n,
            trials=trials,
            base_seed=seed,
            adversary_factory=factory,
        )
        rounds = round_stats(runs)
        failures = failure_stats(runs)
        table.add_row(name, rounds.mean, rounds.p95, rounds.maximum, failures.mean)
        if name == "none":
            baseline = rounds.mean
    result.tables.append(table)
    if baseline:
        result.notes.append(
            f"failure-free mean is {baseline:.2f} rounds; Section 5.3 predicts no "
            "adversary row grows beyond a small constant of it"
        )
    return result
