"""EXP-ADV — Section 5.3: crashes do not slow Balls-into-Leaves down.

Run the algorithm against every adversary in the suite — oblivious
random, adaptive targeted-priority, sandwich, half-split — and compare
round distributions against the failure-free baseline.  The paper's
argument: a failure only ever *increases* the gateway capacity relative
to path populations, so every ball is at least as likely to escape; round
counts should not degrade beyond a small constant.

The gauntlet is a single scenario matrix whose adversary dimension spans
the whole suite; the batch engine runs it on any executor.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.tables import Table
from repro.experiments.common import (
    ExecutorLike,
    ExperimentResult,
    failure_stats,
    round_stats,
    scaled,
    sweep,
)
from repro.sim.batch import AdversarySpec

EXPERIMENT_ID = "EXP-ADV"
TITLE = "Section 5.3: adversary gauntlet for Balls-into-Leaves"


def _strategies() -> Tuple[AdversarySpec, ...]:
    return (
        AdversarySpec.of("none", label="none"),
        AdversarySpec.of("random", rate=0.05, label="random 5%"),
        AdversarySpec.of("random", rate=0.20, label="random 20%"),
        AdversarySpec.of("targeted", label="targeted-priority"),
        AdversarySpec.of("sandwich", label="sandwich"),
        AdversarySpec.of("half-split", label="half-split r1"),
        AdversarySpec.of("half-split", last_round=200, label="half-split all"),
    )


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: int = None,
) -> ExperimentResult:
    """Run the gauntlet at a fixed n."""
    n = scaled(scale, 64, 512)
    trials = scaled(scale, 3, 15)

    strategies = _strategies()
    batch = sweep(
        ["balls-into-leaves"],
        [n],
        strategies,
        trials=trials,
        base_seed=seed,
        executor=executor,
        workers=workers,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        f"Balls-into-Leaves under each adversary (n={n}, {trials} trials)",
        ["adversary", "mean rounds", "p95", "max", "mean failures"],
        notes="every run passes the tight-renaming checker; budget t = n-1",
    )
    baseline = None
    for strategy in strategies:
        runs = batch.cell("balls-into-leaves", n, strategy)
        rounds = round_stats(runs)
        failures = failure_stats(runs)
        table.add_row(strategy.key, rounds.mean, rounds.p95, rounds.maximum, failures.mean)
        if strategy.key == "none":
            baseline = rounds.mean
    result.tables.append(table)
    if baseline:
        result.notes.append(
            f"failure-free mean is {baseline:.2f} rounds; Section 5.3 predicts no "
            "adversary row grows beyond a small constant of it"
        )
    return result
