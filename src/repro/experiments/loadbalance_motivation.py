"""EXP-LB — Sections 1-2: why load balancing does not solve tight renaming.

Three measurements back the paper's motivation:

1. classic max loads — single choice gives Theta(log n / log log n), two
   choices ~ log log n: neither is the one-to-one allocation renaming
   requires;
2. parallel retry reaches one-to-one in ~log log n rounds, but only with
   globally consistent free-bin views;
3. the same scheme with crash-lost "bin taken" announcements produces
   duplicate assignments — a uniqueness violation no renaming algorithm
   may exhibit.
"""

from __future__ import annotations

import math

from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, scaled
from repro.loadbalance.faulty import crash_faulted_parallel_retry
from repro.loadbalance.parallel_retry import parallel_retry
from repro.loadbalance.single_choice import single_choice
from repro.loadbalance.two_choice import two_choice
from repro.sim.rng import derive_rng

EXPERIMENT_ID = "EXP-LB"
TITLE = "Motivation: load balancing is not fault-tolerant tight renaming"


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Measure max loads, retry rounds, and crash-induced duplicates."""
    sizes = scaled(scale, [256, 1024], [256, 1024, 4096, 16384, 65536])
    trials = scaled(scale, 3, 10)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)

    load_table = Table(
        "Max load, n balls into n bins (mean over trials)",
        ["n", "single choice", "two choices", "log n / log log n", "log log n"],
        notes="single ~ log n / log log n, two-choice ~ log log n [18]; "
        "neither is one-to-one",
    )
    for n in sizes:
        singles, doubles = [], []
        for trial in range(trials):
            rng = derive_rng(seed, "lb", n, trial)
            singles.append(single_choice(n, n, rng).max_load)
            doubles.append(two_choice(n, n, rng).max_load)
        log_n = math.log(n)
        load_table.add_row(
            n,
            sum(singles) / trials,
            sum(doubles) / trials,
            log_n / math.log(log_n),
            math.log2(math.log2(n)),
        )
    result.tables.append(load_table)

    retry_table = Table(
        "Parallel retry with consistent views (mean over trials)",
        ["n", "rounds to one-to-one", "log2 log2 n"],
        notes="fast, but assumes every ball sees identical free-bin state",
    )
    for n in sizes:
        rounds = []
        for trial in range(trials):
            rng = derive_rng(seed, "retry", n, trial)
            outcome = parallel_retry(n, n, rng)
            assert outcome.one_to_one
            rounds.append(outcome.rounds)
        retry_table.add_row(n, sum(rounds) / trials, math.log2(math.log2(n)))
    result.tables.append(retry_table)

    faulty_table = Table(
        "Parallel retry with crash-lost announcements",
        ["n", "loss rate", "trials with duplicates", "mean duplicate bins"],
        notes="any duplicate is a renaming uniqueness violation",
    )
    n_faulty = scaled(scale, 128, 512)
    for loss in (0.0, 0.1, 0.3):
        duplicates = []
        for trial in range(trials):
            rng = derive_rng(seed, "faulty", trial, int(loss * 100))
            outcome = crash_faulted_parallel_retry(
                n_faulty, n_faulty, rng, announcement_loss_rate=loss
            )
            duplicates.append(len(outcome.duplicate_bins))
        violated = sum(1 for d in duplicates if d > 0)
        faulty_table.add_row(
            n_faulty, loss, f"{violated}/{trials}", sum(duplicates) / trials
        )
    result.tables.append(faulty_table)

    result.notes.append(
        "conclusion matches Section 1: existing schemes either relax one-to-one "
        "(max loads > 1) or break under inconsistent views (duplicates); "
        "Balls-into-Leaves achieves both, in O(log log n) rounds"
    )
    return result
