"""EXP-T3 — Theorem 3: the early-terminating variant is O(1) failure-free.

Without crashes the deterministic phase-1 rank paths are collision-free,
so every ball reaches a distinct leaf in the first phase: 3 rounds total
(hello + one two-round phase), independent of ``n``.  The table verifies
the constant across the sweep and contrasts plain Balls-into-Leaves.

One two-algorithm scenario matrix through the batch engine.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.experiments.common import (
    ExecutorLike,
    ExperimentResult,
    round_stats,
    scaled,
    sweep,
)

EXPERIMENT_ID = "EXP-T3"
TITLE = "Theorem 3: failure-free early termination in O(1) rounds"


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: int = None,
) -> ExperimentResult:
    """Sweep n failure-free; early-terminating rounds must be constant."""
    sizes = scaled(scale, [16, 256], [16, 64, 256, 1024, 4096])
    trials = scaled(scale, 2, 5)

    batch = sweep(
        ["early-terminating", "balls-into-leaves"],
        sizes,
        ["none"],
        trials=trials,
        base_seed=seed,
        executor=executor,
        workers=workers,
    )

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        "Failure-free rounds: early-terminating vs plain BiL",
        ["n", "early-terminating (max)", "balls-into-leaves (mean)"],
        notes="theorem: the left column is a constant (3 = hello + 1 phase)",
    )
    constants = set()
    for n in sizes:
        early = round_stats(batch.cell("early-terminating", n))
        plain = round_stats(batch.cell("balls-into-leaves", n))
        table.add_row(n, int(early.maximum), plain.mean)
        constants.add(early.maximum)
    result.tables.append(table)
    result.notes.append(
        f"distinct early-terminating round counts across all n: {sorted(constants)} "
        "(a single value confirms O(1))"
    )
    return result
