"""EXP-TAIL — importance-splitting estimates of the round-count tail.

The paper's Theorem 2 bounds the running time by O(log log n) rounds
w.h.p.; this experiment measures the actual tail P(rounds > k·⌈log log n⌉)
for increasing k via the multilevel splitting estimator
(:mod:`repro.monitor.splitting`).  Stage 0 *is* direct Monte Carlo for
the first level, so the first row doubles as the MC cross-check; deeper
stages reach tail mass direct sampling never could at this trial budget
(down to ~1e-9 with the deep grids).  All numbers are deterministic in
``--seed`` and byte-identical across executors.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import Table
from repro.experiments.common import ExecutorLike, ExperimentResult, check_scale
from repro.monitor.splitting import TailConfig, default_levels, run_tail

EXPERIMENT_ID = "EXP-TAIL"
TITLE = "Round-count tail P(rounds > k*ceil(loglog n)) by importance splitting"

#: (n, stage-0 trials, k range, per-stage growth) cells per scale.  The
#: conditional factors decay doubly-exponentially with depth, so the
#: deep (two-round) stages run growing populations; extinct stages end a
#: ladder early with an explicit upper bound instead of a fake zero.
_GRIDS = {
    "smoke": ((64, 64, 2, 3, 2.0),),
    "paper": ((256, 256, 2, 4, 4.0), (1024, 256, 2, 4, 4.0)),
    "deep": ((1024, 512, 2, 5, 8.0), (4096, 512, 2, 5, 8.0)),
}


def run(
    scale: str = "paper",
    seed: int = 0,
    executor: ExecutorLike = None,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ExperimentResult:
    """Estimate the round tail for every cell of the scale's grid."""
    check_scale(scale)
    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    executor_name = executor if isinstance(executor, str) else None
    for n, trials, k_min, k_max, growth in _GRIDS[scale]:
        config = TailConfig(
            n=n,
            seed=seed,
            trials=trials,
            levels=default_levels(n, k_min, k_max),
            kernel=kernel if kernel is not None else "auto",
            growth=growth,
        )
        tail = run_tail(config, executor=executor_name, workers=workers)
        table = Table(
            f"round tail: balls-into-leaves n={n} "
            f"(unit {tail.unit}, {trials} trials/stage)",
            ["stage", "level", "k", "trials", "survivors", "p", "estimate"],
            notes="stage 0 is plain Monte Carlo to the first level; each "
            "later stage resamples + clones the previous survivors",
        )
        for stage in tail.stages:
            table.add_row(
                stage.stage,
                stage.level,
                f"{stage.level / tail.unit:.2f}",
                stage.trials,
                stage.survivors,
                f"{stage.p:.3e}",
                f"{tail.estimate_after(stage.stage):.3e}",
            )
        result.tables.append(table)
        rel = tail.rel_std
        bound = tail.upper_bound
        if bound is not None:
            last = tail.stages[-1]
            headline = (
                f"n={n}: extinct at level {last.level} "
                f"(0/{last.trials} clones), P(rounds > {last.level}) "
                f"<~ {bound:.3e}"
            )
        else:
            headline = (
                f"n={n}: P(rounds > {tail.levels[-1]}) ~= {tail.estimate:.3e}"
                + (f" (rel_std ~= {rel:.2f})" if rel is not None else "")
            )
        result.notes.append(
            headline
            + f"; reproduce with: python -m repro tail --n {n} --seed {seed}"
            f" --trials {trials} --growth {growth} --levels "
            + ",".join(str(level) for level in tail.levels)
        )
    return result
