"""EXP-L10 — Lemmas 9-10: every path drains geometrically.

Track the maximum path population (total balls on the worst root-to-
leaf-parent path, in the reference view) per phase.  Lemma 9 shows a
constant fraction escapes every two phases, so the trajectory should be
upper-bounded by a geometric decay; Lemma 10 then empties the path in
O(log M) phases.  The table reports per-phase populations and the
measured two-phase decay ratio.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, rounds_over_trials, scaled

EXPERIMENT_ID = "EXP-L10"
TITLE = "Lemmas 9-10: constant-fraction escape drains every path"


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Measure worst-path population per phase and its decay ratio."""
    sizes = scaled(scale, [256], [1024, 4096])
    trials = scaled(scale, 3, 10)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    for n in sizes:
        runs = rounds_over_trials(
            "balls-into-leaves",
            n,
            trials=trials,
            base_seed=seed,
            collect_phase_stats=True,
        )
        max_phases = max(len(r.phase_stats) for r in runs)
        table = Table(
            f"max path population per phase, n={n}",
            ["phase", "max", "mean", "mean 2-phase ratio"],
            notes="ratio = population(phase) / population(phase-2); Lemma 9 "
            "predicts a constant < 1 once populations are in the polylog regime",
        )
        per_phase: List[List[int]] = []
        for phase_index in range(max_phases):
            values = [
                r.phase_stats[phase_index].max_path_population
                for r in runs
                if phase_index < len(r.phase_stats)
            ]
            per_phase.append(values)
        for phase_index, values in enumerate(per_phase):
            if phase_index >= 2 and per_phase[phase_index - 2]:
                pairs = [
                    (now, before)
                    for now, before in zip(values, per_phase[phase_index - 2])
                    if before > 0
                ]
                ratio = (
                    sum(now / before for now, before in pairs) / len(pairs)
                    if pairs
                    else 0.0
                )
            else:
                ratio = float("nan")
            table.add_row(
                phase_index + 1,
                max(values),
                sum(values) / len(values),
                ratio,
            )
        result.tables.append(table)
        final_nonempty = sum(
            1 for r in runs if r.phase_stats and r.phase_stats[-1].max_path_population > 1
        )
        result.notes.append(
            f"n={n}: trials ending with a populated inner path: {final_nonempty}/{trials} "
            "(0 expected: termination requires every path empty but for leaf owners)"
        )
    return result
