"""EXP-SEP — the exponential separation (Section 1).

Compare, under the *same* adversarial conditions, the round complexity of:

* Balls-into-Leaves (randomized, Theorem 2: O(log log n)),
* rank-descent (deterministic comparison-based; subject to the
  Omega(log n) lower bound of [9] under adaptive crashes),
* flooding/consensus renaming (linear in the budget ``t = n - 1``).

The adversary replays the half-split pattern of Section 6 on the label
announcement and keeps striking position rounds, maximizing view
divergence — harmless to the randomized algorithm, recurrent collisions
for the deterministic one.  Flooding above n=64 is reported analytically
(its round count is t+1 by construction; measuring it is O(n^4) work).
"""

from __future__ import annotations

import math

from repro.adversary.splitter import HalfSplitAdversary
from repro.analysis.ascii_plot import line_plot
from repro.analysis.fitting import best_model
from repro.analysis.tables import Table
from repro.experiments.common import (
    ExperimentResult,
    round_stats,
    rounds_over_trials,
    scaled,
)

EXPERIMENT_ID = "EXP-SEP"
TITLE = "Exponential separation: randomized vs deterministic tight renaming"

#: Measure flooding only up to here (O(n^4) simulation work); beyond, its
#: round count is n by construction (t + 1 with t = n - 1).
FLOOD_MEASURED_LIMIT = 64


def _stress_adversary(seed: int) -> HalfSplitAdversary:
    """Half-split on the hello round, then strikes on every position round.

    One victim per strike, persistently: each crash splits views right
    when they are about to re-synchronize, which keeps the deterministic
    algorithm re-colliding (its rounds grow with n) while Balls-into-
    Leaves absorbs the same schedule (Section 5.3).
    """
    strike_rounds = frozenset({1} | set(range(3, 4096, 2)))
    return HalfSplitAdversary(rounds=strike_rounds, seed=seed)


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Measure all three algorithms across sizes under the same stress."""
    sizes = scaled(scale, [16, 64], [64, 128, 256, 512, 1024, 2048, 4096])
    trials = scaled(scale, 3, 6)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    table = Table(
        "Mean rounds under the half-split stress adversary",
        ["n", "BiL", "rank-descent", "flood", "log2 n", "log2 log2 n"],
        notes=f"flood measured up to n={FLOOD_MEASURED_LIMIT}, analytic (= n) beyond",
    )

    bil_means, rank_means, flood_means = [], [], []
    for n in sizes:
        bil = round_stats(
            rounds_over_trials(
                "balls-into-leaves",
                n,
                trials=trials,
                base_seed=seed,
                adversary_factory=_stress_adversary,
            )
        )
        rank = round_stats(
            rounds_over_trials(
                "rank-descent",
                n,
                trials=trials,
                base_seed=seed,
                adversary_factory=_stress_adversary,
            )
        )
        if n <= FLOOD_MEASURED_LIMIT:
            flood = round_stats(
                rounds_over_trials(
                    "flood",
                    n,
                    trials=max(1, trials // 3),
                    base_seed=seed,
                    adversary_factory=_stress_adversary,
                )
            ).mean
        else:
            flood = float(n)
        table.add_row(
            n, bil.mean, rank.mean, flood, math.log2(n), math.log2(math.log2(n))
        )
        bil_means.append(bil.mean)
        rank_means.append(rank.mean)
        flood_means.append(flood)
    result.tables.append(table)

    result.plots.append(
        line_plot(
            {"BiL": bil_means, "rank-descent": rank_means},
            xs=[math.log2(n) for n in sizes],
            title="mean rounds vs log2(n) under the stress adversary",
            x_label="log2(n)",
            y_label="rounds",
        )
    )
    bil_fit = best_model(sizes, bil_means)
    rank_fit = best_model(sizes, rank_means)
    result.notes.append(
        f"BiL best fit: {bil_fit.model} (R^2={bil_fit.r_squared:.3f}); "
        f"rank-descent best fit: {rank_fit.model} (R^2={rank_fit.r_squared:.3f}); "
        "flood is linear by construction"
    )
    result.notes.append(
        "the paper's claim is the *ordering* BiL << deterministic << flood, "
        "with BiL growing doubly-logarithmically"
    )
    return result
