"""EXP-F4 — Figure 4: a path, its balls, and its gateway capacities.

Figure 4 fixes the rightmost root-to-leaf-parent path of a 16-leaf tree in
"a possible configuration" with 5 balls on the path and 5 empty leaves
reachable through its gateways.  We reconstruct an equivalent
configuration with the actual data structures, render the path view, and
verify the invariant the proof of Lemma 7 uses: the total gateway
capacity of a path equals the number of balls on it.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.render import render_path, render_view
from repro.tree.topology import Topology

EXPERIMENT_ID = "EXP-F4"
TITLE = "Figure 4: balls on the rightmost path and their gateways"


def build_figure4_view(n: int = 16) -> LocalTreeView:
    """A hand-placed configuration mirroring Figure 4's description.

    Five balls sit on the rightmost path at successive depths; the other
    eleven balls already own leaves, leaving exactly five free leaves
    reachable through the path's gateways.
    """
    topology = Topology(n)
    view = LocalTreeView(topology)
    path = topology.path_to_leaf(topology.root, n - 1)
    inner = path[:-1]  # root .. parent of the rightmost leaf
    # Five balls stuck on the path: one at the root, two at its right
    # child, one at each deeper inner node — capacities stay respected.
    placements = [inner[0], inner[1], inner[1], inner[2], inner[3]]
    for index, node in enumerate(placements):
        view.insert(f"p{index}", node)
    # Eleven settled balls on leaves, chosen to leave 5 free leaves that
    # are reachable from the path's gateway subtrees.
    occupied_leaves = [0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 14]
    for index, rank in enumerate(occupied_leaves):
        view.insert(f"s{index}", nd.leaf_node(rank))
    return view


def gateway_capacity_total(view: LocalTreeView, leaf_rank: int) -> int:
    """Sum of remaining gateway capacities along the path to ``leaf_rank``."""
    topology = view.topology
    path = topology.path_to_leaf(topology.root, leaf_rank)
    total = 0
    for node in path[:-1]:
        left, right = nd.children(node)
        on_path = left if leaf_rank < left[1] else right
        gateway = right if on_path == left else left
        total += view.remaining_capacity(gateway)
    # The last path node's own leaf also counts (the meta-gateway of the
    # leaf parent combines both children).
    total += view.remaining_capacity(path[-1])
    return total


def run(scale: str = "paper", seed: int = 0) -> ExperimentResult:
    """Render the Figure 4 configuration and check the capacity identity."""
    view = build_figure4_view()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, scale)
    result.plots.append("Figure 4a (entire tree):\n" + render_view(view))
    result.plots.append(
        "Figure 4b (rightmost path with gateway capacities):\n"
        + render_path(view, view.topology.n - 1)
    )
    path = view.topology.path_to_leaf(view.topology.root, view.topology.n - 1)
    on_path = sum(view.occupancy(node) for node in path[:-1])
    gateways = gateway_capacity_total(view, view.topology.n - 1)
    result.notes.append(
        f"balls on the path: {on_path}; total gateway capacity: {gateways} — "
        "equal, as Section 5.2 requires ('the sum of remaining capacities of "
        "all gateway subtrees is equal to the total number of balls on pi')"
    )
    return result
