"""One ball's local copy of the tree and everyone's positions.

Section 4: "each ball keeps a local tree, containing the current position
of each ball, including itself".  The view supports the operations of
Algorithm 1's data-structure box — ``Remove``, ``CurrentNode``,
``UpdateNode``, ``OrderedBalls``, ``RemainingCapacity`` — with O(height)
cost per update, by maintaining subtree ball counts along ancestor chains.

Capacity may go *negative* transiently in a view that hosts "ghosts"
(balls that crashed mid-broadcast and were adopted at positions other
views never saw).  The raw count is preserved for diagnostics;
:meth:`LocalTreeView.remaining_capacity` clamps at zero, which is what the
movement and path rules use.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import TreeError, UnknownBallError
from repro.tree import node as nd
from repro.tree.node import Node
from repro.tree.topology import Topology

BallId = Hashable


class LocalTreeView:
    """Positions of all known balls in one ball's local tree.

    Parameters
    ----------
    topology:
        The shared static tree shape.
    balls:
        Optional initial balls, all placed at the root (the configuration
        of Figure 1).
    """

    def __init__(self, topology: Topology, balls: Iterable[BallId] = ()) -> None:
        self._topo = topology
        self._pos: Dict[BallId, Node] = {}
        self._count: Dict[Node, int] = {}
        self._leaf_occ: Dict[Node, int] = {}
        self._at: Dict[Node, Set[BallId]] = {}
        # Per-ball lifecycle tag (repro.core.lifecycle.BallStatus values,
        # stored as plain ints to keep tree -> core import-free).  Sparse:
        # only non-default (non-ACTIVE) tags are kept.
        self._status: Dict[BallId, int] = {}
        self._n_at_leaf = 0
        self._sorted_cache: Optional[List[BallId]] = None
        for ball in balls:
            self.insert(ball, topology.root)

    # ------------------------------------------------------------------ basics
    @property
    def topology(self) -> Topology:
        """The static tree shape shared by all views of a run."""
        return self._topo

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, ball: BallId) -> bool:
        return ball in self._pos

    def balls(self) -> List[BallId]:
        """All balls currently in the view (unspecified order)."""
        return list(self._pos)

    def sorted_balls(self) -> List[BallId]:
        """All balls sorted by label (cached; labels must be comparable)."""
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._pos)
        return self._sorted_cache

    def label_rank(self, ball: BallId) -> int:
        """``ball``'s 0-based rank among all known labels (Section 6)."""
        order = self.sorted_balls()
        index = bisect.bisect_left(order, ball)
        if index >= len(order) or order[index] != ball:
            raise UnknownBallError(f"ball {ball!r} is not in this view")
        return index

    def position(self, ball: BallId) -> Node:
        """Current node of ``ball`` (Algorithm 1's ``CurrentNode``)."""
        try:
            return self._pos[ball]
        except KeyError:
            raise UnknownBallError(f"ball {ball!r} is not in this view") from None

    def depth_of(self, ball: BallId) -> int:
        """Depth of ``ball``'s current node."""
        return self._topo.depth(self.position(ball))

    def balls_at(self, node: Node) -> Set[BallId]:
        """Balls positioned exactly at ``node`` (a fresh copy)."""
        return set(self._at.get(node, ()))

    def occupancy(self, node: Node) -> int:
        """Number of balls positioned exactly at ``node``."""
        return len(self._at.get(node, ()))

    # -------------------------------------------------------------- lifecycle
    def status(self, ball: BallId) -> int:
        """``ball``'s lifecycle tag (a ``BallStatus`` value; 0 = ACTIVE)."""
        if ball not in self._pos:
            raise UnknownBallError(f"ball {ball!r} is not in this view")
        return self._status.get(ball, 0)

    def set_status(self, ball: BallId, status: int) -> None:
        """Set ``ball``'s lifecycle tag (kept sparse: 0 clears the entry)."""
        if ball not in self._pos:
            raise UnknownBallError(f"ball {ball!r} is not in this view")
        if status:
            self._status[ball] = int(status)
        else:
            self._status.pop(ball, None)

    def tagged_balls(self, status: int) -> List[BallId]:
        """All balls currently carrying the (non-zero) tag ``status``."""
        return [ball for ball, tag in self._status.items() if tag == status]

    # ------------------------------------------------------------- mutations
    def insert(self, ball: BallId, node: Optional[Node] = None) -> None:
        """Add a new ball at ``node`` (default: the root)."""
        if ball in self._pos:
            raise TreeError(f"ball {ball!r} is already in this view")
        target = self._topo.root if node is None else node
        self._topo.depth(target)  # validate node membership
        self._pos[ball] = target
        self._sorted_cache = None
        self._at.setdefault(target, set()).add(ball)
        self._adjust(target, +1)
        if nd.is_leaf(target):
            self._n_at_leaf += 1

    def remove(self, ball: BallId) -> None:
        """Drop ``ball`` from the view (Algorithm 1's ``Remove``)."""
        node = self.position(ball)
        del self._pos[ball]
        self._status.pop(ball, None)
        self._sorted_cache = None
        holders = self._at[node]
        holders.discard(ball)
        if not holders:
            del self._at[node]
        self._adjust(node, -1)
        if nd.is_leaf(node):
            self._n_at_leaf -= 1

    def place(self, ball: BallId, node: Node) -> None:
        """Move ``ball`` to ``node`` (Algorithm 1's ``UpdateNode``).

        No capacity check is performed: round-2 synchronization must be
        able to adopt any announced position, even one that transiently
        over-fills a subtree in this view (see the module docstring).
        """
        if self.position(ball) == node:
            return
        status = self._status.get(ball, 0)
        self.remove(ball)
        self.insert(ball, node)
        if status:
            self._status[ball] = status

    def _adjust(self, node: Node, delta: int) -> None:
        """Add ``delta`` to the subtree counts of ``node`` and its ancestors."""
        is_leaf_ball = nd.is_leaf(node)
        topo = self._topo
        current = node
        while True:
            self._count[current] = self._count.get(current, 0) + delta
            if not self._count[current]:
                del self._count[current]
            if is_leaf_ball:
                self._leaf_occ[current] = self._leaf_occ.get(current, 0) + delta
                if not self._leaf_occ[current]:
                    del self._leaf_occ[current]
            if current == topo.root:
                return
            current = topo.parent(current)

    # ------------------------------------------------------------- capacities
    def subtree_balls(self, node: Node) -> int:
        """Number of balls in the subtree rooted at ``node``."""
        return self._count.get(node, 0)

    def raw_remaining_capacity(self, node: Node) -> int:
        """Leaves minus balls in ``node``'s subtree; may be negative (ghosts)."""
        return nd.span(node) - self._count.get(node, 0)

    def remaining_capacity(self, node: Node) -> int:
        """Algorithm 1's ``RemainingCapacity``, clamped at zero."""
        free = nd.span(node) - self._count.get(node, 0)
        return free if free > 0 else 0

    def leaf_balls(self, node: Node) -> int:
        """Number of balls positioned *at leaves* within ``node``'s subtree."""
        return self._leaf_occ.get(node, 0)

    def free_leaves(self, node: Node) -> int:
        """Leaves of ``node``'s subtree not currently holding a ball."""
        free = nd.span(node) - self._leaf_occ.get(node, 0)
        return free if free > 0 else 0

    def kth_free_leaf(self, node: Node, k: int) -> Node:
        """The ``k``-th (0-based, left-to-right) unoccupied leaf under ``node``.

        Used by the deterministic rank policies.  O(height) via the
        leaf-occupancy counts.
        """
        if k < 0 or k >= self.free_leaves(node):
            raise TreeError(
                f"no {k}-th free leaf under {node}: only "
                f"{self.free_leaves(node)} free"
            )
        current = node
        remaining = k
        while not nd.is_leaf(current):
            left, right = nd.children(current)
            free_left = self.free_leaves(left)
            if remaining < free_left:
                current = left
            else:
                remaining -= free_left
                current = right
        return current

    # ------------------------------------------------------------- aggregates
    def all_at_leaves(self) -> bool:
        """Termination test of Algorithm 1 line 29: every ball is at a leaf."""
        return self._n_at_leaf == len(self._pos)

    def balls_at_leaves(self) -> int:
        """How many balls are currently positioned at leaves."""
        return self._n_at_leaf

    def max_inner_occupancy(self) -> int:
        """``bmax``: the largest number of balls at any single inner node."""
        best = 0
        for node, holders in self._at.items():
            if not nd.is_leaf(node) and len(holders) > best:
                best = len(holders)
        return best

    def occupied_inner_nodes(self) -> Iterator[Tuple[Node, int]]:
        """Yield ``(node, occupancy)`` for inner nodes holding balls."""
        for node, holders in self._at.items():
            if not nd.is_leaf(node) and holders:
                yield node, len(holders)

    def max_path_population(self) -> int:
        """Largest total of inner-node balls along any root-to-leaf-parent path.

        This is the quantity Lemmas 9-10 drain: the number of balls sitting
        on a fixed path ``pi``.  Computed by pushing occupancies down the
        occupied part of the tree in O(occupied nodes * height).
        """
        best = 0
        for node, occupancy in self.occupied_inner_nodes():
            total = occupancy
            current = node
            while current != self._topo.root:
                current = self._topo.parent(current)
                total += len(self._at.get(current, ()))
            if total > best:
                best = total
        return best

    def occupancy_by_depth(self) -> Dict[int, int]:
        """Total balls per tree depth (diagnostic for the figures)."""
        histogram: Dict[int, int] = {}
        for node, holders in self._at.items():
            depth = self._topo.depth(node)
            histogram[depth] = histogram.get(depth, 0) + len(holders)
        return histogram

    # ------------------------------------------------------- copy/fingerprint
    def copy(self) -> "LocalTreeView":
        """Deep copy sharing only the immutable topology."""
        clone = LocalTreeView(self._topo)
        clone._pos = dict(self._pos)
        clone._count = dict(self._count)
        clone._leaf_occ = dict(self._leaf_occ)
        clone._at = {node: set(holders) for node, holders in self._at.items()}
        clone._status = dict(self._status)
        clone._n_at_leaf = self._n_at_leaf
        return clone

    def snapshot(self) -> Tuple[Tuple[BallId, Node], ...]:
        """Canonical immutable snapshot of all positions (sorted by ball)."""
        return tuple(sorted(self._pos.items(), key=lambda item: repr(item[0])))

    def state_set(self) -> Tuple[frozenset, frozenset]:
        """Positions *and* lifecycle tags — the view's full identity.

        Two views with identical positions but different lifecycle
        knowledge (one heard a termination announcement, the other only
        simulated the ball there) behave differently on future silence,
        so equivalence-class merging must key on both.
        """
        return (frozenset(self._pos.items()), frozenset(self._status.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalTreeView):
            return NotImplemented
        return (
            self._topo.n == other._topo.n
            and self._pos == other._pos
            and self._status == other._status
        )

    def __repr__(self) -> str:
        return (
            f"LocalTreeView(n={self._topo.n}, balls={len(self._pos)}, "
            f"at_leaves={self._n_at_leaf})"
        )
