"""Array-indexed topology accessors for the columnar simulation kernel.

:class:`LocalTreeView` keys every per-node quantity by the interval tuple
of the node, which costs a tuple hash per lookup.  The columnar engine
(:mod:`repro.core.columnar`) instead addresses nodes by a dense integer
index into flat lists, which turns the hot loops of a round — capacity
lookups during path choice, subtree-count updates during movement — into
plain list indexing.

:class:`TopologyArrays` is the bridge: a frozen, shared-per-run encoding
of one :class:`~repro.tree.topology.Topology` as parallel lists in DFS
preorder.  It carries no per-run state; ball positions and subtree counts
live in the engine that uses it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tree import node as nd
from repro.tree.node import Node
from repro.tree.topology import Topology


class TopologyArrays:
    """Flat-array encoding of a leaf tree's shape.

    Nodes are numbered 0..2n-2 in DFS preorder (the root is index 0).
    All attributes are parallel lists indexed by node number:

    * ``nodes[i]`` — the interval tuple of node ``i``;
    * ``left[i]`` / ``right[i]`` — child indices, ``-1`` for leaves;
    * ``parent[i]`` — parent index, ``-1`` for the root;
    * ``span[i]`` — leaves below node ``i`` (its total capacity);
    * ``depth[i]`` — distance from the root;
    * ``leaf_rank[i]`` — the name decided at leaf ``i``, ``-1`` for
      inner nodes;
    * ``mid[i]`` — the split rank between ``i``'s children (leaves keep
      their ``lo``), so descending toward a leaf rank is one comparison.

    ``index_of`` maps interval tuples back to indices for the boundary
    with tuple-keyed code.
    """

    __slots__ = (
        "topology",
        "n",
        "nodes",
        "index_of",
        "left",
        "right",
        "parent",
        "span",
        "depth",
        "leaf_rank",
        "mid",
        "root",
    )

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.n = topology.n
        nodes: List[Node] = topology.nodes()
        self.nodes = nodes
        index_of: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        self.index_of = index_of
        count = len(nodes)
        self.left = [-1] * count
        self.right = [-1] * count
        self.parent = [-1] * count
        self.span = [0] * count
        self.depth = [0] * count
        self.leaf_rank = [-1] * count
        self.mid = [0] * count
        for i, node in enumerate(nodes):
            lo, hi = node
            self.span[i] = hi - lo
            self.depth[i] = topology.depth(node)
            if hi - lo == 1:
                self.leaf_rank[i] = lo
                self.mid[i] = lo
            else:
                left, right = nd.children(node)
                li, ri = index_of[left], index_of[right]
                self.left[i] = li
                self.right[i] = ri
                self.parent[li] = i
                self.parent[ri] = i
                self.mid[i] = left[1]
        self.root = index_of[topology.root]

    def leaf_index(self, rank: int) -> int:
        """The node index of the leaf deciding name ``rank``."""
        return self.index_of[nd.leaf_node(rank)]

    def path_to_rank(self, start: int, rank: int) -> List[int]:
        """Node indices from ``start`` down to the leaf of ``rank``.

        The array twin of :meth:`Topology.path_to_leaf`: one comparison
        against ``mid`` per level instead of interval arithmetic.
        """
        lo, hi = self.nodes[start]
        if not lo <= rank < hi:
            raise ValueError(f"leaf rank {rank} is outside node {self.nodes[start]}")
        path = [start]
        node = start
        while self.span[node] != 1:
            node = self.left[node] if rank < self.mid[node] else self.right[node]
            path.append(node)
        return path

    def path_to_kth_free_leaf(
        self, start: int, k: int, leaf_occ: List[int]
    ) -> List[int]:
        """Path from ``start`` to its ``k``-th free leaf (left to right).

        ``leaf_occ`` is a caller-owned column of subtree leaf-occupancy
        counts indexed like :attr:`nodes` (the engines' per-view state).
        The array twin of :meth:`LocalTreeView.kth_free_leaf` — per-child
        free counts clamp at zero so ghost-overflowed views stay safe —
        plus the leftmost policy's fallback: with no free leaf below,
        aim at the subtree's leftmost leaf and let the movement rule
        park the ball.
        """
        span = self.span
        left = self.left
        right = self.right
        free = span[start] - leaf_occ[start]
        if free <= 0:
            return self.path_to_rank(start, self.nodes[start][0])
        node = start
        path = [node]
        remaining = k
        while left[node] != -1:
            lft = left[node]
            free_left = span[lft] - leaf_occ[lft]
            if free_left < 0:
                free_left = 0
            if remaining < free_left:
                node = lft
            else:
                remaining -= free_left
                node = right[node]
            path.append(node)
        return path
