"""Interval nodes of the virtual leaf tree.

A node is the half-open interval ``(lo, hi)`` of the leaf ranks below it.
The root of a tree with ``n`` leaves is ``(0, n)``; a leaf is any interval
of span 1.  Intervals are plain tuples: hashable, comparable, and cheap,
which matters because views keep dictionaries keyed by nodes.

The split rule gives the *left* child the larger half when the span is odd
(``mid = lo + ceil(span / 2)``), so for power-of-two ``n`` the tree is the
perfectly balanced tree of the paper, and for other ``n`` it stays balanced
within one level.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import TreeError

#: A tree node: the half-open interval of leaf ranks in its subtree.
Node = Tuple[int, int]


def make_root(n: int) -> Node:
    """Return the root node of a tree with ``n`` leaves."""
    if n < 1:
        raise TreeError(f"a tree needs at least one leaf, got n={n}")
    return (0, n)


def span(node: Node) -> int:
    """Number of leaves in ``node``'s subtree (its total capacity)."""
    return node[1] - node[0]


def is_leaf(node: Node) -> bool:
    """True if ``node`` is a leaf (spans exactly one name)."""
    return node[1] - node[0] == 1


def leaf_rank(node: Node) -> int:
    """The left-to-right rank of a leaf — the name a ball decides there."""
    if not is_leaf(node):
        raise TreeError(f"{node} is not a leaf")
    return node[0]


def leaf_node(rank: int) -> Node:
    """The leaf node for a given name rank."""
    if rank < 0:
        raise TreeError(f"leaf rank must be non-negative, got {rank}")
    return (rank, rank + 1)


def midpoint(node: Node) -> int:
    """The split point between ``node``'s children (left gets the ceil half)."""
    lo, hi = node
    return lo + (hi - lo + 1) // 2


def left_child(node: Node) -> Node:
    """Left child interval; raises :class:`TreeError` on a leaf."""
    if is_leaf(node):
        raise TreeError(f"leaf {node} has no children")
    return (node[0], midpoint(node))


def right_child(node: Node) -> Node:
    """Right child interval; raises :class:`TreeError` on a leaf."""
    if is_leaf(node):
        raise TreeError(f"leaf {node} has no children")
    return (midpoint(node), node[1])


def children(node: Node) -> Tuple[Node, Node]:
    """Both children as ``(left, right)``."""
    lo, hi = node
    if hi - lo == 1:
        raise TreeError(f"leaf {node} has no children")
    mid = lo + (hi - lo + 1) // 2
    return (lo, mid), (mid, hi)


def contains(ancestor: Node, descendant: Node) -> bool:
    """True if ``descendant``'s interval lies within ``ancestor``'s.

    Every node contains itself.  Because children partition their parent,
    interval containment coincides with tree ancestry.
    """
    return ancestor[0] <= descendant[0] and descendant[1] <= ancestor[1]


def child_towards(node: Node, rank: int) -> Node:
    """The child of ``node`` whose subtree contains leaf ``rank``."""
    lo, hi = node
    if not lo <= rank < hi:
        raise TreeError(f"leaf rank {rank} is outside node {node}")
    left, right = children(node)
    return left if rank < left[1] else right
