"""ASCII rendering of local trees, used to reproduce Figures 1, 2 and 4.

The renderer prints one line per (non-empty) node, indented by depth, with
the node interval, its remaining capacity, and the balls sitting exactly
there.  Empty subtrees are summarized so big trees stay readable.
"""

from __future__ import annotations

from typing import List

from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.node import Node


def _label(view: LocalTreeView, node: Node) -> str:
    holders = sorted(view.balls_at(node), key=repr)
    tag = "leaf" if nd.is_leaf(node) else "node"
    parts = [
        f"{tag} [{node[0]},{node[1]})",
        f"cap={view.raw_remaining_capacity(node)}",
    ]
    if holders:
        shown = ", ".join(str(ball) for ball in holders[:8])
        if len(holders) > 8:
            shown += f", ... (+{len(holders) - 8})"
        parts.append(f"balls={{{shown}}}")
    return "  ".join(parts)


def render_view(
    view: LocalTreeView, *, skip_empty: bool = True, max_depth: int = 32
) -> str:
    """Render ``view`` as an indented ASCII tree.

    Parameters
    ----------
    skip_empty:
        Collapse subtrees containing no balls into a one-line summary.
    max_depth:
        Truncate below this depth (protects against huge renders).
    """
    topo = view.topology
    lines: List[str] = []

    def visit(node: Node, depth: int) -> None:
        indent = "  " * depth
        in_subtree = view.subtree_balls(node)
        if skip_empty and in_subtree == 0:
            lines.append(f"{indent}({nd.span(node)} empty leaves under [{node[0]},{node[1]}))")
            return
        lines.append(indent + _label(view, node))
        if nd.is_leaf(node) or depth >= max_depth:
            return
        left, right = nd.children(node)
        visit(left, depth + 1)
        visit(right, depth + 1)

    visit(topo.root, 0)
    return "\n".join(lines)


def render_path(view: LocalTreeView, leaf_rank: int) -> str:
    """Render the root path to ``leaf_rank``'s parent with gateway capacities.

    Reproduces the Figure 4 view: each line shows one path node, the balls
    stuck there, and the remaining capacity of its gateway subtree (the
    child hanging off the path).
    """
    topo = view.topology
    path = topo.path_to_leaf(topo.root, leaf_rank)
    lines = []
    for node in path[:-1]:  # stop at the leaf's parent
        left, right = nd.children(node)
        on_path = left if leaf_rank < left[1] else right
        gateway = right if on_path == left else left
        lines.append(
            f"depth {topo.depth(node):>2}  [{node[0]},{node[1]})  "
            f"balls_here={view.occupancy(node)}  "
            f"gateway=[{gateway[0]},{gateway[1]}) cap={view.raw_remaining_capacity(gateway)}"
        )
    return "\n".join(lines)
