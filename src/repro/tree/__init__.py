"""Virtual leaf-tree substrate (Section 4 of the paper).

The ``n`` target names are the leaves of a binary tree.  A node is the
half-open interval ``(lo, hi)`` of leaf ranks it spans, so the tree exists
implicitly for any ``n >= 1`` (the paper assumes a power of two; interval
splitting removes that restriction).  :class:`LocalTreeView` is one ball's
local copy of everyone's positions, with the capacity bookkeeping needed by
Algorithm 1, and :mod:`repro.tree.priority` implements the ``<R`` order of
Definition 1.
"""

from repro.tree.node import (
    Node,
    children,
    contains,
    is_leaf,
    leaf_node,
    leaf_rank,
    left_child,
    right_child,
    span,
)
from repro.tree.topology import Topology
from repro.tree.arrays import TopologyArrays
from repro.tree.local_view import LocalTreeView
from repro.tree.priority import priority_key, ordered_balls
from repro.tree.paths import (
    leftmost_free_leaf_path,
    path_to_leaf,
    random_capacity_path,
)
from repro.tree.render import render_view

__all__ = [
    "Node",
    "children",
    "contains",
    "is_leaf",
    "leaf_node",
    "leaf_rank",
    "left_child",
    "right_child",
    "span",
    "Topology",
    "TopologyArrays",
    "LocalTreeView",
    "priority_key",
    "ordered_balls",
    "path_to_leaf",
    "random_capacity_path",
    "leftmost_free_leaf_path",
    "render_view",
]
