"""The ``<R`` priority order of Definition 1.

``bi <R bj`` iff ``bi`` is *deeper* in the tree, or at equal depth has the
smaller label.  Smaller under ``<R`` means higher priority: downstream
balls move first, so space reserved below them can never be displaced by
balls higher up (Section 4, "Collisions, priority").

Labels must be mutually comparable within one run (all ints, or all
strings); this matches the comparison-based model of the paper.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.tree.local_view import LocalTreeView

BallId = Hashable


def priority_key(view: LocalTreeView, ball: BallId) -> Tuple[int, BallId]:
    """Sort key realizing ``<R``: ascending order == descending priority.

    Depth is negated so deeper balls sort first; ties break by label.
    """
    return (-view.depth_of(ball), ball)


def ordered_balls(view: LocalTreeView) -> List[BallId]:
    """Algorithm 1's ``OrderedBalls()``: all balls sorted by ``<R``."""
    return sorted(view.balls(), key=lambda ball: priority_key(view, ball))


def higher_priority(view: LocalTreeView, first: BallId, second: BallId) -> bool:
    """True iff ``first <R second`` (``first`` moves before ``second``)."""
    return priority_key(view, first) < priority_key(view, second)
