"""Precomputed shape of the virtual leaf tree for a given ``n``.

The tree itself is implicit in the interval arithmetic of
:mod:`repro.tree.node`; :class:`Topology` caches the derived quantities the
algorithms need in inner loops — depths, parents, and the node list — and
provides path helpers.  One topology is shared by every view of a run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, List, Tuple

from repro.errors import TreeError
from repro.tree import node as nd
from repro.tree.node import Node


@lru_cache(maxsize=16)
def cached_topology(n: int) -> "Topology":
    """A process-wide shared :class:`Topology` for ``n`` leaves.

    Topologies are immutable after construction, so every run of the same
    size can share one instance; building the node dictionaries is a
    measurable per-trial cost at sweep sizes (tens of milliseconds at
    n=2^12, ~1s at 2^17).  The LRU bound keeps deep sweeps from holding
    every size alive (n=2^17 is ~100 MB of node dictionaries): 16 entries
    cover the eight EXP-T2 ``--scale deep`` sizes (2^10..2^17) *plus* the
    small sizes interleaved by smoke tables without thrashing, which a
    bound of 8 did not.  Batch trials of one size always hit the same
    entry — executors chunk same-cell trials per worker precisely so this
    cache (per process) is built once per size, not once per trial.
    """
    return Topology(n)


class Topology:
    """The static shape of a leaf tree with ``n`` leaves.

    Instances are immutable after construction and safe to share across
    views and processes.  All per-node lookups are O(1) dictionary hits.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise TreeError(f"a topology needs at least one leaf, got n={n}")
        self._n = n
        self._root = nd.make_root(n)
        self._depth: Dict[Node, int] = {}
        self._parent: Dict[Node, Node] = {}
        self._nodes: List[Node] = []
        stack: List[Tuple[Node, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            self._depth[node] = depth
            self._nodes.append(node)
            if not nd.is_leaf(node):
                left, right = nd.children(node)
                self._parent[left] = node
                self._parent[right] = node
                stack.append((right, depth + 1))
                stack.append((left, depth + 1))
        self._height = max(self._depth.values())
        self._arrays = None  # lazily built TopologyArrays, shared per run

    def arrays(self):
        """The flat-array encoding of this shape (cached).

        See :class:`repro.tree.arrays.TopologyArrays`; built on first use
        so tuple-keyed callers never pay for it.
        """
        if self._arrays is None:
            from repro.tree.arrays import TopologyArrays

            self._arrays = TopologyArrays(self)
        return self._arrays

    # ------------------------------------------------------------------ shape
    @property
    def n(self) -> int:
        """Number of leaves (the size of the target namespace)."""
        return self._n

    @property
    def root(self) -> Node:
        """The root node ``(0, n)``."""
        return self._root

    @property
    def height(self) -> int:
        """Depth of the deepest leaf (``log2 n`` for power-of-two ``n``)."""
        return self._height

    @property
    def node_count(self) -> int:
        """Total number of tree nodes (``2n - 1``)."""
        return len(self._nodes)

    def nodes(self) -> List[Node]:
        """All nodes in DFS preorder (a fresh copy)."""
        return list(self._nodes)

    def leaves(self) -> Iterator[Node]:
        """All leaf nodes, left to right."""
        return (nd.leaf_node(rank) for rank in range(self._n))

    # ------------------------------------------------------------ node lookups
    def is_node(self, node: Node) -> bool:
        """True if ``node`` is a node of this tree."""
        return node in self._depth

    def depth(self, node: Node) -> int:
        """Depth of ``node`` (root is 0)."""
        try:
            return self._depth[node]
        except KeyError:
            raise TreeError(f"{node} is not a node of a {self._n}-leaf tree") from None

    def parent(self, node: Node) -> Node:
        """Parent of ``node``; raises :class:`TreeError` at the root."""
        try:
            return self._parent[node]
        except KeyError:
            if node == self._root:
                raise TreeError("the root has no parent") from None
            raise TreeError(f"{node} is not a node of a {self._n}-leaf tree") from None

    def sibling(self, node: Node) -> Node:
        """The other child of ``node``'s parent (a *gateway* in Section 5.2)."""
        left, right = nd.children(self.parent(node))
        return right if node == left else left

    # ----------------------------------------------------------------- paths
    def ancestors(self, node: Node) -> List[Node]:
        """Nodes from ``node`` up to and including the root."""
        self.depth(node)  # validate membership
        chain = [node]
        while chain[-1] != self._root:
            chain.append(self._parent[chain[-1]])
        return chain

    def path_down(self, ancestor: Node, descendant: Node) -> List[Node]:
        """The node sequence from ``ancestor`` down to ``descendant`` inclusive."""
        if not nd.contains(ancestor, descendant):
            raise TreeError(f"{ancestor} does not contain {descendant}")
        path = [ancestor]
        node = ancestor
        while node != descendant:
            node = nd.child_towards(node, descendant[0])
            # Stop early once the descendant interval is reached exactly;
            # ``child_towards`` always narrows, so this loop terminates.
            path.append(node)
            if nd.contains(descendant, node):
                break
        if path[-1] != descendant:
            raise TreeError(f"{descendant} is not a node of a {self._n}-leaf tree")
        return path

    def path_to_leaf(self, start: Node, rank: int) -> Tuple[Node, ...]:
        """Root-ward validated path from ``start`` to leaf ``rank`` (inclusive)."""
        return tuple(self.path_down(start, nd.leaf_node(rank)))
