"""Candidate-path construction (Algorithm 1, lines 4-10, and Section 6).

A candidate path is the tuple of nodes from a ball's current position down
to a leaf.  The randomized rule weights each left/right choice by the
remaining capacities of the two subtrees, exactly as ``RandomCoin`` on
line 6; deterministic rules target a specific leaf.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.errors import TreeError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.node import Node
from repro.tree.topology import Topology


def random_capacity_path(
    view: LocalTreeView, start: Node, rng: random.Random
) -> Tuple[Node, ...]:
    """Random root-ward path weighted by remaining capacity.

    At each inner node the left child is taken with probability
    ``cap(left) / (cap(left) + cap(right))`` using clamped capacities.  If
    ghosts make both children look full, the side with the larger *raw*
    residual is taken (ties go left): the subsequent movement rule stops
    the ball safely wherever real capacity runs out, so this fallback only
    affects liveness for one phase, never safety.
    """
    path = [start]
    current = start
    while not nd.is_leaf(current):
        left, right = nd.children(current)
        cap_left = view.remaining_capacity(left)
        cap_right = view.remaining_capacity(right)
        total = cap_left + cap_right
        if total <= 0:
            raw_left = view.raw_remaining_capacity(left)
            raw_right = view.raw_remaining_capacity(right)
            current = left if raw_left >= raw_right else right
        elif rng.random() < cap_left / total:
            current = left
        else:
            current = right
        path.append(current)
    return tuple(path)


def path_to_leaf(topology: Topology, start: Node, rank: int) -> Tuple[Node, ...]:
    """Deterministic path from ``start`` to the leaf named ``rank``."""
    if not start[0] <= rank < start[1]:
        raise TreeError(f"leaf {rank} is not below node {start}")
    return topology.path_to_leaf(start, rank)


def kth_free_leaf_path(
    view: LocalTreeView, start: Node, k: int
) -> Tuple[Node, ...]:
    """Path from ``start`` to its ``k``-th free leaf (rank policies)."""
    leaf = view.kth_free_leaf(start, k)
    return path_to_leaf(view.topology, start, nd.leaf_rank(leaf))


def leftmost_free_leaf_path(view: LocalTreeView, start: Node) -> Tuple[Node, ...]:
    """Path to the leftmost free leaf — the degenerate all-collide choice.

    With every ball using this rule the run reproduces Figure 2(a)'s
    pile-up and the linear deterministic-termination bound of Lemma 11.
    Falls back to the leftmost leaf when no leaf below is free.
    """
    if view.free_leaves(start) > 0:
        return kth_free_leaf_path(view, start, 0)
    return path_to_leaf(view.topology, start, start[0])
