"""Identifier types and helpers shared across the library.

The paper's processes carry unique, comparable labels from an unbounded
original namespace; target names are ranks ``0..n-1`` (we expose 0-based
slots; Section 3 of the paper uses ``1..m``, a constant shift).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Union

#: A process / ball identifier.  Any hashable, totally ordered value works
#: (the algorithms are comparison-based); ints and strings are both used in
#: the tests.
ProcessId = Union[int, str]

#: A decided name: the left-to-right rank of the leaf a ball terminates on.
Name = int

#: A communication-round index (0-based; round 0 is the init broadcast).
Round = int

#: A phase index (1-based, as in the paper; each phase is two rounds).
Phase = int


def sparse_ids(n: int, *, spacing: int = 97, offset: int = 10_000) -> List[int]:
    """Return ``n`` distinct ids spread over a large original namespace.

    Renaming is only interesting when original ids are sparse; benchmarks
    and examples use this helper so ids are far from ``0..n-1``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [offset + i * spacing for i in range(n)]


def string_ids(n: int, *, prefix: str = "srv") -> List[str]:
    """Return ``n`` distinct, sortable string ids like ``srv-0007``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    width = max(4, len(str(n)))
    return [f"{prefix}-{i:0{width}d}" for i in range(n)]


def require_distinct(ids: Sequence[ProcessId]) -> None:
    """Raise ``ValueError`` unless every id in ``ids`` is distinct."""
    seen = set()
    for pid in ids:
        if pid in seen:
            raise ValueError(f"duplicate process id: {pid!r}")
        seen.add(pid)


def interleave(*groups: Iterable[ProcessId]) -> List[ProcessId]:
    """Round-robin interleave id groups (used by adversarial schedules)."""
    result: List[ProcessId] = []
    iters = [iter(g) for g in groups]
    for chunk in itertools.zip_longest(*iters):
        result.extend(x for x in chunk if x is not None)
    return result
