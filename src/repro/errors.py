"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An algorithm, simulator, or experiment was configured inconsistently."""


class KernelUnsupported(ConfigurationError):
    """An explicitly requested simulation kernel cannot model the run.

    Raised by :func:`repro.sim.kernel.select_kernel` when the caller pins
    ``kernel="columnar"`` for a run the fast path rejects (a crashing
    adversary, a non-BiL algorithm, traces, ...).  With ``kernel="auto"``
    the same rejection silently falls back to the reference engine
    instead.
    """

    def __init__(self, kernel: str, reason: str) -> None:
        super().__init__(f"kernel {kernel!r} cannot run this simulation: {reason}")
        self.kernel = kernel
        self.reason = reason


class SimulationError(ReproError):
    """The simulator reached an invalid state (engine bug or misuse)."""


class ProtocolViolation(SimulationError):
    """A process broke the round protocol (e.g. sent after crashing)."""


class RoundLimitExceeded(SimulationError):
    """The simulation did not terminate within the configured round budget."""

    def __init__(self, limit: int, alive: int) -> None:
        super().__init__(
            f"simulation exceeded the round limit of {limit} with {alive} "
            f"process(es) still running"
        )
        self.limit = limit
        self.alive = alive


class MonitorViolation(SimulationError):
    """A runtime invariant monitor caught a violated predicate.

    Raised by the monitored kernels (``monitor="cheap"``/``"full"``)
    when a per-round invariant fails — either immediately on a detected
    deadlock (the run can never progress, so spinning to the round limit
    only wastes time) or at the end of the run when the caller asked for
    ``check_invariants=True``.  ``violations`` carries the structured
    :class:`repro.monitor.invariants.Violation` records with round/ball
    attribution.
    """

    def __init__(self, violations) -> None:
        self.violations = list(violations)
        rendered = "; ".join(v.render() for v in self.violations[:4])
        extra = len(self.violations) - 4
        if extra > 0:
            rendered += f"; ... and {extra} more"
        super().__init__(
            f"{len(self.violations)} invariant violation(s): {rendered}"
        )


class SpecViolation(ReproError):
    """A renaming correctness property (validity/uniqueness/termination) failed.

    Raised by :mod:`repro.sim.checker` when a run's decisions violate the
    renaming specification of Section 3 of the paper.
    """


class TreeError(ReproError):
    """An operation on the virtual leaf tree was invalid."""


class CapacityError(TreeError):
    """A tree placement would exceed a subtree's leaf capacity."""


class UnknownBallError(TreeError):
    """An operation referenced a ball that is not present in the view."""


class ExperimentError(ReproError):
    """An experiment could not be assembled or executed."""


class UnknownExperimentError(ExperimentError):
    """The experiment registry has no entry for the requested id."""

    def __init__(self, experiment_id: str, known: list) -> None:
        super().__init__(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(sorted(known))}"
        )
        self.experiment_id = experiment_id
