"""Deterministic comparison-based renaming on the BiL substrate.

This is :class:`~repro.core.balls_into_leaves.BallProcess` with the
``rank`` path policy: each phase every ball deterministically aims at the
free leaf indexed by its label rank among the balls at its node.  It is
correct for the same reason Algorithm 1 is (Theorem 1 never invokes
randomness), terminates in one phase without failures, and — being
deterministic and comparison-based — is subject to the Omega(log n)
lower bound of Chaudhuri-Herlihy-Tuttle: the sandwich and half-split
adversaries force it to keep re-colliding, which the separation
experiment measures.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from repro.core.balls_into_leaves import BallProcess, build_balls_into_leaves
from repro.core.config import BallsIntoLeavesConfig
from repro.core.views import ViewStore


def build_rank_descent(
    ids: Sequence[Hashable],
    *,
    seed: int = 0,
    view_mode: str = "shared",
    check_invariants: bool = False,
) -> Tuple[List[BallProcess], ViewStore]:
    """Create the deterministic rank-descent processes and their store."""
    config = BallsIntoLeavesConfig(
        path_policy="rank", view_mode=view_mode, check_invariants=check_invariants
    )
    return build_balls_into_leaves(ids, seed=seed, config=config)
