"""Deterministic comparators for the separation experiments.

* :mod:`repro.baselines.flood_consensus` — agree on the participant set
  by flooding for ``t + 1`` rounds, then rank: the classical linear-round
  approach via reliable broadcast/consensus ([6, 15], round complexity
  from [11]).
* :mod:`repro.baselines.rank_descent` — deterministic comparison-based
  renaming on the Balls-into-Leaves substrate (the ``rank`` path policy):
  our stand-in for the Chaudhuri-Herlihy-Tuttle style O(log n) algorithm,
  correct by Theorem 1's machinery and driven to repeated collisions by
  the sandwich/split adversaries.
"""

from repro.baselines.flood_consensus import FloodRenamingProcess, build_flood_renaming
from repro.baselines.rank_descent import build_rank_descent

__all__ = [
    "FloodRenamingProcess",
    "build_flood_renaming",
    "build_rank_descent",
]
