"""Synchronous crash-tolerant approximate agreement.

Section 2 of the paper discusses Okun's order-preserving renaming [19],
which reduces renaming to *approximate agreement*: processes hold real
values, repeatedly exchange them, and converge until all values are
within a target epsilon.  The relevant phenomenon — quoted by the paper —
is that "with few faults approximate agreement can be solved in constant
time" (the O(log f) early-deciding renaming of [3] builds on the same
fact).  This module provides the substrate so EXP-AA can measure exactly
that: convergence is geometric in crash-free rounds and each crash can
stall at most a bounded amount of progress.

The update rule is the classic midpoint rule: each round every process
broadcasts its value and replaces it by ``(min + max) / 2`` of the values
it received (its own included).  Under crash faults (no Byzantine
behaviour) every received value lies within the previous global interval,
so the interval never grows, and any crash-free round at least halves its
diameter (everyone then averages the *same* min/max into the same half).
"""

from __future__ import annotations

import math
from typing import Any, List, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.ids import ProcessId, require_distinct
from repro.sim.process import SyncProcess

#: Message tag for value broadcasts.
VALUE = "aa-value"


class ApproximateAgreementProcess(SyncProcess):
    """One participant of midpoint approximate agreement.

    Parameters
    ----------
    pid:
        Unique identifier.
    initial:
        The starting real value.
    rounds:
        How many exchange rounds to run before deciding the held value.
        Choosing ``ceil(log2(range / epsilon)) + f`` guarantees
        epsilon-agreement with at most ``f`` crashes (each crash can spoil
        at most one round's halving).
    """

    def __init__(self, pid: ProcessId, initial: float, *, rounds: int) -> None:
        super().__init__(pid)
        if rounds < 1:
            raise ConfigurationError(f"need at least one round, got {rounds}")
        self._value = float(initial)
        self._rounds = rounds
        self._history: List[float] = [float(initial)]

    @property
    def value(self) -> float:
        """The currently held value."""
        return self._value

    @property
    def history(self) -> List[float]:
        """Value held after each round (index 0 = initial)."""
        return list(self._history)

    def compose(self, round_no: int) -> Any:
        return (VALUE, self._value)

    def deliver(self, round_no: int, inbox: Mapping[ProcessId, Any]) -> None:
        received = [
            payload[1]
            for payload in inbox.values()
            if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == VALUE
        ]
        if received:
            self._value = (min(received) + max(received)) / 2.0
        self._history.append(self._value)
        if round_no >= self._rounds:
            self.decide(self._value)
            self.halt()


def build_approximate_agreement(
    ids: Sequence[ProcessId],
    initial_values: Sequence[float],
    *,
    rounds: int,
) -> List[ApproximateAgreementProcess]:
    """Create one process per (id, initial value) pair."""
    require_distinct(ids)
    if len(ids) != len(initial_values):
        raise ConfigurationError(
            f"{len(ids)} ids but {len(initial_values)} initial values"
        )
    if not ids:
        raise ConfigurationError("approximate agreement needs a participant")
    return [
        ApproximateAgreementProcess(pid, value, rounds=rounds)
        for pid, value in zip(ids, initial_values)
    ]


def seeded_rounds(n: int, crash_budget: int, *, epsilon: float = 1.0) -> int:
    """Round count for the seeded workload's ``n^2`` initial range."""
    return rounds_for(epsilon, float(max(1, n * n)), crash_budget)


def build_seeded_approx_agreement(
    ids: Sequence[ProcessId],
    *,
    seed: int = 0,
    crash_budget: int = 0,
    epsilon: float = 1.0,
) -> List[ApproximateAgreementProcess]:
    """The TrialSpec-rail workload: seed-derived inputs, derived rounds.

    Initial values are drawn uniformly from ``[0, n^2)`` on a stream
    derived from ``(seed, "approx-agreement")`` — independent of any
    process or adversary randomness — and the round count is
    :func:`seeded_rounds` for that range, so epsilon-agreement is
    guaranteed for up to ``crash_budget`` crashes.
    """
    from repro.sim.rng import derive_rng

    n = len(ids)
    rng = derive_rng(seed, "approx-agreement")
    initial = [rng.uniform(0.0, float(n * n)) for _ in range(n)]
    return build_approximate_agreement(
        ids, initial, rounds=seeded_rounds(n, crash_budget, epsilon=epsilon)
    )


def decision_diameter(decisions: Mapping[ProcessId, Any]) -> float:
    """Max minus min over the decided values (0 for a single value)."""
    values = [v for v in decisions.values() if v is not None]
    if not values:
        return 0.0
    return max(values) - min(values)


def rounds_for(epsilon: float, value_range: float, crash_budget: int) -> int:
    """The round count guaranteeing epsilon-agreement under the budget."""
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    halvings = max(1, math.ceil(math.log2(max(1.0, value_range / epsilon))))
    return halvings + max(0, crash_budget)
