"""Linear-round tight renaming by flooding the participant set.

Every process repeatedly broadcasts the set of ids it has heard of.  With
at most ``t`` crashes, some round among the first ``t + 1`` is *clean*
(crash-free); after a clean round every alive process holds the same set,
and the sets never change again (no new information exists).  Each process
then decides the rank of its own id in the final set.

This is the classical "agree on the set of existing ids" route the paper
cites as requiring linear round complexity [11]: with the default budget
``t = n - 1`` it runs ``n`` rounds regardless of actual failures — the
yardstick the sub-logarithmic algorithms are measured against.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.ids import ProcessId, require_distinct
from repro.sim.process import SyncProcess


class FloodRenamingProcess(SyncProcess):
    """One participant of the flooding renaming protocol.

    Parameters
    ----------
    pid:
        This process's original id.
    crash_budget:
        The ``t`` the protocol must tolerate; it floods for ``t + 1``
        rounds.  Correctness needs the simulator's budget to not exceed
        this value.
    """

    def __init__(self, pid: ProcessId, *, crash_budget: int) -> None:
        super().__init__(pid)
        if crash_budget < 0:
            raise ConfigurationError(f"crash budget must be >= 0, got {crash_budget}")
        self._rounds_needed = crash_budget + 1
        self._known: FrozenSet[ProcessId] = frozenset({pid})

    @property
    def known(self) -> FrozenSet[ProcessId]:
        """Ids heard of so far (monotonically growing)."""
        return self._known

    def compose(self, round_no: int) -> Any:
        return ("ids", self._known)

    def deliver(self, round_no: int, inbox: Mapping[ProcessId, Any]) -> None:
        union = set(self._known)
        for payload in inbox.values():
            if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "ids":
                union.update(payload[1])
        self._known = frozenset(union)
        if round_no >= self._rounds_needed:
            order = sorted(self._known)
            self.decide(order.index(self.pid))
            self.halt()


def build_flood_renaming(
    ids: Sequence[ProcessId], *, crash_budget: int
) -> List[FloodRenamingProcess]:
    """Create one flooding process per id."""
    require_distinct(ids)
    if not ids:
        raise ConfigurationError("renaming needs at least one participant")
    return [FloodRenamingProcess(pid, crash_budget=crash_budget) for pid in ids]
