"""Summary statistics over repeated trials."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TrialStats:
    """Distribution summary of one measured quantity across trials."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.2f} std={self.std:.2f} "
            f"min={self.minimum:g} p50={self.p50:g} p95={self.p95:g} max={self.maximum:g}"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float]) -> TrialStats:
    """Summarize a sample (raises on an empty one)."""
    if not values:
        raise ValueError("cannot summarize zero trials")
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return TrialStats(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=float(min(values)),
        p50=percentile(values, 50.0),
        p95=percentile(values, 95.0),
        maximum=float(max(values)),
    )


def fraction_within(values: Sequence[float], bound: float) -> float:
    """Fraction of trials at or below ``bound`` (empirical w.h.p. check)."""
    if not values:
        raise ValueError("cannot evaluate zero trials")
    return sum(1 for v in values if v <= bound) / len(values)
