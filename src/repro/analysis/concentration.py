"""The probability facts of Figure 3, made executable.

The paper's analysis rests on three facts about the binomial
distribution: two stochastic-dominance monotonicities (Facts 1 and 2) and
the Chernoff bound (Fact 3).  This module provides exact binomial
computations (pure Python, no scipy needed) so the test suite can verify
the facts numerically, plus the closed-form bounds of Lemmas 4 and 6 that
the experiments compare against measurements.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List


@lru_cache(maxsize=None)
def binomial_pmf(m: int, k: int, p: float) -> float:
    """Exact ``P[B(m, p) = k]``."""
    if not 0 <= k <= m:
        return 0.0
    if p <= 0.0:
        return 1.0 if k == 0 else 0.0
    if p >= 1.0:
        return 1.0 if k == m else 0.0
    log_pmf = (
        math.lgamma(m + 1)
        - math.lgamma(k + 1)
        - math.lgamma(m - k + 1)
        + k * math.log(p)
        + (m - k) * math.log(1.0 - p)
    )
    return math.exp(log_pmf)


def binomial_deviation_probability(m: int, p: float, x: float) -> float:
    """Exact ``P[|E[B(m, p)] - B(m, p)| > x]`` (the Figure 3 deviation)."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    mean = m * p
    total = 0.0
    for k in range(m + 1):
        if abs(mean - k) > x:
            total += binomial_pmf(m, k, p)
    return min(1.0, total)


def chernoff_deviation_bound(m: int, p: float, x: float) -> float:
    """Fact 3: ``P[|E[X] - X| > x] < exp(-x^2 / (2 m p (1 - p)))``."""
    if m <= 0 or p <= 0.0 or p >= 1.0:
        return 0.0 if x > 0 else 1.0
    variance_term = 2.0 * m * p * (1.0 - p)
    return math.exp(-(x * x) / variance_term)


def lemma4_bound(n: int, depth: int, c: float = 1.0) -> float:
    """Lemma 4's occupancy scale after phase 1: ``c * sqrt((n / 2^i) log n)``.

    The number of balls stuck at a depth-``i`` node in phase 2 exceeds
    this with probability below ``1/n^c``.
    """
    if n < 2:
        return 0.0
    subtree = n / (2**depth)
    return c * math.sqrt(max(0.0, subtree * math.log2(n)))


def lemma6_phase_budget(n: int, c2: float = 1.0) -> int:
    """Lemma 6's phase count: ``ceil(c2 * log log n)`` phases bring
    ``bmax`` down to ``O(log^2 n)``."""
    if n < 4:
        return 1
    return max(1, math.ceil(c2 * math.log2(max(2.0, math.log2(n)))))


def lemma6_occupancy_bound(n: int, c: float = 1.0) -> float:
    """The Lemma 6 target occupancy ``c^2 log^2 n``."""
    if n < 2:
        return 1.0
    log_n = math.log2(n)
    return c * c * log_n * log_n


def iterated_sqrt_trajectory(start: float, log_factor: float, steps: int) -> List[float]:
    """The recurrence of Lemma 6: ``x -> sqrt(x) * log_factor``, iterated.

    Models how fast the per-node occupancy bound contracts; experiments
    plot measurements against it.
    """
    values = [start]
    for _ in range(steps):
        values.append(math.sqrt(max(0.0, values[-1])) * log_factor)
    return values
