"""The execution timeline explorer: a trace rendered as SVG-in-HTML.

No plotting or templating libraries are available offline, so the
explorer emits a *self-contained* HTML document — inline CSS, one inline
SVG, zero JavaScript — that any browser renders as a process-lane
timeline:

* **x-axis** — rounds of the lock-step execution;
* **lanes** — one horizontal band per process (sorted by label), drawn
  while the process runs and fading out at its crash or halt round;
* **markers** — crash (red x), omission (orange o), naming (green
  diamond at the round a leaf name was decided), halt (black bar);
* **namespace band** — under the lanes, the evolving set of decided
  names per round, showing the (1+epsilon)-namespace fill in;
* **running strip** — the per-round running count from the ``round``
  events, so livelocks read as a flat non-zero tail.

Hover titles (SVG ``<title>`` elements, rendered as native tooltips)
carry the per-event detail, which keeps the document static and
reviewable as text — the acceptance path diffs explorer output in CI.

The input is any :class:`~repro.sim.trace.Trace`: a ``cheap`` columnar
trace (which adds per-round ``pos`` snapshots — currently unused by the
renderer but preserved in tooltips' favor), a ``cheap`` stacked
vectorized trace, or a ``full`` reference trace; the renderer consumes
only the shared event schema plus the cheap-mode ``name`` extras when
present, degrading gracefully when a mode lacks a kind.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import Trace

#: Geometry constants (pixels).  Lane rows scale with n, the round
#: columns with the trace length; everything else is fixed chrome.
_LANE_H = 18
_ROUND_W = 14
_LEFT = 110
_TOP = 48
_STRIP_H = 56
_GAP = 26

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #fafafa; color: #222; margin: 1.5em; }
h1 { font-size: 1.1em; } h2 { font-size: 0.95em; color: #555; }
table.meta { border-collapse: collapse; font-size: 0.85em; }
table.meta td { border: 1px solid #ddd; padding: 2px 8px; }
svg { background: #fff; border: 1px solid #ddd; }
.lane-even { fill: #eef3f8; } .lane-odd { fill: #f7fafc; }
.lane-dead { fill: #f2f2f2; }
.grid { stroke: #e3e3e3; stroke-width: 1; }
.axis { font-size: 10px; fill: #666; }
.label { font-size: 11px; fill: #333; }
.crash { stroke: #c0392b; stroke-width: 2; }
.omit { stroke: #e67e22; stroke-width: 2; fill: none; }
.name { fill: #27ae60; }
.halt { fill: #222; }
.run { fill: #2c5f8a; }
.ns { fill: #8e6fae; }
"""


def _lane_index(pids: List[Any]) -> Dict[Any, int]:
    return {pid: i for i, pid in enumerate(pids)}


def _collect(trace: Trace) -> Dict[str, Any]:
    """Index the trace by kind, discovering processes and round span."""
    crashes: List[Tuple[int, Any]] = []
    omits: List[Tuple[int, Any]] = []
    names: List[Tuple[int, Any, Any]] = []
    halts: List[Tuple[int, Any, Any]] = []
    rounds: List[Tuple[int, int, int, int]] = []  # (r, sent, crashes, running)
    pids = set()
    last_round = 0
    for event in trace:
        last_round = max(last_round, event.round_no)
        kind, data = event.kind, event.data
        if kind == "crash":
            crashes.append((event.round_no, data["pid"]))
            pids.add(data["pid"])
        elif kind == "omit":
            omits.append((event.round_no, data["pid"]))
            pids.add(data["pid"])
        elif kind == "name":
            names.append((event.round_no, data["pid"], data["name"]))
            pids.add(data["pid"])
        elif kind == "halt":
            halts.append((event.round_no, data["pid"], data["decision"]))
            pids.add(data["pid"])
        elif kind == "round":
            rounds.append(
                (
                    event.round_no,
                    data["sent"],
                    data["crashes"],
                    data["running"],
                )
            )
    return {
        "crashes": crashes,
        "omits": omits,
        "names": names,
        "halts": halts,
        "rounds": rounds,
        "pids": sorted(pids, key=repr),
        "last_round": last_round,
    }


def _x(round_no: int) -> float:
    """Center of a round column (rounds are 1-based)."""
    return _LEFT + (round_no - 0.5) * _ROUND_W


def _y(lane: int) -> float:
    """Center of a lane row."""
    return _TOP + (lane + 0.5) * _LANE_H


def _svg_timeline(indexed: Dict[str, Any], participants: List[Any]) -> str:
    """The SVG document body (lanes + markers + strips)."""
    pids = participants or indexed["pids"]
    lanes = _lane_index(pids)
    last_round = max(indexed["last_round"], 1)
    ended_at: Dict[Any, int] = {}
    for r, pid in indexed["crashes"]:
        ended_at[pid] = min(r, ended_at.get(pid, r))
    for r, pid, _ in indexed["halts"]:
        ended_at[pid] = min(r, ended_at.get(pid, r))

    width = _LEFT + last_round * _ROUND_W + 20
    lanes_h = len(pids) * _LANE_H
    ns_top = _TOP + lanes_h + _GAP
    strip_top = ns_top + _STRIP_H + _GAP
    height = strip_top + _STRIP_H + 30

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'font-family="ui-monospace, monospace">'
    ]
    # Lane backgrounds: running span in alternating blue, dead tail grey.
    for pid, lane in lanes.items():
        y0 = _TOP + lane * _LANE_H
        end = ended_at.get(pid, last_round)
        cls = "lane-even" if lane % 2 == 0 else "lane-odd"
        parts.append(
            f'<rect class="{cls}" x="{_LEFT}" y="{y0}" '
            f'width="{end * _ROUND_W}" height="{_LANE_H - 1}"/>'
        )
        if end < last_round:
            parts.append(
                f'<rect class="lane-dead" x="{_LEFT + end * _ROUND_W}" '
                f'y="{y0}" width="{(last_round - end) * _ROUND_W}" '
                f'height="{_LANE_H - 1}"/>'
            )
        parts.append(
            f'<text class="label" x="{_LEFT - 8}" y="{_y(lane) + 4}" '
            f'text-anchor="end">{escape(str(pid))}</text>'
        )
    # Round grid + axis ticks (every round if narrow, else every 5th).
    tick_every = 1 if last_round <= 30 else 5
    for r in range(1, last_round + 1):
        x = _LEFT + r * _ROUND_W
        parts.append(
            f'<line class="grid" x1="{x}" y1="{_TOP}" '
            f'x2="{x}" y2="{strip_top + _STRIP_H}"/>'
        )
        if r % tick_every == 0 or r == 1:
            parts.append(
                f'<text class="axis" x="{_x(r)}" y="{_TOP - 6}" '
                f'text-anchor="middle">{r}</text>'
            )
    parts.append(
        f'<text class="axis" x="{_LEFT}" y="{_TOP - 26}">'
        f"rounds →</text>"
    )
    # Markers.  Crash: red x.  Omit: orange circle.  Name: green diamond.
    # Halt: black bar at the lane's end.
    for r, pid in indexed["crashes"]:
        if pid not in lanes:
            continue
        x, y = _x(r), _y(lanes[pid])
        parts.append(
            f'<g><line class="crash" x1="{x - 4}" y1="{y - 4}" '
            f'x2="{x + 4}" y2="{y + 4}"/>'
            f'<line class="crash" x1="{x - 4}" y1="{y + 4}" '
            f'x2="{x + 4}" y2="{y - 4}"/>'
            f"<title>round {r}: {escape(str(pid))} crashed</title></g>"
        )
    for r, pid in indexed["omits"]:
        if pid not in lanes:
            continue
        x, y = _x(r), _y(lanes[pid])
        parts.append(
            f'<g><circle class="omit" cx="{x}" cy="{y}" r="4"/>'
            f"<title>round {r}: {escape(str(pid))} broadcast dropped"
            f"</title></g>"
        )
    for r, pid, name in indexed["names"]:
        if pid not in lanes:
            continue
        x, y = _x(r), _y(lanes[pid])
        parts.append(
            f'<g><path class="name" d="M {x} {y - 5} L {x + 5} {y} '
            f'L {x} {y + 5} L {x - 5} {y} Z"/>'
            f"<title>round {r}: {escape(str(pid))} decided name "
            f"{escape(str(name))}</title></g>"
        )
    for r, pid, decision in indexed["halts"]:
        if pid not in lanes:
            continue
        x, y = _x(r), _y(lanes[pid])
        parts.append(
            f'<g><rect class="halt" x="{x - 2}" y="{y - 7}" '
            f'width="4" height="14"/>'
            f"<title>round {r}: {escape(str(pid))} halted with name "
            f"{escape(str(decision))}</title></g>"
        )

    # Namespace band: cumulative decided-name count per round.
    named_by_round: Dict[int, int] = {}
    events = indexed["names"] or [(r, pid, d) for r, pid, d in indexed["halts"]]
    for r, _, _ in events:
        named_by_round[r] = named_by_round.get(r, 0) + 1
    total = len(pids) or 1
    parts.append(
        f'<text class="axis" x="{_LEFT - 8}" y="{ns_top + _STRIP_H / 2}" '
        f'text-anchor="end">named</text>'
    )
    cumulative = 0
    for r in range(1, last_round + 1):
        cumulative += named_by_round.get(r, 0)
        bar = _STRIP_H * cumulative / total
        parts.append(
            f'<g><rect class="ns" x="{_LEFT + (r - 1) * _ROUND_W + 1}" '
            f'y="{ns_top + _STRIP_H - bar}" '
            f'width="{_ROUND_W - 2}" height="{bar}"/>'
            f"<title>round {r}: {cumulative}/{total} named</title></g>"
        )

    # Running strip: per-round running count from the round events.
    parts.append(
        f'<text class="axis" x="{_LEFT - 8}" '
        f'y="{strip_top + _STRIP_H / 2}" text-anchor="end">running</text>'
    )
    peak = max((row[3] for row in indexed["rounds"]), default=0) or 1
    for r, sent, crash_count, running in indexed["rounds"]:
        bar = _STRIP_H * running / peak
        parts.append(
            f'<g><rect class="run" x="{_LEFT + (r - 1) * _ROUND_W + 1}" '
            f'y="{strip_top + _STRIP_H - bar}" '
            f'width="{_ROUND_W - 2}" height="{bar}"/>'
            f"<title>round {r}: {running} running, {sent} sent, "
            f"{crash_count} crashed</title></g>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _meta_table(meta: Dict[str, Any]) -> str:
    rows = "".join(
        f"<tr><td>{escape(str(key))}</td>"
        f"<td>{escape(str(meta[key]))}</td></tr>"
        for key in sorted(meta, key=str)
    )
    return f'<table class="meta">{rows}</table>' if rows else ""


def render_timeline(
    trace: Trace,
    *,
    title: str = "execution timeline",
    participants: Optional[List[Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Render a trace as a self-contained HTML timeline document.

    ``participants`` pins the lane set (and order is always sorted by
    repr); without it the lanes are the processes the trace mentions,
    which under-counts silent bystanders in short traces.
    """
    indexed = _collect(trace)
    lanes = sorted(participants, key=repr) if participants else indexed["pids"]
    svg = _svg_timeline(indexed, lanes)
    legend = (
        "<h2>legend: "
        '<span style="color:#c0392b">x crash</span> · '
        '<span style="color:#e67e22">o omission</span> · '
        '<span style="color:#27ae60">◆ named</span> · '
        "▍ halt · hover any marker for detail</h2>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html><head><meta charset="utf-8">'
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{escape(title)}</h1>"
        f"{_meta_table(meta or {})}"
        f"{legend}"
        f"{svg}"
        "</body></html>\n"
    )
