"""Probability facts, curve fitting, statistics, and report rendering.

Supports the experiment suite: :mod:`concentration` codifies the Figure 3
facts used throughout the paper's proofs (with exact binomial checks),
:mod:`fitting` decides empirically whether round counts grow like
``log log n``, ``log n`` or ``n``, :mod:`stats` summarizes trial
distributions, and :mod:`tables`/:mod:`ascii_plot` render the tables and
figures EXPERIMENTS.md records.
"""

from repro.analysis.concentration import (
    binomial_deviation_probability,
    binomial_pmf,
    chernoff_deviation_bound,
    lemma4_bound,
    lemma6_phase_budget,
)
from repro.analysis.fitting import FitResult, fit_growth_models, best_model
from repro.analysis.stats import TrialStats, summarize
from repro.analysis.tables import Table
from repro.analysis.ascii_plot import line_plot

__all__ = [
    "binomial_pmf",
    "binomial_deviation_probability",
    "chernoff_deviation_bound",
    "lemma4_bound",
    "lemma6_phase_budget",
    "FitResult",
    "fit_growth_models",
    "best_model",
    "TrialStats",
    "summarize",
    "Table",
    "line_plot",
]
