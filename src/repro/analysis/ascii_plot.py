"""Minimal ASCII line plots for experiment reports.

No plotting libraries are available offline; a character grid is enough
to show the *shape* of a curve (flat vs doubly-logarithmic vs linear),
which is what the reproduction judges.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKS = "*+ox#@%&"


def line_plot(
    series: Dict[str, Sequence[float]],
    *,
    xs: Sequence[float],
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more named series over shared ``xs`` on a text grid."""
    if not series:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} has {len(ys)} points for {len(xs)} xs")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(sorted(series.items())):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} in [{y_min:g}, {y_max:g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} in [{x_min:g}, {x_max:g}]")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(sorted(series))
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
