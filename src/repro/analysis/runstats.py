"""Aggregation over persisted jsonl runs: the ``repro stats`` verb.

``repro batch --out rows.jsonl`` (and ``hunt``/``tail``) persist one
JSON object per trial row, and ``--telemetry`` appends a trailing
``{"kind": "telemetry", ...}`` record with the run's per-stage timers.
This module reads those files back and summarizes them: per-cell trial
counts and round distributions, error/violation tallies, and the
telemetry stages summed across files — the quick "what did that sweep
do and where did the time go" view without re-running anything.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.errors import ReproError


def load_rows(path: str) -> List[Dict[str, Any]]:
    """All JSON objects of one jsonl file (blank lines skipped)."""
    rows: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ReproError(
                        f"{path}:{lineno}: not valid JSON ({error.msg})"
                    ) from None
                if isinstance(row, dict):
                    rows.append(row)
    except OSError as error:
        raise ReproError(f"cannot read {path}: {error}") from None
    return rows


def split_telemetry(
    rows: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """``(data_rows, telemetry_rows)`` partition of a jsonl file."""
    data: List[Dict[str, Any]] = []
    telemetry: List[Dict[str, Any]] = []
    for row in rows:
        (telemetry if row.get("kind") == "telemetry" else data).append(row)
    return data, telemetry


def _group_key(row: Dict[str, Any]) -> Tuple[str, ...]:
    """Cell coordinates of a row, using whichever keys it carries."""
    parts = []
    for key in ("experiment", "algorithm", "n", "adversary"):
        if key in row:
            parts.append(f"{key}={row[key]}")
    return tuple(parts) or ("(rows)",)


def trial_table(rows: Sequence[Dict[str, Any]]) -> Table:
    """Per-cell summary of rows that carry a numeric ``rounds`` field."""
    groups: Dict[Tuple[str, ...], List[Dict[str, Any]]] = {}
    for row in rows:
        if isinstance(row.get("rounds"), (int, float)):
            groups.setdefault(_group_key(row), []).append(row)
    table = Table(
        "trial rows",
        ["cell", "trials", "errors", "violations",
         "rounds mean", "rounds p95", "rounds max"],
    )
    for key in sorted(groups):
        cell_rows = groups[key]
        rounds = [float(row["rounds"]) for row in cell_rows]
        stats = summarize(rounds)
        errors = sum(1 for row in cell_rows if row.get("error"))
        violations = sum(len(row.get("violations") or ()) for row in cell_rows)
        table.add_row(
            " ".join(key), len(cell_rows), errors, violations,
            stats.mean, stats.p95, stats.maximum,
        )
    return table


def telemetry_table(telemetry_rows: Sequence[Dict[str, Any]]) -> Table:
    """Per-stage timers summed across every telemetry record."""
    stages: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for row in telemetry_rows:
        for stage, stats in (row.get("stages") or {}).items():
            if stage not in stages:
                stages[stage] = {"calls": 0, "seconds": 0.0}
                order.append(stage)
            stages[stage]["calls"] += stats.get("calls", 0)
            stages[stage]["seconds"] += stats.get("seconds", 0.0)
    total = sum(stats["seconds"] for stats in stages.values()) or 1.0
    table = Table(
        "telemetry stages",
        ["stage", "calls", "seconds", "share"],
        notes="wall-clock attribution of the instrumented stages; "
        "process-executor runs time the coordinating process only",
    )
    for stage in order:
        stats = stages[stage]
        table.add_row(
            stage,
            int(stats["calls"]),
            stats["seconds"],
            f"{100.0 * stats['seconds'] / total:.1f}%",
        )
    return table


def render_stats(paths: Sequence[str]) -> str:
    """The full ``repro stats`` report over one or more jsonl files."""
    sections: List[str] = []
    all_data: List[Dict[str, Any]] = []
    all_telemetry: List[Dict[str, Any]] = []
    for path in paths:
        data, telemetry = split_telemetry(load_rows(path))
        all_data.extend(data)
        all_telemetry.extend(telemetry)
        sections.append(
            f"{path}: {len(data)} data row(s), "
            f"{len(telemetry)} telemetry record(s)"
        )
    table = trial_table(all_data)
    if table.rows:
        sections.append("")
        sections.append(table.render().rstrip())
    if all_telemetry:
        sections.append("")
        sections.append(telemetry_table(all_telemetry).render().rstrip())
        elapsed = [
            row["elapsed"]
            for row in all_telemetry
            if isinstance(row.get("elapsed"), (int, float))
        ]
        if elapsed:
            sections.append(f"total run elapsed: {sum(elapsed):.2f}s")
    if not table.rows and not all_telemetry:
        sections.append("no trial rows or telemetry records found")
    return "\n".join(sections)
