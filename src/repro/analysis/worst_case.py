"""Worst-case comparison tables: mined schedules vs bundled adversaries.

The hunt's headline question is comparative: did the search synthesize
an adversary *worse* than every hand-written strategy on the same
(algorithm, n) cell?  This module renders that comparison as one ranked
:class:`~repro.analysis.tables.Table` shared by the ``hunt`` CLI verb
and the ``EXP-HUNT`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.tables import Table


@dataclass(frozen=True)
class WorstCaseEntry:
    """One adversary's worst observed trial on a cell."""

    label: str
    source: str  # "hunt" or "bundled"
    score: float
    rounds: int
    failures: int
    messages_sent: int
    trials: int
    error: Optional[str] = None


def beats_every_bundled(entries: Sequence[WorstCaseEntry]) -> bool:
    """True when some hunted entry strictly out-scores all bundled ones."""
    hunted = [e.score for e in entries if e.source == "hunt"]
    bundled = [e.score for e in entries if e.source == "bundled"]
    if not hunted or not bundled:
        return False
    return max(hunted) > max(bundled)


def worst_case_table(
    cell: str, objective: str, entries: Sequence[WorstCaseEntry]
) -> Table:
    """Rank adversaries by objective score, worst first.

    The winner gets a ``<- worst`` marker; the notes record whether the
    synthesized schedules beat the whole bundled gauntlet.
    """
    ranked = sorted(entries, key=lambda e: (-e.score, e.label))
    verdict = (
        "synthesized schedule beats every bundled adversary"
        if beats_every_bundled(entries)
        else "no synthesized schedule beats the bundled gauntlet"
    )
    table = Table(
        f"worst cases on {cell} (objective: {objective})",
        ["adversary", "source", "score", "rounds", "failures", "messages", "trials", ""],
        notes=verdict,
    )
    for i, entry in enumerate(ranked):
        table.add_row(
            entry.label,
            entry.source,
            entry.score,
            entry.rounds if entry.error is None else f"{entry.rounds} (aborted)",
            entry.failures,
            entry.messages_sent,
            entry.trials,
            "<- worst" if i == 0 else "",
        )
    return table
