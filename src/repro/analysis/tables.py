"""Plain-text tables for experiment reports (and CSV export)."""

from __future__ import annotations

import io
from typing import Any, List, Optional, Sequence


class Table:
    """A titled table of rows, rendered as aligned ASCII."""

    def __init__(
        self,
        title: str,
        headers: Sequence[str],
        *,
        notes: Optional[str] = None,
    ) -> None:
        self.title = title
        self.headers = list(headers)
        self.notes = notes
        self._rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are stringified (floats get 3 decimals)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has "
                f"{len(self.headers)} columns"
            )
        self._rows.append([self._format(cell) for cell in cells])

    @property
    def rows(self) -> List[List[str]]:
        """The formatted rows so far (a copy)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        out = io.StringIO()
        out.write(f"== {self.title} ==\n")
        out.write("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        out.write("\n")
        out.write("  ".join("-" * w for w in widths))
        out.write("\n")
        for row in self._rows:
            out.write("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
            out.write("\n")
        if self.notes:
            out.write(f"note: {self.notes}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """The table as CSV text (no quoting needed for our cell values)."""
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self._rows)
        return "\n".join(lines) + "\n"

    def row_dicts(self) -> List[dict]:
        """One ``{header: formatted cell}`` dict per row (JSONL export)."""
        return [dict(zip(self.headers, row)) for row in self._rows]

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def __str__(self) -> str:
        return self.render()
