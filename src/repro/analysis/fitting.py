"""Growth-model fitting for round-complexity measurements.

Given measured ``(n, rounds)`` pairs, fit ``rounds ~ a + b * g(n)`` for
the candidate growth functions the paper distinguishes —
``log log n`` (Theorem 2), ``log n`` (the deterministic lower bound),
``n`` (flooding), and constant — by least squares, and report which
candidate explains the data best.  Shape, not absolute constants, is what
the reproduction checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

#: Candidate growth functions g(n).
GROWTH_MODELS: Dict[str, Callable[[float], float]] = {
    "const": lambda n: 0.0,
    "loglog": lambda n: math.log2(max(2.0, math.log2(max(2.0, n)))),
    "log": lambda n: math.log2(max(1.0, n)),
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
}


@dataclass(frozen=True)
class FitResult:
    """A least-squares fit of ``y ~ intercept + slope * g(n)``."""

    model: str
    intercept: float
    slope: float
    r_squared: float
    rmse: float

    def predict(self, n: float) -> float:
        """The fitted value at ``n``."""
        return self.intercept + self.slope * GROWTH_MODELS[self.model](n)


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least squares for ``y = a + b x`` (pure Python)."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        return mean_y, 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return mean_y - slope * mean_x, slope


def fit_growth_models(
    ns: Sequence[float],
    ys: Sequence[float],
    models: Sequence[str] = ("const", "loglog", "log", "linear"),
) -> List[FitResult]:
    """Fit every candidate model and return results sorted best-first."""
    if len(ns) != len(ys):
        raise ValueError(f"got {len(ns)} sizes but {len(ys)} measurements")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit growth models")
    mean_y = sum(ys) / len(ys)
    total_ss = sum((y - mean_y) ** 2 for y in ys)
    results = []
    for model in models:
        transform = GROWTH_MODELS[model]
        xs = [transform(n) for n in ns]
        intercept, slope = _least_squares(xs, ys)
        residuals = [y - (intercept + slope * x) for x, y in zip(xs, ys)]
        residual_ss = sum(r * r for r in residuals)
        r_squared = 1.0 if total_ss == 0.0 else 1.0 - residual_ss / total_ss
        rmse = math.sqrt(residual_ss / len(ys))
        results.append(
            FitResult(
                model=model,
                intercept=intercept,
                slope=slope,
                r_squared=r_squared,
                rmse=rmse,
            )
        )
    return sorted(results, key=lambda fit: fit.rmse)


def best_model(ns: Sequence[float], ys: Sequence[float], **kwargs) -> FitResult:
    """The lowest-RMSE model among the candidates."""
    return fit_growth_models(ns, ys, **kwargs)[0]
