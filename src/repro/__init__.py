"""Balls-into-Leaves: sub-logarithmic tight renaming (PODC 2014), reproduced.

``n`` crash-prone processes, communicating in lock-step synchronous
rounds, assign themselves one-to-one to ``n`` names in ``O(log log n)``
rounds with high probability — exponentially faster than any deterministic
comparison-based algorithm.  This package implements the algorithm, its
early-terminating extension, the deterministic baselines, the adversaries,
and the full experiment suite reproducing every claim of the paper.

Quickstart::

    import repro

    run = repro.run_renaming("balls-into-leaves", repro.sparse_ids(64), seed=7)
    print(run.rounds, run.names)

See README.md and EXPERIMENTS.md for the full tour.
"""

from repro._version import __version__
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ExperimentError,
    KernelUnsupported,
    ProtocolViolation,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
    SpecViolation,
    TreeError,
    UnknownBallError,
)
from repro.ids import Name, ProcessId, sparse_ids, string_ids
from repro.sim import (
    ALGORITHMS,
    KERNEL_CHOICES,
    RenamingRun,
    RenamingSpec,
    Simulation,
    check_renaming,
    derive_rng,
    run_renaming,
    select_kernel,
)
from repro.adversary import (
    Adversary,
    HalfSplitAdversary,
    NoFailures,
    RandomCrashAdversary,
    SandwichAdversary,
    ScheduledAdversary,
    ScheduledCrash,
    TargetedPriorityAdversary,
)
from repro.core import BallsIntoLeavesConfig, BallProcess, build_balls_into_leaves
from repro.tree import LocalTreeView, Topology, render_view

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolViolation",
    "RoundLimitExceeded",
    "SpecViolation",
    "TreeError",
    "CapacityError",
    "UnknownBallError",
    "ExperimentError",
    "KernelUnsupported",
    # ids
    "ProcessId",
    "Name",
    "sparse_ids",
    "string_ids",
    # sim / runner
    "ALGORITHMS",
    "Simulation",
    "RenamingRun",
    "RenamingSpec",
    "check_renaming",
    "run_renaming",
    "derive_rng",
    "KERNEL_CHOICES",
    "select_kernel",
    # adversaries
    "Adversary",
    "NoFailures",
    "RandomCrashAdversary",
    "ScheduledAdversary",
    "ScheduledCrash",
    "TargetedPriorityAdversary",
    "SandwichAdversary",
    "HalfSplitAdversary",
    # core
    "BallsIntoLeavesConfig",
    "BallProcess",
    "build_balls_into_leaves",
    # tree
    "Topology",
    "LocalTreeView",
    "render_view",
]
