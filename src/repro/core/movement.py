"""Round processing of Algorithm 1: moving balls and synchronizing views.

:func:`apply_path_round` is lines 12-21 — iterate over all balls in ``<R``
priority order; a ball whose path was received follows its candidate path
while the *next* node still has remaining capacity and stops just above
the first full subtree (the prose semantics of Section 4, which Figure 2a
depicts); a silent ball has crashed and is removed.

:func:`apply_position_round` is lines 22-28 — adopt every announced
position and remove silent balls.

With ``lifecycle=True`` (the halt-on-name extension) both rounds run the
announced-termination rule of :mod:`repro.core.lifecycle`: a silent ball
is retained — its leaf slot stays reserved — **only** while its status is
``BallStatus.ANNOUNCED``, i.e. only if the ball itself broadcast the leaf
position it occupies.  A ball this view merely *simulated* onto a leaf
from a candidate path is still ``ACTIVE`` and its silence still means a
crash; retaining such path-simulated ghosts is the unsound
silence-at-leaf inference that deadlocked survivors (see lifecycle
module docstring).

Both functions are pure tree transformations shared by the faithful and
shared-view stores, so the two execution modes cannot diverge.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Sequence

from repro.errors import SimulationError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.priority import ordered_balls
from repro.core.lifecycle import BallStatus
from repro.core.messages import parse_path, parse_position

BallId = Hashable


def _movement_sequence(view: LocalTreeView, order: str) -> List[Hashable]:
    """Balls in the order they are simulated: ``<R`` or plain label order.

    ``"label"`` is the EXP-ABL ablation of Definition 1: capacity checks
    make any order safe, but only the depth-first order protects the
    space below already-descended balls.
    """
    if order == "priority":
        return ordered_balls(view)
    if order == "label":
        return sorted(view.balls())
    raise SimulationError(f"unknown movement order {order!r}")


def apply_path_round(
    view: LocalTreeView,
    inbox: Mapping[BallId, Any],
    *,
    check_invariants: bool = False,
    order: str = "priority",
    lifecycle: bool = False,
) -> None:
    """Apply one round-1 exchange of candidate paths to ``view`` in place.

    ``lifecycle`` enables the announced-termination rule of the
    halt-on-name extension: silence from a ball whose status is
    ``ANNOUNCED`` (it broadcast its leaf position and halted) keeps the
    ball — and its name slot — in place; silence from any other ball
    still means a crash.
    """
    for ball in _movement_sequence(view, order):
        payload = inbox.get(ball)
        path = parse_path(payload) if payload is not None else None
        if path is None:
            # Line 20: no path received.  An announced terminator is the
            # only ball whose silence is expected; anything else crashed.
            if lifecycle and view.status(ball) == BallStatus.ANNOUNCED:
                continue
            view.remove(ball)
            continue
        # A path broadcast proves the sender is still active (an
        # ANNOUNCED ball has halted and can never broadcast again).
        position = view.position(ball)
        destination = _descend(view, position, path)
        if destination != position:
            view.place(ball, destination)
    if check_invariants:
        assert_capacity_invariant(view)


def _descend(view: LocalTreeView, position: Any, path: Sequence[Any]) -> Any:
    """Follow ``path`` from ``position`` while the next subtree has room.

    ``path`` starts at the sender's own notion of its current node; for
    correct balls that equals ``position`` (Proposition 1).  Defensively,
    if the recorded position appears later along the path (a ghost whose
    stale path started above where this view placed it), the walk resumes
    from there; if the path does not contain the position at all, the ball
    stays put — safety over progress for inconsistent ghosts.
    """
    try:
        index = path.index(position)
    except ValueError:
        return position
    node = position
    for nxt in path[index + 1 :]:
        if view.remaining_capacity(nxt) > 0:
            node = nxt
        else:
            break
    return node


def apply_position_round(
    view: LocalTreeView,
    inbox: Mapping[BallId, Any],
    *,
    check_invariants: bool = False,
    lifecycle: bool = False,
) -> None:
    """Apply one round-2 position synchronization to ``view`` in place.

    With ``lifecycle=True``, adopting a position also advances the
    sender's status machine: a *leaf* announcement marks the ball
    ``ANNOUNCED`` (under halt-on-name it terminates in this very round,
    so all future silence is benign), any other announcement keeps it
    ``ACTIVE``.  Silent balls are retained only while ``ANNOUNCED``.
    """
    for ball in ordered_balls(view):
        payload = inbox.get(ball)
        announced = parse_position(payload) if payload is not None else None
        if announced is None:
            # Line 27: silence in round 2 also means a crash — unless the
            # ball already announced its leaf (a terminated name holder).
            if lifecycle and view.status(ball) == BallStatus.ANNOUNCED:
                continue
            view.remove(ball)
            continue
        if view.position(ball) != announced:
            view.place(ball, announced)
        if lifecycle:
            view.set_status(
                ball,
                BallStatus.ANNOUNCED if nd.is_leaf(announced) else BallStatus.ACTIVE,
            )
    if check_invariants:
        assert_capacity_invariant(view, allow_ghost_overflow=True)


def assert_capacity_invariant(
    view: LocalTreeView, *, allow_ghost_overflow: bool = False
) -> None:
    """Check Lemma 1 on ``view``: no subtree holds more balls than leaves.

    After a path round this must hold for the view's own ball population
    (the movement rule enforces it), with one precisely-accounted
    exception: *announced terminators*.  A holder that crashed while
    broadcasting its leaf announcement is retained only by the views
    that received it; every other view may legitimately re-use the leaf,
    and the announcement's adoption then over-fills it here.  The
    headroom granted is therefore exactly the number of ``ANNOUNCED``
    balls in each subtree — never a blanket waiver, so path-simulated
    ghosts (which stay ``ACTIVE``) get no allowance at all.

    After a position round, adopted ghost positions of still-active
    balls may transiently overflow too; callers pass
    ``allow_ghost_overflow=True`` and only the root total is checked.
    """
    total = len(view)
    if total > view.topology.n:
        raise SimulationError(
            f"view holds {total} balls but the tree has {view.topology.n} leaves"
        )
    if allow_ghost_overflow:
        return
    # Announced-terminator headroom, aggregated over ancestor chains.
    announced_below: Dict[Any, int] = {}
    announced_at: Dict[Any, int] = {}
    topology = view.topology
    for ball in view.tagged_balls(BallStatus.ANNOUNCED):
        node = view.position(ball)
        announced_at[node] = announced_at.get(node, 0) + 1
        current = node
        while True:
            announced_below[current] = announced_below.get(current, 0) + 1
            if current == topology.root:
                break
            current = topology.parent(current)
    for node, _occupancy in view.occupied_inner_nodes():
        if view.subtree_balls(node) > nd.span(node) + announced_below.get(node, 0):
            raise SimulationError(
                f"capacity invariant violated at {node}: "
                f"{view.subtree_balls(node)} balls in a {nd.span(node)}-leaf "
                f"subtree ({announced_below.get(node, 0)} announced)"
            )
    # A leaf holds at most one ball beyond its announced terminators.
    for ball in view.balls():
        position = view.position(ball)
        if nd.is_leaf(position) and view.occupancy(position) > 1 + announced_at.get(
            position, 0
        ):
            raise SimulationError(
                f"leaf {position} holds {view.occupancy(position)} balls "
                f"({announced_at.get(position, 0)} announced)"
            )
