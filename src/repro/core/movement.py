"""Round processing of Algorithm 1: moving balls and synchronizing views.

:func:`apply_path_round` is lines 12-21 — iterate over all balls in ``<R``
priority order; a ball whose path was received follows its candidate path
while the *next* node still has remaining capacity and stops just above
the first full subtree (the prose semantics of Section 4, which Figure 2a
depicts); a silent ball has crashed and is removed.

:func:`apply_position_round` is lines 22-28 — adopt every announced
position and remove silent balls.

Both functions are pure tree transformations shared by the faithful and
shared-view stores, so the two execution modes cannot diverge.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.errors import SimulationError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.priority import ordered_balls
from repro.core.messages import parse_path, parse_position

BallId = Hashable


def _movement_sequence(view: LocalTreeView, order: str):
    """Balls in the order they are simulated: ``<R`` or plain label order.

    ``"label"`` is the EXP-ABL ablation of Definition 1: capacity checks
    make any order safe, but only the depth-first order protects the
    space below already-descended balls.
    """
    if order == "priority":
        return ordered_balls(view)
    if order == "label":
        return sorted(view.balls())
    raise SimulationError(f"unknown movement order {order!r}")


def apply_path_round(
    view: LocalTreeView,
    inbox: Mapping[BallId, Any],
    *,
    check_invariants: bool = False,
    order: str = "priority",
    retain_silent_leaf_balls: bool = False,
) -> None:
    """Apply one round-1 exchange of candidate paths to ``view`` in place.

    ``retain_silent_leaf_balls`` is the "additional check" of the
    halt-on-name extension: a silent ball positioned at a leaf is a
    terminated (or crashed) name holder, so its slot stays reserved
    instead of being freed for reuse.
    """
    for ball in _movement_sequence(view, order):
        payload = inbox.get(ball)
        path = parse_path(payload) if payload is not None else None
        if path is None:
            # Line 20: no path received -> the ball crashed mid-phase
            # (or, with the halt-on-name extension, terminated at a leaf).
            if retain_silent_leaf_balls and nd.is_leaf(view.position(ball)):
                continue
            view.remove(ball)
            continue
        position = view.position(ball)
        destination = _descend(view, position, path)
        if destination != position:
            view.place(ball, destination)
    if check_invariants:
        # Retained silent leaf-holders behave like ghosts: a crashed
        # holder's leaf may legitimately be reused by a view that never
        # saw it, so the strict per-leaf check only applies without them.
        assert_capacity_invariant(
            view, allow_ghost_overflow=retain_silent_leaf_balls
        )


def _descend(view: LocalTreeView, position, path) -> Any:
    """Follow ``path`` from ``position`` while the next subtree has room.

    ``path`` starts at the sender's own notion of its current node; for
    correct balls that equals ``position`` (Proposition 1).  Defensively,
    if the recorded position appears later along the path (a ghost whose
    stale path started above where this view placed it), the walk resumes
    from there; if the path does not contain the position at all, the ball
    stays put — safety over progress for inconsistent ghosts.
    """
    try:
        index = path.index(position)
    except ValueError:
        return position
    node = position
    for nxt in path[index + 1 :]:
        if view.remaining_capacity(nxt) > 0:
            node = nxt
        else:
            break
    return node


def apply_position_round(
    view: LocalTreeView,
    inbox: Mapping[BallId, Any],
    *,
    check_invariants: bool = False,
    retain_silent_leaf_balls: bool = False,
) -> None:
    """Apply one round-2 position synchronization to ``view`` in place."""
    for ball in ordered_balls(view):
        payload = inbox.get(ball)
        announced = parse_position(payload) if payload is not None else None
        if announced is None:
            # Line 27: silence in round 2 also means a crash (or, with
            # the halt-on-name extension, termination at a leaf).
            if retain_silent_leaf_balls and nd.is_leaf(view.position(ball)):
                continue
            view.remove(ball)
            continue
        if view.position(ball) != announced:
            view.place(ball, announced)
    if check_invariants:
        assert_capacity_invariant(view, allow_ghost_overflow=True)


def assert_capacity_invariant(
    view: LocalTreeView, *, allow_ghost_overflow: bool = False
) -> None:
    """Check Lemma 1 on ``view``: no subtree holds more balls than leaves.

    After a path round this must hold for the view's own ball population
    (the movement rule enforces it).  After a position round, adopted
    ghost positions may transiently overflow; callers pass
    ``allow_ghost_overflow=True`` and only the root total is checked.
    """
    total = len(view)
    if total > view.topology.n:
        raise SimulationError(
            f"view holds {total} balls but the tree has {view.topology.n} leaves"
        )
    if allow_ghost_overflow:
        return
    for node, _occupancy in view.occupied_inner_nodes():
        if view.subtree_balls(node) > nd.span(node):
            raise SimulationError(
                f"capacity invariant violated at {node}: "
                f"{view.subtree_balls(node)} balls in a {nd.span(node)}-leaf subtree"
            )
    # Leaves can hold at most one ball each in a consistent view.
    for ball in view.balls():
        position = view.position(ball)
        if nd.is_leaf(position) and view.occupancy(position) > 1:
            raise SimulationError(
                f"leaf {position} holds {view.occupancy(position)} balls"
            )
