"""Configuration of a Balls-into-Leaves run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Known path-policy names (see :mod:`repro.core.policies`).
POLICIES = ("random", "hybrid", "rank", "leftmost", "random-unweighted")

#: Known view-store modes (see :mod:`repro.core.views`).
VIEW_MODES = ("faithful", "shared")

#: Known movement orders (see :mod:`repro.core.movement`).
MOVEMENT_ORDERS = ("priority", "label")


@dataclass(frozen=True)
class BallsIntoLeavesConfig:
    """Knobs shared by the algorithm's variants.

    Attributes
    ----------
    path_policy:
        ``"random"`` — Algorithm 1 as published (capacity-weighted random
        paths).  ``"hybrid"`` — the early-terminating extension of
        Section 6 (deterministic rank path in phase 1, random after).
        ``"rank"`` — deterministic rank paths every phase (the
        comparison-based deterministic baseline).  ``"leftmost"`` — every
        ball aims at the leftmost free leaf (degenerate worst case used by
        Lemma 11 / Figure 2a experiments).
    view_mode:
        ``"faithful"`` gives every ball a private tree, mirroring the
        paper exactly.  ``"shared"`` groups balls whose inbox histories
        are identical into equivalence classes sharing one tree — an exact
        optimization (validated in tests) that makes large-``n`` runs
        tractable in pure Python.
    check_invariants:
        Enable per-phase assertions of Lemma 1's capacity invariant inside
        the movement code.  Slow; meant for tests.
    movement_order:
        Ablation knob.  ``"priority"`` is Definition 1's ``<R`` order
        (deeper first, then label).  ``"label"`` processes balls by label
        alone, dropping the depth rule — safety survives (the capacity
        checks are order-independent) but downstream space is no longer
        protected, degrading liveness; EXP-ABL measures by how much.
    sync_positions:
        Ablation knob.  ``True`` runs Algorithm 1's round 2 (position
        re-synchronization).  ``False`` skips it, making phases one round
        long — and makes view divergence permanent under crashes, which
        breaks uniqueness.  EXP-ABL measures the violation rate; keep
        this on for anything but the ablation.
    halt_on_name:
        The per-ball termination extension the paper sketches ("allow a
        ball to terminate as soon as it reaches a leaf ... requires
        additional checks").  A ball halts right after announcing its
        leaf; the additional check is the announced-termination
        lifecycle of :mod:`repro.core.lifecycle`: views retain a silent
        ball — reserving its slot — only while its status is
        ``ANNOUNCED`` (the ball itself broadcast the leaf position it
        occupies).  Silence from any other ball, including one this
        view merely *simulated* onto a leaf from a crashed ball's
        candidate path, still means a crash and the ball is purged —
        retaining such path-simulated ghosts deadlocked survivors.
        Cuts message volume; the last ball's round count is unchanged.
    """

    path_policy: str = "random"
    view_mode: str = "shared"
    check_invariants: bool = False
    movement_order: str = "priority"
    sync_positions: bool = True
    halt_on_name: bool = False

    def __post_init__(self) -> None:
        if self.path_policy not in POLICIES:
            raise ConfigurationError(
                f"unknown path policy {self.path_policy!r}; choose from {POLICIES}"
            )
        if self.view_mode not in VIEW_MODES:
            raise ConfigurationError(
                f"unknown view mode {self.view_mode!r}; choose from {VIEW_MODES}"
            )
        if self.movement_order not in MOVEMENT_ORDERS:
            raise ConfigurationError(
                f"unknown movement order {self.movement_order!r}; "
                f"choose from {MOVEMENT_ORDERS}"
            )
        if self.halt_on_name and not self.sync_positions:
            raise ConfigurationError(
                "halt_on_name requires sync_positions: a ball must announce "
                "its leaf before going silent"
            )

    def with_policy(self, policy: str) -> "BallsIntoLeavesConfig":
        """A copy of this config with a different path policy."""
        return BallsIntoLeavesConfig(
            path_policy=policy,
            view_mode=self.view_mode,
            check_invariants=self.check_invariants,
            movement_order=self.movement_order,
            sync_positions=self.sync_positions,
            halt_on_name=self.halt_on_name,
        )
