"""Path policies: how a ball picks its candidate path each phase.

Algorithm 1's published rule is :class:`RandomPolicy` (capacity-weighted
random descent, lines 5-10).  Section 6's early-terminating extension is
:class:`HybridRankThenRandomPolicy`: a deterministic rank-indexed path in
phase 1, random thereafter.  :class:`RankPolicy` applies the rank rule in
*every* phase, yielding a deterministic comparison-based algorithm on the
same substrate (our stand-in for the CHT-style deterministic baseline).
:class:`LeftmostPolicy` aims every ball at the leftmost free leaf — the
maximum-contention degenerate case of Figure 2(a) and Lemma 11.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Hashable, Tuple

from repro.errors import ConfigurationError
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.node import Node
from repro.tree.paths import (
    kth_free_leaf_path,
    leftmost_free_leaf_path,
    path_to_leaf,
    random_capacity_path,
)

BallId = Hashable


class PathPolicy(ABC):
    """Strategy interface for candidate-path selection."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self,
        view: LocalTreeView,
        ball: BallId,
        phase: int,
        rng: random.Random,
    ) -> Tuple[Node, ...]:
        """Return the candidate path from ``ball``'s current node to a leaf."""

    def _start(self, view: LocalTreeView, ball: BallId) -> Node:
        return view.position(ball)


class RandomPolicy(PathPolicy):
    """Algorithm 1 lines 5-10: capacity-weighted random descent."""

    name = "random"

    def choose(
        self, view: LocalTreeView, ball: BallId, phase: int, rng: random.Random
    ) -> Tuple[Node, ...]:
        return random_capacity_path(view, self._start(view, ball), rng)


def rank_among_all(view: LocalTreeView, ball: BallId) -> int:
    """``ball``'s rank by label among *all* balls in the view (Section 6)."""
    return view.label_rank(ball)


def rank_at_node(view: LocalTreeView, ball: BallId) -> int:
    """``ball``'s rank by label among the balls at its own node."""
    here = sorted(view.balls_at(view.position(ball)))
    return here.index(ball)


class UnweightedRandomPolicy(PathPolicy):
    """Ablation: fair coins instead of capacity-weighted ones.

    Each inner-node choice flips an unweighted coin, only forced when one
    child is (apparently) full.  Safety is untouched — the movement rule
    still enforces capacities — but the choice distribution no longer
    matches the remaining capacities, so contention concentrates where
    space is scarce and rounds grow (EXP-ABL quantifies it).
    """

    name = "random-unweighted"

    def choose(
        self, view: LocalTreeView, ball: BallId, phase: int, rng: random.Random
    ) -> Tuple[Node, ...]:
        current = self._start(view, ball)
        path = [current]
        while not nd.is_leaf(current):
            left, right = nd.children(current)
            cap_left = view.remaining_capacity(left)
            cap_right = view.remaining_capacity(right)
            if cap_left <= 0 and cap_right <= 0:
                raw_left = view.raw_remaining_capacity(left)
                raw_right = view.raw_remaining_capacity(right)
                current = left if raw_left >= raw_right else right
            elif cap_left <= 0:
                current = right
            elif cap_right <= 0:
                current = left
            elif rng.random() < 0.5:
                current = left
            else:
                current = right
            path.append(current)
        return tuple(path)


class HybridRankThenRandomPolicy(PathPolicy):
    """Section 6's early-terminating rule.

    Phase 1: "ball bi constructs [its] path deterministically towards the
    leaf ranked by bi in OrderedBalls()" — with everyone at the root that
    is the rank of bi's label among all known labels.  Later phases run
    the original random rule.
    """

    name = "hybrid"

    def __init__(self) -> None:
        self._random = RandomPolicy()

    def choose(
        self, view: LocalTreeView, ball: BallId, phase: int, rng: random.Random
    ) -> Tuple[Node, ...]:
        if phase > 1:
            return self._random.choose(view, ball, phase, rng)
        start = self._start(view, ball)
        rank = rank_among_all(view, ball)
        # Clamp defensively: with ghosts the view may know more balls than
        # the subtree has leaves; the movement rule keeps safety regardless.
        target = min(start[0] + rank, start[1] - 1)
        return path_to_leaf(view.topology, start, target)


class RankPolicy(PathPolicy):
    """Deterministic rank-indexed paths every phase.

    A ball ranks itself among the balls at its current node and aims at
    that rank's free leaf below.  Failure-free this renames in one phase;
    under crash-induced view splits, collisions recur and are resolved by
    the shared movement rule.  Correctness is inherited from the substrate
    (Theorem 1 never uses randomness); round complexity is measured in the
    separation experiment.
    """

    name = "rank"

    def choose(
        self, view: LocalTreeView, ball: BallId, phase: int, rng: random.Random
    ) -> Tuple[Node, ...]:
        start = self._start(view, ball)
        if nd.is_leaf(start):
            return (start,)
        free = view.free_leaves(start)
        if free <= 0:
            return (start,)
        rank = min(rank_at_node(view, ball), free - 1)
        return kth_free_leaf_path(view, start, rank)


class LeftmostPolicy(PathPolicy):
    """Everyone aims at the leftmost free leaf: maximal contention."""

    name = "leftmost"

    def choose(
        self, view: LocalTreeView, ball: BallId, phase: int, rng: random.Random
    ) -> Tuple[Node, ...]:
        return leftmost_free_leaf_path(view, self._start(view, ball))


_POLICY_TYPES = {
    RandomPolicy.name: RandomPolicy,
    HybridRankThenRandomPolicy.name: HybridRankThenRandomPolicy,
    RankPolicy.name: RankPolicy,
    LeftmostPolicy.name: LeftmostPolicy,
    UnweightedRandomPolicy.name: UnweightedRandomPolicy,
}


def make_policy(name: str) -> PathPolicy:
    """Instantiate a policy by config name."""
    try:
        return _POLICY_TYPES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown path policy {name!r}; choose from {sorted(_POLICY_TYPES)}"
        ) from None
