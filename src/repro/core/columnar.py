"""Columnar Balls-into-Leaves: the whole population as flat arrays.

The lock-step engine materializes one :class:`BallProcess` per ball and
moves a dict inbox per delivery signature per round.  In a failure-free
run every broadcast is a position announcement over one shared view, so
none of that machinery is observable: the run is a deterministic function
of (ids, seed, policy, halt_on_name).  This module executes exactly that
function as array passes:

* per-ball state — node index, decided name, naming/halting rounds,
  halted flag — lives in parallel lists indexed by *label rank* (balls
  are numbered in sorted-label order, so ``<R`` tie-breaks and Section 6
  label ranks are plain integer comparisons);
* the one shared tree is two integer arrays over
  :class:`~repro.tree.arrays.TopologyArrays` node indices: subtree ball
  counts and subtree leaf-occupancy counts;
* a round is one pass to choose candidate paths (consuming each ball's
  private RNG stream exactly as :mod:`repro.core.policies` does, with
  the left/right probabilities memoized per node per round — the view is
  frozen while everyone composes, so thousands of balls crossing the
  same node share one division) and one pass to move balls in ``<R``
  order (bucketed by depth — a counting sort — instead of a comparison
  sort) under the capacity rule of
  :func:`repro.core.movement.apply_path_round`.

Bit-for-bit equivalence with the reference engine — same round counts,
same names, same per-round metrics — is asserted by the differential
suite in ``tests/sim/test_kernel_equivalence.py``; any behavioural change
here must keep that suite green.

Two engines share the layout:

* :class:`ColumnarBallsEngine` — the failure-free fast path: one shared
  view, no inboxes, no adversary bookkeeping.
* :class:`ColumnarCrashEngine` — the crash-capable extension: partial
  deliveries split receivers into *equivalence classes* (the flat-array
  twin of :class:`repro.core.views.SharedViewStore`), each class holding
  its own position/status/count columns; the announced-termination
  lifecycle of :mod:`repro.core.lifecycle` runs as a per-ball status
  byte, and crash masks are applied per round exactly as the lock-step
  simulator does.  Failure-free it degenerates to one class, but the
  per-round payload materialization for the adversary keeps the
  dedicated failure-free engine worthwhile.

Runs the fast path cannot model (traces, phase statistics, invariant
checking, uncertified adversary types) are rejected up front by
:func:`columnar_rejections` / the kernel and fall back to the reference
kernel.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.adversary.base import (
    AdversaryContext,
    FaultBudget,
    FaultPlan,
    clamp_fault_plan,
)
from repro.errors import ConfigurationError, SimulationError
from repro.ids import require_distinct
from repro.sim.rng import derive_seed
from repro.tree.topology import cached_topology
from repro.core.config import BallsIntoLeavesConfig
from repro.core.lifecycle import BallStatus
from repro.core.messages import hello_message, path_message, position_message

try:  # The C Mersenne-Twister base type.  random.Random passes integer
    # seeds straight through to it, so the streams are bit-identical to
    # derive_rng's — this only skips the Python subclass construction.
    from _random import Random as _MTRandom
except ImportError:  # pragma: no cover - CPython always has _random
    from random import Random as _MTRandom

BallId = Hashable

#: Path policies the columnar layout models (all of :data:`ALGORITHMS`'
#: BiL-based entries; ``random-unweighted`` is an ablation-only policy and
#: stays on the reference engine).
SUPPORTED_POLICIES = ("random", "hybrid", "rank", "leftmost")

_STAGE_INIT = 0
_STAGE_PATH = 1
_STAGE_POSITION = 2

#: Sentinels in the per-node probability memo: the rare both-children-full
#: fallback of ``random_capacity_path`` picks a side *without* consuming a
#: random draw, so it cannot be encoded as a comparison threshold.
_FORCE_LEFT = 2.0
_FORCE_RIGHT = -1.0


def columnar_rejections(config: BallsIntoLeavesConfig) -> List[str]:
    """Why this config cannot run on the columnar engine (empty = it can).

    The columnar layout assumes one shared view: any knob that makes
    per-ball views observable (invariant checking inside the movement
    code, non-``<R`` movement orders, one-round phases) keeps the run on
    the reference engine.
    """
    reasons = []
    if config.path_policy not in SUPPORTED_POLICIES:
        reasons.append(
            f"path policy {config.path_policy!r} is not columnar-modeled "
            f"(supported: {SUPPORTED_POLICIES})"
        )
    if config.view_mode != "shared":
        reasons.append(
            f"view mode {config.view_mode!r} asks for the reference "
            "engine's store (faithful = the paper-verbatim per-ball trees)"
        )
    if config.check_invariants:
        reasons.append("check_invariants instruments the reference movement code")
    if config.movement_order != "priority":
        reasons.append(
            f"movement order {config.movement_order!r} is an ablation of the "
            "reference engine"
        )
    if not config.sync_positions:
        reasons.append("one-round phases (sync_positions=False) are an ablation")
    return reasons


class ColumnarBallsEngine:
    """One failure-free Balls-into-Leaves run over flat arrays.

    Drive with :meth:`step` once per round; the engine sequences the
    init / path / position stages internally, exactly mirroring
    :class:`~repro.core.balls_into_leaves.BallProcess`.  After
    ``running_count`` drops to zero the per-ball arrays hold the run's
    outcome.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        *,
        seed: int = 0,
        policy: str = "random",
        halt_on_name: bool = False,
    ) -> None:
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        self.labels: List[BallId] = sorted(ids)
        n = len(self.labels)
        self.n = n
        self._seed = seed
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._arr = cached_topology(n).arrays()
        self._height = self._arr.topology.height
        node_count = len(self._arr.nodes)
        # Shared-view state: subtree ball counts, and (for the free-leaf
        # policies only — the random walk never asks) leaf-occupancy
        # counts.
        self._count = [0] * node_count
        self._track_leaf_occ = policy in ("rank", "leftmost")
        self._leaf_occ = [0] * node_count if self._track_leaf_occ else None
        self._n_at_leaf = 0
        # Per-round memo of the left-child probability at each inner node
        # (see _random_paths); the stamp makes invalidation O(1) per round.
        self._thr = [0.0] * node_count
        self._thr_stamp = [0] * node_count
        self._tick = 0
        # Per-ball state, indexed by label rank.
        self.pos: List[int] = [self._arr.root] * n
        self.halted: List[bool] = [False] * n
        self.decision: List[Optional[int]] = [None] * n
        self.round_named: List[Optional[int]] = [None] * n
        self.round_halted: List[Optional[int]] = [None] * n
        self._rngs: List[Optional[_MTRandom]] = [None] * n
        self.running_count = n
        self.phase = 0
        self._stage = _STAGE_INIT

    # ------------------------------------------------------------------ driving
    def step(self, round_no: int) -> None:
        """Execute one round (the caller owns the lock-step loop)."""
        if self._stage == _STAGE_INIT:
            self._init_round()
        elif self._stage == _STAGE_PATH:
            self._path_round(round_no)
        else:
            self._position_round(round_no)

    def positions(self) -> List[int]:
        """Every ball's current tree node, by label rank (trace capture)."""
        return list(self.pos)

    # -------------------------------------------------------- state interchange
    def export_state(self) -> Dict[str, Any]:
        """The protocol state as engine-independent plain lists.

        The same shape ``VectorizedCellEngine.export_trial_state`` emits
        (``-1`` sentinels for undecided/unnamed), so the splitting
        estimator can checkpoint on one engine and resume on the other.
        """
        return {
            "pos": list(self.pos),
            "halted": list(self.halted),
            "decision": [-1 if d is None else d for d in self.decision],
            "round_named": [-1 if r is None else r for r in self.round_named],
            "round_halted": [-1 if r is None else r for r in self.round_halted],
            "count": list(self._count),
            "leaf_occ": None if self._leaf_occ is None else list(self._leaf_occ),
            "n_at_leaf": self._n_at_leaf,
            "running": self.running_count,
        }

    def restore_state(self, state: Dict[str, Any], round_no: int) -> None:
        """Load an exported state as of completed round ``round_no`` ≥ 1.

        Per-ball RNG streams restart fresh from this engine's seed (pass
        the clone's derived seed at construction) — valid because the
        protocol is Markov given the exported state.
        """
        if round_no < 1:
            raise ConfigurationError(
                "restore_state resumes after a completed round (round_no >= 1)"
            )
        n = self.n
        self.pos = [int(p) for p in state["pos"]]
        self.halted = [bool(h) for h in state["halted"]]
        self.decision = [None if d < 0 else int(d) for d in state["decision"]]
        self.round_named = [
            None if r < 0 else int(r) for r in state["round_named"]
        ]
        self.round_halted = [
            None if r < 0 else int(r) for r in state["round_halted"]
        ]
        self._count = [int(c) for c in state["count"]]
        if self._track_leaf_occ:
            self._leaf_occ = [int(c) for c in state["leaf_occ"]]
        self._n_at_leaf = int(state["n_at_leaf"])
        self.running_count = int(state["running"])
        self._rngs = [None] * n
        # Round parity fixes the stage: after an odd round (init or
        # position) the next round is a path round, after an even one a
        # position round; phases count completed path/position pairs.
        if round_no % 2 == 1:
            self.phase = (round_no + 1) // 2
            self._stage = _STAGE_PATH
        else:
            self.phase = round_no // 2
            self._stage = _STAGE_POSITION

    # ------------------------------------------------------------------- rounds
    def _init_round(self) -> None:
        """Line 1: every ball announces its label; all start at the root."""
        root = self._arr.root
        self._count[root] = self.n
        if self._arr.span[root] == 1:  # n == 1: the root already is a leaf
            if self._track_leaf_occ:
                self._leaf_occ[root] = self.n
            self._n_at_leaf = self.n
        self.phase = 1
        self._stage = _STAGE_PATH

    def _path_round(self, round_no: int) -> None:
        """Phase round 1: exchange candidate paths, move in ``<R`` order."""
        paths = self._choose_paths()
        arr = self._arr
        span = arr.span
        parent = arr.parent
        depth = arr.depth
        leaf_rank = arr.leaf_rank
        count = self._count
        leaf_occ = self._leaf_occ
        pos = self.pos
        halted = self.halted
        round_named = self.round_named
        decision = self.decision
        # Algorithm 1 lines 12-21, in the <R order of Definition 1: deeper
        # balls first, ties by label — and label order is index order, so
        # depth buckets filled in index order realize the whole order.
        # Halted balls are silent leaf-holders (the halt-on-name retention
        # rule) and balls whose path never leaves their node are no-ops:
        # neither moves nor changes any capacity, so both drop out here.
        buckets: List[List[int]] = [[] for _ in range(self._height + 1)]
        for j in range(self.n):
            if halted[j]:
                continue
            if len(paths[j]) == 1:
                # Already at a leaf (or wedged by a full subtree): no
                # movement, but a leaf reached before this round's
                # broadcast still fixes the name now (the n=1 root-leaf
                # case arrives here).
                node = pos[j]
                if round_named[j] is None and span[node] == 1:
                    round_named[j] = round_no
                    decision[j] = leaf_rank[node]
                continue
            buckets[depth[pos[j]]].append(j)
        for bucket in reversed(buckets):
            for j in bucket:
                path = paths[j]
                node = path[0]
                k = 1
                length = len(path)
                while k < length:
                    nxt = path[k]
                    if span[nxt] - count[nxt] > 0:
                        node = nxt
                        k += 1
                    else:
                        break
                if k > 1:
                    # The ball only ever descends, so re-placing it adds
                    # one ball to exactly the subtrees strictly below its
                    # old node.
                    for i in range(1, k):
                        count[path[i]] += 1
                    pos[j] = node
                    if span[node] == 1:
                        self._n_at_leaf += 1
                        round_named[j] = round_no
                        decision[j] = leaf_rank[node]
                        if leaf_occ is not None:
                            walk = node
                            while walk != -1:
                                leaf_occ[walk] += 1
                                walk = parent[walk]
        self._stage = _STAGE_POSITION

    def _position_round(self, round_no: int) -> None:
        """Phase round 2: re-synchronize positions, terminate (lines 22-29).

        Failure-free, every announced position matches the shared view, so
        the tree is untouched; only the termination rule runs.
        """
        all_at_leaves = self._n_at_leaf == self.n
        if self._halt_on_name or all_at_leaves:
            span = self._arr.span
            leaf_rank = self._arr.leaf_rank
            for j in range(self.n):
                if self.halted[j]:
                    continue
                if all_at_leaves or span[self.pos[j]] == 1:
                    self.round_halted[j] = round_no
                    self.decision[j] = leaf_rank[self.pos[j]]
                    self.halted[j] = True
                    self.running_count -= 1
        if self.running_count:
            self.phase += 1
            self._stage = _STAGE_PATH

    # ------------------------------------------------------------- path choice
    def _choose_paths(self) -> List[Optional[List[int]]]:
        """Each running ball's candidate path against the pre-round view.

        All choices read the same snapshot (the lock-step engine composes
        every broadcast before any delivery), so the pass order is free;
        per-ball RNG streams keep randomized choices independent of it.
        """
        policy = self._policy
        if policy == "random" or (policy == "hybrid" and self.phase > 1):
            return self._random_paths()
        if policy == "hybrid":
            # Section 6, phase 1: ball bi aims at the leaf indexed by its
            # label rank (everyone is at the root, so the rank clamp of
            # the reference policy never binds failure-free).
            arr = self._arr
            paths: List[Optional[List[int]]] = []
            for j in range(self.n):
                if self.halted[j]:
                    paths.append(None)
                    continue
                lo, hi = arr.nodes[self.pos[j]]
                paths.append(arr.path_to_rank(self.pos[j], min(lo + j, hi - 1)))
            return paths
        if policy == "rank":
            return self._rank_paths()
        if policy == "leftmost":
            return [
                None
                if self.halted[j]
                else self._arr.path_to_kth_free_leaf(self.pos[j], 0, self._leaf_occ)
                for j in range(self.n)
            ]
        raise ConfigurationError(f"policy {policy!r} is not columnar-modeled")

    def _random_paths(self) -> List[Optional[List[int]]]:
        """Algorithm 1 lines 5-10 for every running ball.

        Consumes ``rng.random()`` exactly where
        :func:`repro.tree.paths.random_capacity_path` does, so the
        per-ball streams stay bit-identical to the reference engine's.
        The view is frozen for the whole pass, so the left-child
        probability of each inner node is computed once per round
        (stamp-memoized) no matter how many balls cross it.
        """
        arr = self._arr
        left = arr.left
        right = arr.right
        span = arr.span
        count = self._count
        thr = self._thr
        stamp = self._thr_stamp
        self._tick += 1
        tick = self._tick
        pos = self.pos
        halted = self.halted
        rngs = self._rngs
        labels = self.labels
        seed = self._seed
        paths: List[Optional[List[int]]] = [None] * self.n
        for j in range(self.n):
            if halted[j]:
                continue
            node = pos[j]
            path = [node]
            if left[node] != -1:
                rng = rngs[j]
                if rng is None:
                    rng = _MTRandom(derive_seed(seed, "ball", labels[j]))
                    rngs[j] = rng
                rng_random = rng.random
                append = path.append
                while True:
                    lft = left[node]
                    if lft == -1:
                        break
                    if stamp[node] != tick:
                        stamp[node] = tick
                        rgt = right[node]
                        cap_left = span[lft] - count[lft]
                        if cap_left < 0:
                            cap_left = 0
                        cap_right = span[rgt] - count[rgt]
                        if cap_right < 0:
                            cap_right = 0
                        total = cap_left + cap_right
                        if total <= 0:
                            # Both (apparently) full: larger raw residual
                            # wins, ties left, *no* draw is consumed.
                            thr[node] = (
                                _FORCE_LEFT
                                if span[lft] - count[lft]
                                >= span[rgt] - count[rgt]
                                else _FORCE_RIGHT
                            )
                        else:
                            thr[node] = cap_left / total
                    threshold = thr[node]
                    if threshold == _FORCE_LEFT:
                        node = lft
                    elif threshold == _FORCE_RIGHT:
                        node = right[node]
                    elif rng_random() < threshold:
                        node = lft
                    else:
                        node = right[node]
                    append(node)
            paths[j] = path
        return paths

    def _rank_paths(self) -> List[Optional[List[int]]]:
        """Deterministic rank paths: k-th free leaf by rank at the node."""
        arr = self._arr
        span = arr.span
        leaf_occ = self._leaf_occ
        # Balls at each node in label order (ball index *is* label rank),
        # flattened to one rank-at-node per ball so the pass stays O(n).
        at_node: Dict[int, List[int]] = {}
        for j in range(self.n):
            at_node.setdefault(self.pos[j], []).append(j)
        rank_at_node: List[int] = [0] * self.n
        for group in at_node.values():
            for rank, j in enumerate(group):
                rank_at_node[j] = rank
        paths: List[Optional[List[int]]] = []
        for j in range(self.n):
            if self.halted[j]:
                paths.append(None)
                continue
            start = self.pos[j]
            if span[start] == 1:
                paths.append([start])
                continue
            free = span[start] - leaf_occ[start]
            if free <= 0:
                paths.append([start])
                continue
            paths.append(
                self._arr.path_to_kth_free_leaf(
                    start, min(rank_at_node[j], free - 1), self._leaf_occ
                )
            )
        return paths

    # ---------------------------------------------------------------- reporting
    def last_round_named(self) -> Optional[int]:
        """Latest round at which any ball fixed its name."""
        rounds = [r for r in self.round_named if r is not None]
        return max(rounds) if rounds else None


# --------------------------------------------------------------------------
# Crash-capable engine: equivalence classes of receivers over flat arrays.
# --------------------------------------------------------------------------

_ACTIVE = int(BallStatus.ACTIVE)
_ANNOUNCED = int(BallStatus.ANNOUNCED)


class _ProcessIntrospectionUnavailable(Mapping):
    """Stands in for ``AdversaryContext.processes`` on the fast path.

    Columnar-certified adversaries plan from the public context fields
    only; any attempt to introspect process objects fails loudly instead
    of silently diverging from the reference engine.
    """

    def __init__(self, pids: Sequence[Hashable]) -> None:
        self._pids = tuple(pids)

    def _unavailable(self) -> SimulationError:
        return SimulationError(
            "the columnar kernel does not materialize process objects; "
            "adversaries that introspect ctx.processes must run on the "
            "reference kernel"
        )

    def __getitem__(self, key: Hashable) -> Any:
        raise self._unavailable()

    def __iter__(self) -> Any:
        # Iteration and len() would also diverge from the reference
        # engine's mapping (all processes, crashed included) — fail
        # loudly on every access, not just item lookup.
        raise self._unavailable()

    def __len__(self) -> int:
        raise self._unavailable()


class _ClassView:
    """One receiver equivalence class: a shared flat-array local tree.

    The array twin of one :class:`~repro.core.views._ViewClass` tree:
    ``pos[j]`` is ball ``j``'s node index (``-1`` = not in this view),
    ``status[j]`` its lifecycle byte, ``count``/``leaf_occ`` the subtree
    aggregates of :class:`~repro.tree.local_view.LocalTreeView`.
    """

    __slots__ = (
        "pos",
        "status",
        "count",
        "leaf_occ",
        "n_at_leaf",
        "present",
        "memo_tick",
        "thr",
        "rank_all",
        "rank_here",
    )

    def __init__(
        self,
        pos: List[int],
        status: bytearray,
        count: List[int],
        leaf_occ: Optional[List[int]],
        n_at_leaf: int,
        present: int,
    ) -> None:
        self.pos = pos
        self.status = status
        self.count = count
        self.leaf_occ = leaf_occ
        self.n_at_leaf = n_at_leaf
        self.present = present
        # Per-round compose caches (invalidated by the engine tick):
        # left-probability memo, present-prefix ranks, at-node ranks.
        self.memo_tick = -1
        self.thr: Optional[Dict[int, float]] = None
        self.rank_all: Optional[List[int]] = None
        self.rank_here: Optional[Dict[int, int]] = None

    def clone(self) -> "_ClassView":
        return _ClassView(
            list(self.pos),
            bytearray(self.status),
            list(self.count),
            None if self.leaf_occ is None else list(self.leaf_occ),
            self.n_at_leaf,
            self.present,
        )

    def merge_key(self) -> Tuple[Tuple[int, ...], bytes]:
        """The view's identity: positions *and* lifecycle bytes (the
        array twin of :meth:`LocalTreeView.state_set`)."""
        return (tuple(self.pos), bytes(self.status))


class ColumnarCrashEngine:
    """Balls-into-Leaves under a crashing adversary, as array passes.

    The lock-step round structure, the ``<R`` movement rule, the
    announced-termination lifecycle and the adversary protocol are all
    reproduced bit-for-bit (same per-ball RNG streams, same adversary
    context, same clamping) — asserted by the differential suite.
    Receivers sharing one inbox history share one :class:`_ClassView`;
    classes split on partial delivery and re-merge when their states
    coincide, mirroring :class:`~repro.core.views.SharedViewStore`.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        *,
        seed: int = 0,
        policy: str = "random",
        halt_on_name: bool = False,
        adversary: Any = None,
        crash_budget: int = 0,
    ) -> None:
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        self.labels: List[BallId] = sorted(ids)
        n = len(self.labels)
        self.n = n
        self._index_of: Dict[BallId, int] = {
            pid: j for j, pid in enumerate(self.labels)
        }
        # Adversary context exposes pids in *input* order (the reference
        # simulator's process-dict insertion order), not label order.
        self._input_order: List[int] = [self._index_of[pid] for pid in ids]
        self._seed = seed
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._adversary = adversary
        self._budget = crash_budget
        self._arr = cached_topology(n).arrays()
        self._height = self._arr.topology.height
        self._track_leaf_occ = policy in ("rank", "leftmost")
        self._tick = 0
        # Per-ball run state, indexed by label rank.
        self.halted: List[bool] = [False] * n
        self.crashed: List[bool] = [False] * n
        self.decision: List[Optional[int]] = [None] * n
        self.round_named: List[Optional[int]] = [None] * n
        self.round_halted: List[Optional[int]] = [None] * n
        #: Round each ball crashed (None = survived) — trace capture.
        self.round_crashed: List[Optional[int]] = [None] * n
        #: Ball indices whose broadcast was partially dropped by omission
        #: in the most recent round (trace capture; rebuilt every step).
        self.last_omitters: List[int] = []
        self._rngs: List[Optional[_MTRandom]] = [None] * n
        self._class_of: List[Optional[_ClassView]] = [None] * n
        self._crashed_count = 0
        self.running_count = n
        # Fault-plan state beyond crashes (omission is the only extra
        # family this engine applies; delay/corruption are rejected at
        # kernel selection and guarded against defensively below).
        self._fault_budget = (
            adversary.fault_budget() if adversary is not None else FaultBudget()
        )
        self._omissions_used = 0
        #: First round each sender index was silenced by omission.
        self.silenced_round: Dict[int, int] = {}
        # Metrics of the most recent round (read by the kernel).
        self.last_sent = 0
        self.last_delivered = 0
        self.last_crashes = 0
        self.last_alive = n
        self.last_running = n
        self.last_omissions = 0

    # ------------------------------------------------------------------ driving
    def step(self, round_no: int) -> None:
        """Execute one full round: compose, crash plan, deliver, halt."""
        labels = self.labels
        halted = self.halted
        crashed = self.crashed
        running = [
            j for j in self._input_order if not crashed[j] and not halted[j]
        ]
        running_set = set(running)
        self.last_sent = len(running)
        self._tick += 1

        if round_no == 1:
            kind = "init"
            paths: Optional[List[Optional[List[int]]]] = None
            announced: Optional[List[Optional[int]]] = None
        elif round_no % 2 == 0:
            kind = "path"
            paths = self._choose_paths(round_no, running)
            announced = None
        else:
            kind = "pos"
            paths = None
            announced = [None] * self.n
            for j in running:
                announced[j] = self._class_of[j].pos[j]

        fault = self._plan_faults(round_no, running, kind, paths, announced)
        plan = fault.crashes
        for victim in plan:
            j = self._index_of[victim]
            crashed[j] = True
            self.round_crashed[j] = round_no
            self._crashed_count += 1
            if not halted[j]:
                self.running_count -= 1
        self.last_crashes = len(plan)
        self.last_alive = self.n - self._crashed_count

        # Victims that composed this round (halted victims sent nothing).
        partial: List[Tuple[int, frozenset]] = [
            (self._index_of[victim], kept)
            for victim, kept in plan.items()
            if self._index_of[victim] in running_set
        ]
        # Omitting senders join the same partial-delivery machinery —
        # kept = everyone minus the dropped links — without being marked
        # crashed: they stay receivers, keep composing, and (clamp
        # guarantees the sender is never dropped to itself) always keep
        # their own ball in their own class view.  The purge test below
        # (``i in victim_idx and i not in sig``) then reproduces the
        # reference semantics bit-for-bit: masked receivers see silence
        # and treat the sender exactly like a crash.
        if fault.omissions:
            alive_pids = [
                labels[j] for j in self._input_order if not crashed[j]
            ]
            for sender in sorted(fault.omissions, key=repr):
                j = self._index_of[sender]
                if j not in running_set:
                    continue  # no broadcast this round, nothing to drop
                dropped = fault.omissions[sender]
                kept = frozenset(p for p in alive_pids if p not in dropped)
                partial.append((j, kept))
        victim_idx: Set[int] = {vi for vi, _kept in partial}
        base_count = self.last_sent - len(partial)

        receivers = [
            j for j in self._input_order if not crashed[j] and not halted[j]
        ]
        self.last_omissions = 0
        self.last_omitters = []
        if fault.omissions:
            receiver_pids = {labels[j] for j in receivers}
            for sender in fault.omissions:
                j = self._index_of[sender]
                if j not in running_set:
                    continue
                drops = len(fault.omissions[sender] & receiver_pids)
                if drops:
                    self.last_omissions += drops
                    self.silenced_round.setdefault(j, round_no)
                    self.last_omitters.append(j)
        # Distinct delivery camps: victims usually share receiver sets
        # (split-mode adversaries build two), so a receiver's signature
        # is a function of its camp-membership pattern, computed with
        # one membership test per distinct camp instead of per victim.
        camps: List[Tuple[frozenset, List[int]]] = []
        camp_index: Dict[frozenset, List[int]] = {}
        for vi, kept in partial:
            bucket = camp_index.get(kept)
            if bucket is None:
                bucket = []
                camp_index[kept] = bucket
                camps.append((kept, bucket))
            bucket.append(vi)
        empty_sig: frozenset = frozenset()
        sig_cache: Dict[Tuple[bool, ...], Tuple[frozenset, int]] = {}
        # Group receivers by (pre-class, delivery signature); every group
        # member shares one tree update, like the shared store's memo.
        groups: Dict[Tuple[int, frozenset], Tuple[Optional[_ClassView], frozenset, List[int]]] = {}
        delivered = 0
        for j in receivers:
            if camps:
                pid = labels[j]
                pattern = tuple(pid in kept for kept, _vis in camps)
                cached = sig_cache.get(pattern)
                if cached is None:
                    members: List[int] = []
                    for flag, (_kept, vis) in zip(pattern, camps):
                        if flag:
                            members.extend(vis)
                    cached = (frozenset(members), len(members))
                    sig_cache[pattern] = cached
                sig, sig_len = cached
            else:
                sig, sig_len = empty_sig, 0
            delivered += base_count + sig_len
            pre = self._class_of[j]
            # repro: lint-ok[D104] within-round grouping key; group order comes from the j loop, not the id
            key = (id(pre), sig)
            group = groups.get(key)
            if group is None:
                groups[key] = (pre, sig, [j])
            else:
                group[2].append(j)
        self.last_delivered = delivered

        merge_index: Dict[Tuple[Tuple[int, ...], bytes], _ClassView] = {}
        for pre, sig, members in groups.values():
            if kind == "init":
                post = self._initialize_class(running_set, victim_idx, sig)
            elif kind == "path":
                post = self._apply_path_round(
                    pre, paths, victim_idx, sig, round_no
                )
            else:
                post = self._apply_position_round(
                    pre, announced, victim_idx, sig
                )
            canonical = merge_index.setdefault(post.merge_key(), post)
            for j in members:
                self._class_of[j] = canonical

        if kind == "init":
            self.last_running = self.running_count
            return

        # Per-ball bookkeeping against the ball's own (post) view.  Not
        # for the hello round: a ball only notes its leaf after a path
        # or position exchange (BallProcess._note_leaf), so the n == 1
        # root-leaf is named in round 2, not round 1.
        arr = self._arr
        span = arr.span
        leaf_rank = arr.leaf_rank
        for j in receivers:
            cv = self._class_of[j]
            p = cv.pos[j]
            if self.round_named[j] is None and span[p] == 1:
                self.round_named[j] = round_no
                self.decision[j] = leaf_rank[p]
            if kind == "pos":
                if cv.n_at_leaf == cv.present or (
                    self._halt_on_name and span[p] == 1
                ):
                    self.round_halted[j] = round_no
                    self.decision[j] = leaf_rank[p]
                    halted[j] = True
                    self.running_count -= 1
        self.last_running = self.running_count

    def positions(self) -> List[int]:
        """Every ball's current tree node, by label rank (trace capture).

        A ball with no class view yet (crashed before its first delivery)
        reads as still at the root.
        """
        root = self._arr.root
        return [
            root if cv is None else cv.pos[j]
            for j, cv in enumerate(self._class_of)
        ]

    # -------------------------------------------------------------- adversary
    def _plan_faults(
        self,
        round_no: int,
        running: Sequence[int],
        kind: str,
        paths: Optional[List[Optional[List[int]]]],
        announced: Optional[List[Optional[int]]],
    ) -> FaultPlan:
        if self._adversary is None:
            return FaultPlan()
        remaining = self._budget - self._crashed_count
        if remaining <= 0 and tuple(self._adversary.fault_families()) == (
            "crash",
        ):
            # Crash-only adversaries are never consulted past the budget
            # (preserving the original engine's RNG consumption exactly);
            # fault adversaries still plan their other families.
            return FaultPlan()
        labels = self.labels
        nodes = self._arr.nodes
        outbox: Dict[BallId, Any] = {}
        if kind == "init":
            hello = hello_message()
            for j in running:
                outbox[labels[j]] = hello
        elif kind == "path":
            for j in running:
                outbox[labels[j]] = path_message(
                    tuple(nodes[i] for i in paths[j])
                )
        else:
            for j in running:
                outbox[labels[j]] = position_message(nodes[announced[j]])
        alive = [
            labels[j] for j in self._input_order if not self.crashed[j]
        ]
        crashed_pids = frozenset(
            labels[j] for j in range(self.n) if self.crashed[j]
        )
        budget = self._fault_budget
        ctx = AdversaryContext(
            round_no=round_no,
            running=tuple(labels[j] for j in running),
            alive=tuple(alive),
            outbox=outbox,
            crashed_so_far=crashed_pids,
            budget_remaining=max(0, remaining),
            processes=_ProcessIntrospectionUnavailable(alive),
            omission_budget_remaining=(
                None
                if budget.omissions is None
                else max(0, budget.omissions - self._omissions_used)
            ),
            delay_bound=budget.delay_bound,
            corrupted_so_far=frozenset(),
        )
        plan = self._adversary.plan_faults(ctx) or FaultPlan()
        clamped = clamp_fault_plan(
            plan,
            alive=alive,
            budget_remaining=max(0, remaining),
            budget=budget,
            omissions_used=self._omissions_used,
            corrupted_so_far=frozenset(),
        )
        if clamped.delays or clamped.corruptions:
            family = "delay" if clamped.delays else "corruption"
            raise SimulationError(
                f"the columnar engine cannot apply fault family {family!r}; "
                "kernel selection should have routed this adversary to the "
                "reference engine"
            )
        self._omissions_used += sum(
            len(dropped) for dropped in clamped.omissions.values()
        )
        return clamped

    # --------------------------------------------------------------- the rounds
    def _initialize_class(
        self, running_set: Set[int], victim_idx: Set[int], sig: frozenset
    ) -> "_ClassView":
        """Line 1: the heard-from senders at the root."""
        arr = self._arr
        node_count = len(arr.nodes)
        root = arr.root
        pos = [-1] * self.n
        members = 0
        for i in running_set:
            if i in victim_idx and i not in sig:
                continue
            pos[i] = root
            members += 1
        count = [0] * node_count
        count[root] = members
        leaf_occ = None
        n_at_leaf = 0
        if self._track_leaf_occ:
            leaf_occ = [0] * node_count
        if arr.span[root] == 1:  # n == 1: the root already is a leaf
            n_at_leaf = members
            if leaf_occ is not None:
                leaf_occ[root] = members
        return _ClassView(
            pos, bytearray(self.n), count, leaf_occ, n_at_leaf, members
        )

    def _apply_path_round(
        self,
        pre: "_ClassView",
        paths: Optional[List[Optional[List[int]]]],
        victim_idx: Set[int],
        sig: frozenset,
        round_no: int,
    ) -> "_ClassView":
        """Lines 12-21 on a copy of ``pre``, in the ``<R`` order.

        Mirrors :func:`repro.core.movement.apply_path_round`: silent
        balls are purged (or retained while ``ANNOUNCED``) interleaved
        with movers in priority order, and a delivered path is walked
        from *this view's* recorded position with the same defensive
        ghost handling as ``_descend``.
        """
        cv = pre.clone()
        arr = self._arr
        span = arr.span
        depth = arr.depth
        parent = arr.parent
        pos = cv.pos
        status = cv.status
        count = cv.count
        leaf_occ = cv.leaf_occ
        lifecycle = self._halt_on_name
        # Depth buckets realize <R (deeper first, ties by label = index).
        # No-ops — retained announced terminators and length-1 paths —
        # change no capacity and drop out of the ordered walk.
        buckets: List[List[int]] = [[] for _ in range(self._height + 1)]
        for i in range(self.n):
            p = pos[i]
            if p < 0:
                continue
            path = paths[i]
            if path is not None and (i not in victim_idx or i in sig):
                if len(path) > 1:
                    buckets[depth[p]].append(i)
            else:
                if lifecycle and status[i] == _ANNOUNCED:
                    continue
                buckets[depth[p]].append(i)
        for bucket in reversed(buckets):
            for i in bucket:
                path = paths[i]
                p = pos[i]
                if path is None or (i in victim_idx and i not in sig):
                    # Silent: crashed (ACTIVE silence).  Remove.
                    pos[i] = -1
                    status[i] = _ACTIVE
                    cv.present -= 1
                    walk = p
                    while walk != -1:
                        count[walk] -= 1
                        walk = parent[walk]
                    if span[p] == 1:
                        cv.n_at_leaf -= 1
                        if leaf_occ is not None:
                            walk = p
                            while walk != -1:
                                leaf_occ[walk] -= 1
                                walk = parent[walk]
                    continue
                # Mover: resume the walk from this view's position.
                if path[0] == p:
                    k0 = 0
                else:
                    try:
                        k0 = path.index(p)
                    except ValueError:
                        continue  # inconsistent ghost: stays put
                node = p
                k = k0
                length = len(path)
                while k + 1 < length:
                    nxt = path[k + 1]
                    if span[nxt] - count[nxt] > 0:
                        node = nxt
                        k += 1
                    else:
                        break
                if k > k0:
                    for m in range(k0 + 1, k + 1):
                        count[path[m]] += 1
                    pos[i] = node
                    if span[node] == 1:
                        cv.n_at_leaf += 1
                        if leaf_occ is not None:
                            walk = node
                            while walk != -1:
                                leaf_occ[walk] += 1
                                walk = parent[walk]
        return cv

    def _apply_position_round(
        self,
        pre: "_ClassView",
        announced: Optional[List[Optional[int]]],
        victim_idx: Set[int],
        sig: frozenset,
    ) -> "_ClassView":
        """Lines 22-28 on a copy of ``pre`` (order-independent)."""
        cv = pre.clone()
        arr = self._arr
        span = arr.span
        parent = arr.parent
        pos = cv.pos
        status = cv.status
        count = cv.count
        leaf_occ = cv.leaf_occ
        lifecycle = self._halt_on_name
        for i in range(self.n):
            p = pos[i]
            if p < 0:
                continue
            new = announced[i]
            if new is not None and (i not in victim_idx or i in sig):
                if new != p:
                    walk = p
                    while walk != -1:
                        count[walk] -= 1
                        walk = parent[walk]
                    walk = new
                    while walk != -1:
                        count[walk] += 1
                        walk = parent[walk]
                    if span[p] == 1:
                        cv.n_at_leaf -= 1
                    if span[new] == 1:
                        cv.n_at_leaf += 1
                    if leaf_occ is not None:
                        if span[p] == 1:
                            walk = p
                            while walk != -1:
                                leaf_occ[walk] -= 1
                                walk = parent[walk]
                        if span[new] == 1:
                            walk = new
                            while walk != -1:
                                leaf_occ[walk] += 1
                                walk = parent[walk]
                    pos[i] = new
                if lifecycle:
                    status[i] = _ANNOUNCED if span[new] == 1 else _ACTIVE
            else:
                if lifecycle and status[i] == _ANNOUNCED:
                    continue
                pos[i] = -1
                status[i] = _ACTIVE
                cv.present -= 1
                walk = p
                while walk != -1:
                    count[walk] -= 1
                    walk = parent[walk]
                if span[p] == 1:
                    cv.n_at_leaf -= 1
                    if leaf_occ is not None:
                        walk = p
                        while walk != -1:
                            leaf_occ[walk] -= 1
                            walk = parent[walk]
        return cv

    # ------------------------------------------------------------- path choice
    def _choose_paths(
        self, round_no: int, running: Sequence[int]
    ) -> List[Optional[List[int]]]:
        """Each running ball's candidate path against *its own* view."""
        phase = round_no // 2
        policy = self._policy
        paths: List[Optional[List[int]]] = [None] * self.n
        if policy == "random" or (policy == "hybrid" and phase > 1):
            for j in running:
                paths[j] = self._random_path(j)
            return paths
        if policy == "hybrid":
            # Section 6, phase 1: aim at the leaf indexed by the ball's
            # label rank among all balls its view knows.
            arr = self._arr
            for j in running:
                cv = self._class_of[j]
                rank = self._rank_among_all(cv, j)
                start = cv.pos[j]
                lo, hi = arr.nodes[start]
                paths[j] = arr.path_to_rank(start, min(lo + rank, hi - 1))
            return paths
        if policy == "rank":
            arr = self._arr
            span = arr.span
            for j in running:
                cv = self._class_of[j]
                start = cv.pos[j]
                if span[start] == 1:
                    paths[j] = [start]
                    continue
                free = span[start] - cv.leaf_occ[start]
                if free <= 0:
                    paths[j] = [start]
                    continue
                rank = self._rank_at_node(cv, j)
                paths[j] = arr.path_to_kth_free_leaf(
                    start, min(rank, free - 1), cv.leaf_occ
                )
            return paths
        if policy == "leftmost":
            arr = self._arr
            for j in running:
                cv = self._class_of[j]
                paths[j] = arr.path_to_kth_free_leaf(cv.pos[j], 0, cv.leaf_occ)
            return paths
        raise ConfigurationError(f"policy {policy!r} is not columnar-modeled")

    def _random_path(self, j: int) -> List[int]:
        """Algorithm 1 lines 5-10 for ball ``j`` in its own class view.

        Same RNG discipline as the failure-free engine; the per-node
        probability memo is scoped to (class, round) since capacities
        differ between classes.
        """
        arr = self._arr
        left = arr.left
        right = arr.right
        span = arr.span
        cv = self._class_of[j]
        count = cv.count
        if cv.memo_tick != self._tick:
            cv.memo_tick = self._tick
            cv.thr = {}
            cv.rank_all = None
            cv.rank_here = None
        thr = cv.thr
        node = cv.pos[j]
        path = [node]
        if left[node] == -1:
            return path
        rng = self._rngs[j]
        if rng is None:
            rng = _MTRandom(derive_seed(self._seed, "ball", self.labels[j]))
            self._rngs[j] = rng
        rng_random = rng.random
        append = path.append
        while True:
            lft = left[node]
            if lft == -1:
                break
            threshold = thr.get(node)
            if threshold is None:
                rgt = right[node]
                raw_left = span[lft] - count[lft]
                raw_right = span[rgt] - count[rgt]
                cap_left = raw_left if raw_left > 0 else 0
                cap_right = raw_right if raw_right > 0 else 0
                total = cap_left + cap_right
                if total <= 0:
                    threshold = (
                        _FORCE_LEFT if raw_left >= raw_right else _FORCE_RIGHT
                    )
                else:
                    threshold = cap_left / total
                thr[node] = threshold
            if threshold == _FORCE_LEFT:
                node = lft
            elif threshold == _FORCE_RIGHT:
                node = right[node]
            elif rng_random() < threshold:
                node = lft
            else:
                node = right[node]
            append(node)
        return path

    def _rank_among_all(self, cv: "_ClassView", j: int) -> int:
        """Label rank of ``j`` among the balls present in ``cv``."""
        if cv.memo_tick != self._tick or cv.rank_all is None:
            if cv.memo_tick != self._tick:
                cv.memo_tick = self._tick
                cv.thr = None
                cv.rank_here = None
            ranks = [0] * self.n
            seen = 0
            pos = cv.pos
            for i in range(self.n):
                ranks[i] = seen
                if pos[i] >= 0:
                    seen += 1
            cv.rank_all = ranks
        return cv.rank_all[j]

    def _rank_at_node(self, cv: "_ClassView", j: int) -> int:
        """Label rank of ``j`` among the balls at its own node in ``cv``."""
        if cv.memo_tick != self._tick or cv.rank_here is None:
            if cv.memo_tick != self._tick:
                cv.memo_tick = self._tick
                cv.thr = None
                cv.rank_all = None
            rank_here: Dict[int, int] = {}
            seen_at: Dict[int, int] = {}
            pos = cv.pos
            for i in range(self.n):
                p = pos[i]
                if p < 0:
                    continue
                rank = seen_at.get(p, 0)
                rank_here[i] = rank
                seen_at[p] = rank + 1
            cv.rank_here = rank_here
        return cv.rank_here[j]

    # ---------------------------------------------------------------- reporting
    def last_round_named(self) -> Optional[int]:
        """Latest round at which a *correct* ball fixed its name."""
        last: Optional[int] = None
        for j in range(self.n):
            if self.crashed[j]:
                continue
            named = self.round_named[j]
            if named is not None and (last is None or named > last):
                last = named
        return last

    def monitor_views(self) -> List[Tuple[List[int], bytes]]:
        """The distinct live local views in monitor form.

        One ``(pos, status)`` pair per equivalence class that still has a
        running member — the flat-array twin of iterating the running
        reference processes' ``LocalTreeView`` objects.
        """
        seen: Set[int] = set()
        views: List[Tuple[List[int], bytes]] = []
        for j in range(self.n):
            if self.crashed[j] or self.halted[j]:
                continue
            cv = self._class_of[j]
            # repro: lint-ok[D104] identity dedup; views keep deterministic j order
            if cv is None or id(cv) in seen:
                continue
            # repro: lint-ok[D104] identity dedup; views keep deterministic j order
            seen.add(id(cv))
            views.append((list(cv.pos), bytes(cv.status)))
        return views
