"""Columnar Balls-into-Leaves: the whole population as flat arrays.

The lock-step engine materializes one :class:`BallProcess` per ball and
moves a dict inbox per delivery signature per round.  In a failure-free
run every broadcast is a position announcement over one shared view, so
none of that machinery is observable: the run is a deterministic function
of (ids, seed, policy, halt_on_name).  This module executes exactly that
function as array passes:

* per-ball state — node index, decided name, naming/halting rounds,
  halted flag — lives in parallel lists indexed by *label rank* (balls
  are numbered in sorted-label order, so ``<R`` tie-breaks and Section 6
  label ranks are plain integer comparisons);
* the one shared tree is two integer arrays over
  :class:`~repro.tree.arrays.TopologyArrays` node indices: subtree ball
  counts and subtree leaf-occupancy counts;
* a round is one pass to choose candidate paths (consuming each ball's
  private RNG stream exactly as :mod:`repro.core.policies` does, with
  the left/right probabilities memoized per node per round — the view is
  frozen while everyone composes, so thousands of balls crossing the
  same node share one division) and one pass to move balls in ``<R``
  order (bucketed by depth — a counting sort — instead of a comparison
  sort) under the capacity rule of
  :func:`repro.core.movement.apply_path_round`.

Bit-for-bit equivalence with the reference engine — same round counts,
same names, same per-round metrics — is asserted by the differential
suite in ``tests/sim/test_kernel_equivalence.py``; any behavioural change
here must keep that suite green.  Runs the fast path cannot model
(crashing adversaries, traces, phase statistics) are rejected up front by
:func:`columnar_rejections` and fall back to the reference kernel.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.ids import require_distinct
from repro.sim.rng import derive_seed
from repro.tree.topology import cached_topology
from repro.core.config import BallsIntoLeavesConfig

try:  # The C Mersenne-Twister base type.  random.Random passes integer
    # seeds straight through to it, so the streams are bit-identical to
    # derive_rng's — this only skips the Python subclass construction.
    from _random import Random as _MTRandom
except ImportError:  # pragma: no cover - CPython always has _random
    from random import Random as _MTRandom

BallId = Hashable

#: Path policies the columnar layout models (all of :data:`ALGORITHMS`'
#: BiL-based entries; ``random-unweighted`` is an ablation-only policy and
#: stays on the reference engine).
SUPPORTED_POLICIES = ("random", "hybrid", "rank", "leftmost")

_STAGE_INIT = 0
_STAGE_PATH = 1
_STAGE_POSITION = 2

#: Sentinels in the per-node probability memo: the rare both-children-full
#: fallback of ``random_capacity_path`` picks a side *without* consuming a
#: random draw, so it cannot be encoded as a comparison threshold.
_FORCE_LEFT = 2.0
_FORCE_RIGHT = -1.0


def columnar_rejections(config: BallsIntoLeavesConfig) -> List[str]:
    """Why this config cannot run on the columnar engine (empty = it can).

    The columnar layout assumes one shared view: any knob that makes
    per-ball views observable (invariant checking inside the movement
    code, non-``<R`` movement orders, one-round phases) keeps the run on
    the reference engine.
    """
    reasons = []
    if config.path_policy not in SUPPORTED_POLICIES:
        reasons.append(
            f"path policy {config.path_policy!r} is not columnar-modeled "
            f"(supported: {SUPPORTED_POLICIES})"
        )
    if config.view_mode != "shared":
        reasons.append(
            f"view mode {config.view_mode!r} asks for the reference "
            "engine's store (faithful = the paper-verbatim per-ball trees)"
        )
    if config.check_invariants:
        reasons.append("check_invariants instruments the reference movement code")
    if config.movement_order != "priority":
        reasons.append(
            f"movement order {config.movement_order!r} is an ablation of the "
            "reference engine"
        )
    if not config.sync_positions:
        reasons.append("one-round phases (sync_positions=False) are an ablation")
    return reasons


class ColumnarBallsEngine:
    """One failure-free Balls-into-Leaves run over flat arrays.

    Drive with :meth:`step` once per round; the engine sequences the
    init / path / position stages internally, exactly mirroring
    :class:`~repro.core.balls_into_leaves.BallProcess`.  After
    ``running_count`` drops to zero the per-ball arrays hold the run's
    outcome.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        *,
        seed: int = 0,
        policy: str = "random",
        halt_on_name: bool = False,
    ) -> None:
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        self.labels: List[BallId] = sorted(ids)
        n = len(self.labels)
        self.n = n
        self._seed = seed
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._arr = cached_topology(n).arrays()
        self._height = self._arr.topology.height
        node_count = len(self._arr.nodes)
        # Shared-view state: subtree ball counts, and (for the free-leaf
        # policies only — the random walk never asks) leaf-occupancy
        # counts.
        self._count = [0] * node_count
        self._track_leaf_occ = policy in ("rank", "leftmost")
        self._leaf_occ = [0] * node_count if self._track_leaf_occ else None
        self._n_at_leaf = 0
        # Per-round memo of the left-child probability at each inner node
        # (see _random_paths); the stamp makes invalidation O(1) per round.
        self._thr = [0.0] * node_count
        self._thr_stamp = [0] * node_count
        self._tick = 0
        # Per-ball state, indexed by label rank.
        self.pos: List[int] = [self._arr.root] * n
        self.halted: List[bool] = [False] * n
        self.decision: List[Optional[int]] = [None] * n
        self.round_named: List[Optional[int]] = [None] * n
        self.round_halted: List[Optional[int]] = [None] * n
        self._rngs: List[Optional[_MTRandom]] = [None] * n
        self.running_count = n
        self.phase = 0
        self._stage = _STAGE_INIT

    # ------------------------------------------------------------------ driving
    def step(self, round_no: int) -> None:
        """Execute one round (the caller owns the lock-step loop)."""
        if self._stage == _STAGE_INIT:
            self._init_round()
        elif self._stage == _STAGE_PATH:
            self._path_round(round_no)
        else:
            self._position_round(round_no)

    # ------------------------------------------------------------------- rounds
    def _init_round(self) -> None:
        """Line 1: every ball announces its label; all start at the root."""
        root = self._arr.root
        self._count[root] = self.n
        if self._arr.span[root] == 1:  # n == 1: the root already is a leaf
            if self._track_leaf_occ:
                self._leaf_occ[root] = self.n
            self._n_at_leaf = self.n
        self.phase = 1
        self._stage = _STAGE_PATH

    def _path_round(self, round_no: int) -> None:
        """Phase round 1: exchange candidate paths, move in ``<R`` order."""
        paths = self._choose_paths()
        arr = self._arr
        span = arr.span
        parent = arr.parent
        depth = arr.depth
        leaf_rank = arr.leaf_rank
        count = self._count
        leaf_occ = self._leaf_occ
        pos = self.pos
        halted = self.halted
        round_named = self.round_named
        decision = self.decision
        # Algorithm 1 lines 12-21, in the <R order of Definition 1: deeper
        # balls first, ties by label — and label order is index order, so
        # depth buckets filled in index order realize the whole order.
        # Halted balls are silent leaf-holders (the halt-on-name retention
        # rule) and balls whose path never leaves their node are no-ops:
        # neither moves nor changes any capacity, so both drop out here.
        buckets: List[List[int]] = [[] for _ in range(self._height + 1)]
        for j in range(self.n):
            if halted[j]:
                continue
            if len(paths[j]) == 1:
                # Already at a leaf (or wedged by a full subtree): no
                # movement, but a leaf reached before this round's
                # broadcast still fixes the name now (the n=1 root-leaf
                # case arrives here).
                node = pos[j]
                if round_named[j] is None and span[node] == 1:
                    round_named[j] = round_no
                    decision[j] = leaf_rank[node]
                continue
            buckets[depth[pos[j]]].append(j)
        for bucket in reversed(buckets):
            for j in bucket:
                path = paths[j]
                node = path[0]
                k = 1
                length = len(path)
                while k < length:
                    nxt = path[k]
                    if span[nxt] - count[nxt] > 0:
                        node = nxt
                        k += 1
                    else:
                        break
                if k > 1:
                    # The ball only ever descends, so re-placing it adds
                    # one ball to exactly the subtrees strictly below its
                    # old node.
                    for i in range(1, k):
                        count[path[i]] += 1
                    pos[j] = node
                    if span[node] == 1:
                        self._n_at_leaf += 1
                        round_named[j] = round_no
                        decision[j] = leaf_rank[node]
                        if leaf_occ is not None:
                            walk = node
                            while walk != -1:
                                leaf_occ[walk] += 1
                                walk = parent[walk]
        self._stage = _STAGE_POSITION

    def _position_round(self, round_no: int) -> None:
        """Phase round 2: re-synchronize positions, terminate (lines 22-29).

        Failure-free, every announced position matches the shared view, so
        the tree is untouched; only the termination rule runs.
        """
        all_at_leaves = self._n_at_leaf == self.n
        if self._halt_on_name or all_at_leaves:
            span = self._arr.span
            leaf_rank = self._arr.leaf_rank
            for j in range(self.n):
                if self.halted[j]:
                    continue
                if all_at_leaves or span[self.pos[j]] == 1:
                    self.round_halted[j] = round_no
                    self.decision[j] = leaf_rank[self.pos[j]]
                    self.halted[j] = True
                    self.running_count -= 1
        if self.running_count:
            self.phase += 1
            self._stage = _STAGE_PATH

    # ------------------------------------------------------------- path choice
    def _choose_paths(self) -> List[Optional[List[int]]]:
        """Each running ball's candidate path against the pre-round view.

        All choices read the same snapshot (the lock-step engine composes
        every broadcast before any delivery), so the pass order is free;
        per-ball RNG streams keep randomized choices independent of it.
        """
        policy = self._policy
        if policy == "random" or (policy == "hybrid" and self.phase > 1):
            return self._random_paths()
        if policy == "hybrid":
            # Section 6, phase 1: ball bi aims at the leaf indexed by its
            # label rank (everyone is at the root, so the rank clamp of
            # the reference policy never binds failure-free).
            arr = self._arr
            paths: List[Optional[List[int]]] = []
            for j in range(self.n):
                if self.halted[j]:
                    paths.append(None)
                    continue
                lo, hi = arr.nodes[self.pos[j]]
                paths.append(arr.path_to_rank(self.pos[j], min(lo + j, hi - 1)))
            return paths
        if policy == "rank":
            return self._rank_paths()
        if policy == "leftmost":
            return [
                None if self.halted[j] else self._free_leaf_path(self.pos[j], 0)
                for j in range(self.n)
            ]
        raise ConfigurationError(f"policy {policy!r} is not columnar-modeled")

    def _random_paths(self) -> List[Optional[List[int]]]:
        """Algorithm 1 lines 5-10 for every running ball.

        Consumes ``rng.random()`` exactly where
        :func:`repro.tree.paths.random_capacity_path` does, so the
        per-ball streams stay bit-identical to the reference engine's.
        The view is frozen for the whole pass, so the left-child
        probability of each inner node is computed once per round
        (stamp-memoized) no matter how many balls cross it.
        """
        arr = self._arr
        left = arr.left
        right = arr.right
        span = arr.span
        count = self._count
        thr = self._thr
        stamp = self._thr_stamp
        self._tick += 1
        tick = self._tick
        pos = self.pos
        halted = self.halted
        rngs = self._rngs
        labels = self.labels
        seed = self._seed
        paths: List[Optional[List[int]]] = [None] * self.n
        for j in range(self.n):
            if halted[j]:
                continue
            node = pos[j]
            path = [node]
            if left[node] != -1:
                rng = rngs[j]
                if rng is None:
                    rng = _MTRandom(derive_seed(seed, "ball", labels[j]))
                    rngs[j] = rng
                rng_random = rng.random
                append = path.append
                while True:
                    lft = left[node]
                    if lft == -1:
                        break
                    if stamp[node] != tick:
                        stamp[node] = tick
                        rgt = right[node]
                        cap_left = span[lft] - count[lft]
                        if cap_left < 0:
                            cap_left = 0
                        cap_right = span[rgt] - count[rgt]
                        if cap_right < 0:
                            cap_right = 0
                        total = cap_left + cap_right
                        if total <= 0:
                            # Both (apparently) full: larger raw residual
                            # wins, ties left, *no* draw is consumed.
                            thr[node] = (
                                _FORCE_LEFT
                                if span[lft] - count[lft]
                                >= span[rgt] - count[rgt]
                                else _FORCE_RIGHT
                            )
                        else:
                            thr[node] = cap_left / total
                    threshold = thr[node]
                    if threshold == _FORCE_LEFT:
                        node = lft
                    elif threshold == _FORCE_RIGHT:
                        node = right[node]
                    elif rng_random() < threshold:
                        node = lft
                    else:
                        node = right[node]
                    append(node)
            paths[j] = path
        return paths

    def _rank_paths(self) -> List[Optional[List[int]]]:
        """Deterministic rank paths: k-th free leaf by rank at the node."""
        arr = self._arr
        span = arr.span
        leaf_occ = self._leaf_occ
        # Balls at each node in label order (ball index *is* label rank),
        # flattened to one rank-at-node per ball so the pass stays O(n).
        at_node: Dict[int, List[int]] = {}
        for j in range(self.n):
            at_node.setdefault(self.pos[j], []).append(j)
        rank_at_node: List[int] = [0] * self.n
        for group in at_node.values():
            for rank, j in enumerate(group):
                rank_at_node[j] = rank
        paths: List[Optional[List[int]]] = []
        for j in range(self.n):
            if self.halted[j]:
                paths.append(None)
                continue
            start = self.pos[j]
            if span[start] == 1:
                paths.append([start])
                continue
            free = span[start] - leaf_occ[start]
            if free <= 0:
                paths.append([start])
                continue
            paths.append(self._free_leaf_path(start, min(rank_at_node[j], free - 1)))
        return paths

    def _free_leaf_path(self, start: int, k: int) -> List[int]:
        """Path from ``start`` to its ``k``-th free leaf (left to right).

        Mirrors :meth:`LocalTreeView.kth_free_leaf` plus the leftmost
        policy's fallback: with no free leaf below, aim at the leftmost
        leaf of the subtree and let the movement rule park the ball.
        """
        arr = self._arr
        span = arr.span
        left = arr.left
        right = arr.right
        leaf_occ = self._leaf_occ
        free = span[start] - leaf_occ[start]
        if free <= 0:
            return arr.path_to_rank(start, arr.nodes[start][0])
        node = start
        path = [node]
        remaining = k
        while left[node] != -1:
            lft = left[node]
            free_left = span[lft] - leaf_occ[lft]
            if free_left < 0:
                free_left = 0
            if remaining < free_left:
                node = lft
            else:
                remaining -= free_left
                node = right[node]
            path.append(node)
        return path

    # ---------------------------------------------------------------- reporting
    def last_round_named(self) -> Optional[int]:
        """Latest round at which any ball fixed its name."""
        rounds = [r for r in self.round_named if r is not None]
        return max(rounds) if rounds else None
