"""Vectorized, bit-exact Mersenne-Twister streams for the stacked kernel.

The reference and columnar engines give every ball its own
:class:`random.Random` (CPython's C MT19937), seeded through
:func:`repro.sim.rng.derive_seed`.  A trial-stacked kernel needs the
*same* draws for tens of thousands of (trial, ball) streams at once —
one Python object and one ``random()`` call per draw is exactly the
interpreter cost it exists to amortize.

:class:`MTStreamBank` therefore reimplements the generator as NumPy
array passes over a ``(624, S)`` stacked state, one column per stream:

* seeding is CPython's ``init_by_array`` (the key is the seed's
  little-endian 32-bit words) advanced for all streams per step;
* output words come from *partial* twists — a run consumes a dozen or
  two doubles per stream, so only the needed rows of the next
  generation are ever computed;
* doubles are assembled exactly as CPython's ``random()`` does
  (``(a >> 5) * 2**26 + (b >> 6)`` over two consecutive words, divided
  by ``2**53``).

Bit-identity with ``random.Random(seed).random()`` is asserted for
every stream shape in ``tests/sim/test_mt19937_streams.py``; the
vectorized kernel's differential suite then rests on it.

NumPy is an optional extra (``pip install .[fast]``): this module
imports with :data:`HAVE_NUMPY` False when it is missing, and the
kernel layer degrades to the columnar engine.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

try:  # Same C base type the engines seed per ball (see core.columnar).
    from _random import Random as _MTRandom
except ImportError:  # pragma: no cover - CPython always has _random
    from random import Random as _MTRandom  # type: ignore[assignment]

#: MT19937 parameters (Matsumoto & Nishimura), as used by CPython.
_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER = 0x80000000
_LOWER = 0x7FFFFFFF

#: Doubles produced per generation (two 32-bit words per double).
DOUBLES_PER_GENERATION = _N // 2

_base_state_cache = None


def _base_state():
    """``init_genrand(19650218)`` — the key-independent seeding prefix."""
    global _base_state_cache
    if _base_state_cache is None:
        base = np.empty(_N, dtype=np.uint64)
        base[0] = 19650218
        for i in range(1, _N):
            prev = int(base[i - 1])
            base[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
        _base_state_cache = base.astype(np.uint32)
    return _base_state_cache


def seed_states(seeds) -> "np.ndarray":
    """CPython ``Random(seed)`` states for every seed, as ``(624, S)`` u32.

    Vectorizes ``init_by_array`` across streams for the ubiquitous
    two-word keys (64-bit :func:`~repro.sim.rng.derive_seed` outputs).
    Seeds outside ``[2**32, 2**64)`` take the exact-but-scalar fallback
    through ``_random.Random.getstate`` — their key has a different
    word count, which changes the mixing schedule.
    """
    if isinstance(seeds, np.ndarray) and seeds.dtype == np.uint64:
        # The batched derive_ball_seeds path: uniform 64-bit values, only
        # the (astronomically rare) sub-2**32 ones need the scalar leg.
        seeds_arr = seeds
        small = np.flatnonzero(seeds_arr < np.uint64(2**32)).tolist()
        originals: Sequence[int] = seeds_arr
    else:
        originals = list(seeds)
        small = [
            i for i, s in enumerate(originals) if not 2**32 <= s < 2**64
        ]
        seeds_arr = np.array(
            [s if 2**32 <= s < 2**64 else 2**32 for s in originals],
            dtype=np.uint64,
        )
    count = len(seeds_arr)
    mt = np.empty((_N, count), dtype=np.uint32)
    mt[:] = _base_state()[:, None]
    key = (
        (seeds_arr & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        # The loop adds ``key[j] + j``; fold the ``+ 1`` in now.
        (seeds_arr >> np.uint64(32)).astype(np.uint32) + np.uint32(1),
    )
    tmp = np.empty(count, dtype=np.uint32)
    mix1 = np.uint32(1664525)
    mix2 = np.uint32(1566083941)
    s30 = np.uint32(30)
    i = 1
    parity = 0
    for _ in range(_N):
        prev = mt[i - 1]
        np.right_shift(prev, s30, out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, mix1, out=tmp)
        row = mt[i]
        np.bitwise_xor(row, tmp, out=row)
        np.add(row, key[parity], out=row)
        parity ^= 1
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    for _ in range(_N - 1):
        prev = mt[i - 1]
        np.right_shift(prev, s30, out=tmp)
        np.bitwise_xor(tmp, prev, out=tmp)
        np.multiply(tmp, mix2, out=tmp)
        row = mt[i]
        np.bitwise_xor(row, tmp, out=row)
        np.subtract(row, np.uint32(i), out=row)
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = np.uint32(0x80000000)
    for idx in small:
        mt[:, idx] = _MTRandom(int(originals[idx])).getstate()[:-1]
    return mt


def _temper(words: "np.ndarray") -> None:
    """MT19937 output tempering, in place."""
    words ^= words >> np.uint32(11)
    words ^= (words << np.uint32(7)) & np.uint32(0x9D2C5680)
    words ^= (words << np.uint32(15)) & np.uint32(0xEFC60000)
    words ^= words >> np.uint32(18)


class MTStreamBank:
    """Lazily generated doubles from S independent CPython-MT streams.

    ``draws(idx)`` returns the *next* ``random()`` value of each selected
    stream, advancing only those cursors — exactly the consumption
    pattern of the per-ball walks.  Output is produced for all streams
    in lock-step blocks (a partial twist per block), amortizing the
    generation cost the same way the engine amortizes the round logic.
    """

    def __init__(self, seeds: Sequence[int], *, block: int = 4) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("MTStreamBank requires numpy (pip install .[fast])")
        self._mt = seed_states(seeds)
        self._count = self._mt.shape[1]
        self._block = max(1, int(block))
        self._words_done = 0  # words of the current generation produced
        self._new_words: List["np.ndarray"] = []  # untempered rows, in order
        # Doubles buffer: (capacity, S) — row d is every stream's d-th
        # draw, so generation appends rows without transposing; capacity
        # doubles on demand so extends never re-copy.
        self._buf = np.empty((0, self._count), dtype=np.float64)
        self._produced = 0
        self.cursor = np.zeros(self._count, dtype=np.int64)

    # ------------------------------------------------------------- generation
    def _twist_rows(self, start: int, stop: int) -> "np.ndarray":
        """Untempered next-generation words ``start..stop`` (exclusive).

        Generated strictly in order: rows below ``N - M`` read only the
        old state, higher rows also read freshly twisted words (already
        produced), and the final row pairs old word 623 with *new* word
        0 — the wrap-around of the in-place reference loop.
        """
        mt = self._mt
        rows: List["np.ndarray"] = []
        lo = start
        while lo < stop:
            if lo < _N - 1:
                hi = min(stop, _N - _M) if lo < _N - _M else min(stop, _N - 1)
                y = (mt[lo:hi] & np.uint32(_UPPER)) | (
                    mt[lo + 1 : hi + 1] & np.uint32(_LOWER)
                )
                if hi <= _N - _M:
                    mixed = mt[lo + _M : hi + _M]
                else:
                    mixed = self._stacked_new(lo - (_N - _M), hi - (_N - _M))
            else:
                hi = _N
                y = (mt[_N - 1 :] & np.uint32(_UPPER)) | (
                    self._stacked_new(0, 1) & np.uint32(_LOWER)
                )
                mixed = self._stacked_new(_M - 1, _M)
            out = mixed ^ (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * np.uint32(_MATRIX_A))
            rows.append(out)
            self._new_words.append(out)
            lo = hi
        return np.concatenate(rows, axis=0) if len(rows) > 1 else rows[0]

    def _stacked_new(self, start: int, stop: int) -> "np.ndarray":
        """View of already-twisted new words ``start..stop``."""
        stacked = (
            self._new_words[0]
            if len(self._new_words) == 1
            else np.concatenate(self._new_words, axis=0)
        )
        self._new_words = [stacked]
        return stacked[start:stop]

    def _extend(self, doubles: int) -> None:
        """Produce ``doubles`` more values for every stream."""
        while doubles > 0:
            take = min(doubles, DOUBLES_PER_GENERATION - self._words_done // 2)
            if take == 0:
                # Current generation exhausted: finish the twist (its tail
                # rows were never needed as output) and roll the state.
                if self._words_done < _N:
                    self._twist_rows(self._words_done, _N)
                self._mt = self._stacked_new(0, _N).copy()
                self._new_words = []
                self._words_done = 0
                continue
            words = self._twist_rows(self._words_done, self._words_done + 2 * take).copy()
            self._words_done += 2 * take
            _temper(words)
            # CPython's random(): a = word0 >> 5, b = word1 >> 6,
            # (a * 2**26 + b) / 2**53 — correctly rounded by construction.
            a = (words[0::2] >> np.uint32(5)).astype(np.float64)
            b = (words[1::2] >> np.uint32(6)).astype(np.float64)
            if self._produced + take > self._buf.shape[0]:
                capacity = max(8, self._buf.shape[0] * 2, self._produced + take)
                grown = np.empty((capacity, self._count), dtype=np.float64)
                grown[: self._produced] = self._buf[: self._produced]
                self._buf = grown
            out = self._buf[self._produced : self._produced + take]
            np.multiply(a, 67108864.0, out=a)
            np.add(a, b, out=a)
            np.multiply(a, 1.0 / 9007199254740992.0, out=out)
            self._produced += take
            doubles -= take

    # ------------------------------------------------------------ consumption
    def draws(self, idx: "np.ndarray") -> "np.ndarray":
        """The next double of each stream in ``idx`` (cursors advance)."""
        cur = self.cursor[idx]
        needed = int(cur.max(initial=-1)) + 1 if len(cur) else 0
        if needed > self._produced:
            self._extend(max(self._block, needed - self._produced))
        out = self._buf[cur, idx]
        self.cursor[idx] = cur + 1
        return out
