"""Vectorized, bit-exact Mersenne-Twister streams for the stacked kernel.

The reference and columnar engines give every ball its own
:class:`random.Random` (CPython's C MT19937), seeded through
:func:`repro.sim.rng.derive_seed`.  A trial-stacked kernel needs the
*same* draws for tens of thousands of (trial, ball) streams at once —
one Python object and one ``random()`` call per draw is exactly the
interpreter cost it exists to amortize.

:class:`MTStreamBank` therefore reimplements the generator as NumPy
array passes over a ``(624, S)`` stacked state, one column per stream:

* seeding is CPython's ``init_by_array`` (the key is the seed's
  little-endian 32-bit words) advanced for all streams per step, with
  seeds batched *by key width* so unusual widths (sub-32-bit seeds,
  giant integers) still seed vectorized instead of one stream at a
  time;
* output words come from *partial* twists — a run consumes a dozen or
  two doubles per stream, so only the needed rows of the next
  generation are ever computed;
* doubles are assembled exactly as CPython's ``random()`` does
  (``(a >> 5) * 2**26 + (b >> 6)`` over two consecutive words, divided
  by ``2**53``).

The seeding and twist passes are uint32 streams over independent
columns, and NumPy releases the GIL, so both fan out across a thread
pool when ``REPRO_VEC_THREADS`` (default: the CPU count; the CLI's
``--threads`` sets it) resolves above 1 and the bank is wide enough to
amortize the dispatch.  Columns are partitioned, never shared, so any
thread count produces byte-identical streams; ``REPRO_VEC_THREADS=1``
is exactly the serial pass.

Bit-identity with ``random.Random(seed).random()`` is asserted for
every stream shape in ``tests/sim/test_mt19937_streams.py``; the
vectorized kernel's differential suite then rests on it.

NumPy is an optional extra (``pip install .[fast]``): this module
imports with :data:`HAVE_NUMPY` False when it is missing, and the
kernel layer degrades to the columnar engine.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import ThreadPoolExecutor

from repro import config as repro_config
from repro.core.instrumentation import TIMERS

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

try:  # Same C base type the engines seed per ball (see core.columnar).
    from _random import Random as _MTRandom
except ImportError:  # pragma: no cover - CPython always has _random
    from random import Random as _MTRandom  # type: ignore[assignment]

#: MT19937 parameters (Matsumoto & Nishimura), as used by CPython.
_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER = 0x80000000
_LOWER = 0x7FFFFFFF

#: Doubles produced per generation (two 32-bit words per double).
DOUBLES_PER_GENERATION = _N // 2

#: Below this many columns per worker a thread dispatch costs more than
#: the pass it would split; narrower banks stay serial whatever the
#: configured thread count.
MIN_STREAMS_PER_THREAD = 8192

_base_state_cache = None

_pool = None
_pool_workers = 0

#: Scratch ``(624, S)`` state buffers, recycled across banks.  A sweep
#: or hunt seeds thousands of equally-shaped banks back to back, and on
#: this allocation pattern the kernel page-fault cost of a fresh 1/4 GB
#: ``np.empty`` dwarfs the actual fill pass (~4x at S ~ 100k).  A buffer
#: is handed out only while nothing but the pool references it, so a
#: live bank (or any view into its state) can never be aliased.
_state_pool: List["np.ndarray"] = []
_STATE_POOL_MAX = 3


def _acquire_state(count: int) -> "np.ndarray":
    """An uninitialized ``(624, count)`` u32 buffer, pooled when free.

    CPython refcounting makes "free" exact: a pooled buffer with no
    outside holder is referenced by the pool list, the loop variable,
    and ``getrefcount``'s argument — three.  Any bank state, temporary
    view, or caller reference raises it, and the pool then allocates a
    fresh buffer instead (false "in use" only ever costs speed).
    """
    for buf in _state_pool:
        if buf.shape[1] == count and sys.getrefcount(buf) == 3:
            return buf
    buf = np.empty((_N, count), dtype=np.uint32)
    if len(_state_pool) >= _STATE_POOL_MAX:
        _state_pool.pop(0)
    _state_pool.append(buf)
    return buf


def thread_count() -> int:
    """The resolved ``REPRO_VEC_THREADS`` (default: CPU count, >= 1).

    Read per pass (through the :mod:`repro.config` seam) rather than
    cached so the CLI knob and tests can set the environment variable
    at any point.
    """
    return repro_config.vec_threads()


def _executor(workers: int) -> "ThreadPoolExecutor":
    """The shared column-fanout pool, grown on demand."""
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        from concurrent.futures import ThreadPoolExecutor

        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-vec"
        )
        _pool_workers = workers
    return _pool


def _fanout(work: Callable[[slice], None], count: int) -> None:
    """Run ``work`` over the column axis, split across threads when the
    bank is wide enough; partitioning is by contiguous column slices, so
    results are byte-identical at every thread count."""
    workers = min(thread_count(), count // MIN_STREAMS_PER_THREAD)
    if workers <= 1:
        work(slice(0, count))
        return
    step = -(-count // workers)
    slices = [
        slice(start, min(count, start + step))
        for start in range(0, count, step)
    ]
    list(_executor(len(slices)).map(work, slices))


def _base_state() -> "np.ndarray":
    """``init_genrand(19650218)`` — the key-independent seeding prefix."""
    global _base_state_cache
    if _base_state_cache is None:
        base = np.empty(_N, dtype=np.uint64)
        base[0] = 19650218
        for i in range(1, _N):
            prev = int(base[i - 1])
            base[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
        _base_state_cache = base.astype(np.uint32)
    return _base_state_cache


def _key_words(seed: int) -> List[int]:
    """CPython ``random_seed``'s init key: ``abs(seed)`` as little-endian
    32-bit words (zero is the single word ``[0]``)."""
    value = abs(int(seed))
    words = [value & 0xFFFFFFFF]
    value >>= 32
    while value:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _mix_group(mt: "np.ndarray", keys: "np.ndarray") -> None:
    """``init_by_array`` over one same-width group, all columns per step.

    ``mt`` is an *uninitialized* ``(624, G)`` buffer (written in place);
    ``keys`` the ``(W, G)`` key matrix with ``key[j] + j`` pre-folded
    (the reference loop adds both).  Runs ``max(624, W)`` mixing steps
    then the 623 decay steps, exactly CPython's schedule for a
    ``W``-word key.

    The reference seeds ``init_genrand(19650218)`` first and xors each
    key-mixing step into that base state.  The base state is
    key-independent, and the first 623 steps each touch their row for
    the first time — so instead of broadcasting a quarter-gigabyte base
    matrix up front, those steps fold ``base[i]`` in as a scalar and
    write the row fresh; only revisits (step >= 623) read the row back.
    """
    width = keys.shape[0]
    count = mt.shape[1]
    base = _base_state()
    mix1 = np.uint32(1664525)
    mix2 = np.uint32(1566083941)
    s30 = np.uint32(30)

    def work(cols: slice) -> None:
        sub = mt[:, cols]
        sub_keys = keys[:, cols]
        tmp = np.empty(cols.stop - cols.start, dtype=np.uint32)
        i = 1
        j = 0
        for step in range(max(_N, width)):
            row = sub[i]
            if step == 0:
                # Row 0 is never materialized before its first wrap
                # copy; the whole first step is scalar arithmetic on
                # base[0] folded into the key add.
                b0 = int(base[0])
                head = (int(base[1]) ^ ((1664525 * (b0 ^ (b0 >> 30))) & 0xFFFFFFFF)) & 0xFFFFFFFF
                np.add(sub_keys[0], np.uint32(head), out=row)
            else:
                prev = sub[i - 1]
                np.right_shift(prev, s30, out=tmp)
                np.bitwise_xor(tmp, prev, out=tmp)
                np.multiply(tmp, mix1, out=tmp)
                if step < _N - 1:  # first visit: fold base[i] as a scalar
                    np.bitwise_xor(tmp, base[i], out=row)
                else:
                    np.bitwise_xor(row, tmp, out=row)
                np.add(row, sub_keys[j], out=row)
            i += 1
            j += 1
            if i >= _N:
                sub[0] = sub[_N - 1]
                i = 1
            if j >= width:
                j = 0
        for _ in range(_N - 1):
            prev = sub[i - 1]
            np.right_shift(prev, s30, out=tmp)
            np.bitwise_xor(tmp, prev, out=tmp)
            np.multiply(tmp, mix2, out=tmp)
            row = sub[i]
            np.bitwise_xor(row, tmp, out=row)
            np.subtract(row, np.uint32(i), out=row)
            i += 1
            if i >= _N:
                sub[0] = sub[_N - 1]
                i = 1
        sub[0] = np.uint32(0x80000000)

    _fanout(work, count)


def seed_states(seeds: Sequence[int]) -> "np.ndarray":
    """CPython ``Random(seed)`` states for every seed, as ``(624, S)`` u32.

    Vectorizes ``init_by_array`` across streams.  The ubiquitous
    two-word keys (64-bit :func:`~repro.sim.rng.derive_seed` outputs)
    run as one full-matrix pass; any other key width — sub-32-bit
    seeds, >=2**64 integers — is batched per width and seeded through
    the same vectorized mixing loops on its column group, so a bank is
    never reduced to stream-at-a-time scalar reproduction.
    """
    timer_started = TIMERS.start()
    uniform64 = isinstance(seeds, np.ndarray) and seeds.dtype == np.uint64
    if uniform64:
        seeds_arr = seeds
        # The batched derive_ball_seeds path: uniform 64-bit values; the
        # (astronomically rare) sub-2**32 ones form a one-word group.
        odd: Dict[int, List[int]] = {}
        for i in np.flatnonzero(seeds_arr < np.uint64(2**32)).tolist():
            odd.setdefault(1, []).append(i)
        originals: Sequence[int] = seeds_arr
    else:
        originals = list(seeds)
        odd = {}
        for i, s in enumerate(originals):
            if not 2**32 <= s < 2**64:
                odd.setdefault(len(_key_words(s)), []).append(i)
        seeds_arr = np.array(
            [s if 2**32 <= s < 2**64 else 2**32 for s in originals],
            dtype=np.uint64,
        )
    count = len(seeds_arr)
    mt = _acquire_state(count)
    odd_count = sum(len(idx) for idx in odd.values())
    if odd_count < count:
        # Two-word common case over the whole matrix; odd-width columns
        # are recomputed by their group below (the wasted mixing is
        # cheaper than excising scattered columns first).
        keys = np.empty((2, count), dtype=np.uint32)
        keys[0] = (seeds_arr & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        # The loop adds ``key[j] + j``; fold the ``+ 1`` in now.
        keys[1] = (seeds_arr >> np.uint64(32)).astype(np.uint32) + np.uint32(1)
        _mix_group(mt, keys)
    for width, idx in sorted(odd.items()):
        group = _acquire_state(len(idx))
        keys = np.zeros((width, len(idx)), dtype=np.uint32)
        for col, i in enumerate(idx):
            for j, word in enumerate(_key_words(int(originals[i]))):
                keys[j, col] = np.uint32((word + j) & 0xFFFFFFFF)
        _mix_group(group, keys)
        mt[:, idx] = group
    TIMERS.stop("seeding", timer_started)
    return mt


def _temper(words: "np.ndarray") -> None:
    """MT19937 output tempering, in place."""
    words ^= words >> np.uint32(11)
    words ^= (words << np.uint32(7)) & np.uint32(0x9D2C5680)
    words ^= (words << np.uint32(15)) & np.uint32(0xEFC60000)
    words ^= words >> np.uint32(18)


class MTStreamBank:
    """Lazily generated doubles from S independent CPython-MT streams.

    ``draws(idx)`` returns the *next* ``random()`` value of each selected
    stream, advancing only those cursors — exactly the consumption
    pattern of the per-ball walks.  Output is produced for all streams
    in lock-step blocks (a partial twist per block), amortizing the
    generation cost the same way the engine amortizes the round logic.
    """

    def __init__(self, seeds: Sequence[int], *, block: int = 4) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("MTStreamBank requires numpy (pip install .[fast])")
        self._mt = seed_states(seeds)
        self._count = self._mt.shape[1]
        self._block = max(1, int(block))
        self._words_done = 0  # words of the current generation produced
        self._new: Optional["np.ndarray"] = None  # untempered next gen
        # Doubles buffer: (capacity, S) — row d is every stream's d-th
        # draw, so generation appends rows without transposing; capacity
        # doubles on demand so extends never re-copy.
        self._buf = np.empty((0, self._count), dtype=np.float64)
        self._produced = 0
        self.cursor = np.zeros(self._count, dtype=np.int64)

    # ------------------------------------------------------------- generation
    def _twist_rows(self, start: int, stop: int) -> "np.ndarray":
        """Untempered next-generation words ``start..stop`` (exclusive).

        Generated strictly in order into the preallocated generation
        buffer: rows below ``N - M`` read only the old state, higher
        rows also read freshly twisted words (already produced), and the
        final row pairs old word 623 with *new* word 0 — the wrap-around
        of the in-place reference loop.  Columns are independent, so the
        pass fans out across the thread pool.
        """
        if self._new is None:
            self._new = _acquire_state(self._count)

        def work(cols: slice) -> None:
            mt = self._mt[:, cols]
            new = self._new[:, cols]
            upper = np.uint32(_UPPER)
            lower = np.uint32(_LOWER)
            one = np.uint32(1)
            matrix_a = np.uint32(_MATRIX_A)
            lo = start
            while lo < stop:
                if lo < _N - 1:
                    hi = (
                        min(stop, _N - _M)
                        if lo < _N - _M
                        else min(stop, _N - 1)
                    )
                    y = (mt[lo:hi] & upper) | (mt[lo + 1 : hi + 1] & lower)
                    if hi <= _N - _M:
                        mixed = mt[lo + _M : hi + _M]
                    else:
                        mixed = new[lo - (_N - _M) : hi - (_N - _M)]
                else:
                    hi = _N
                    y = (mt[_N - 1 :] & upper) | (new[0:1] & lower)
                    mixed = new[_M - 1 : _M]
                out = new[lo:hi]
                np.right_shift(y, one, out=out)
                np.bitwise_xor(out, mixed, out=out)
                np.bitwise_and(y, one, out=y)
                np.multiply(y, matrix_a, out=y)
                np.bitwise_xor(out, y, out=out)
                lo = hi

        _fanout(work, self._count)
        return self._new[start:stop]

    def _extend(self, doubles: int) -> None:
        """Produce ``doubles`` more values for every stream."""
        timer_started = TIMERS.start()
        while doubles > 0:
            take = min(doubles, DOUBLES_PER_GENERATION - self._words_done // 2)
            if take == 0:
                # Current generation exhausted: finish the twist (its tail
                # rows were never needed as output) and roll the state.
                if self._words_done < _N:
                    self._twist_rows(self._words_done, _N)
                self._mt = self._new
                self._new = None
                self._words_done = 0
                continue
            words = self._twist_rows(self._words_done, self._words_done + 2 * take).copy()
            self._words_done += 2 * take
            _temper(words)
            # CPython's random(): a = word0 >> 5, b = word1 >> 6,
            # (a * 2**26 + b) / 2**53 — correctly rounded by construction.
            a = (words[0::2] >> np.uint32(5)).astype(np.float64)
            b = (words[1::2] >> np.uint32(6)).astype(np.float64)
            if self._produced + take > self._buf.shape[0]:
                capacity = max(8, self._buf.shape[0] * 2, self._produced + take)
                grown = np.empty((capacity, self._count), dtype=np.float64)
                grown[: self._produced] = self._buf[: self._produced]
                self._buf = grown
            out = self._buf[self._produced : self._produced + take]
            np.multiply(a, 67108864.0, out=a)
            np.add(a, b, out=a)
            np.multiply(a, 1.0 / 9007199254740992.0, out=out)
            self._produced += take
            doubles -= take
        TIMERS.stop("twist", timer_started)

    # ------------------------------------------------------------ consumption
    def draws(self, idx: "np.ndarray") -> "np.ndarray":
        """The next double of each stream in ``idx`` (cursors advance)."""
        cur = self.cursor[idx]
        needed = int(cur.max(initial=-1)) + 1 if len(cur) else 0
        if needed > self._produced:
            self._extend(max(self._block, needed - self._produced))
        out = self._buf[cur, idx]
        self.cursor[idx] = cur + 1
        return out
