"""View stores: who owns the local trees.

``faithful`` mode gives every ball its own :class:`LocalTreeView` and
applies every round to every tree — the paper verbatim, O(n) tree updates
per round.

``shared`` mode exploits a structural fact of Algorithm 1: a ball's local
tree is a deterministic function of its *inbox history* (its own
randomness only influences its broadcast path, which is part of every
inbox).  Balls whose inbox histories are identical therefore hold
identical trees, so the store groups them into equivalence classes and
updates one tree per (class, inbox) pair per round.  Classes split only
when the adversary delivers a crashing ball's broadcast to some receivers
and not others; failure-free runs keep a single class and large-``n``
experiments become tractable in pure Python.  The two modes are verified
bit-for-bit equal in ``tests/core/test_view_equivalence.py``.

Both stores thread the ``lifecycle`` flag (the halt-on-name extension)
into the movement rules: each view then carries the per-ball
:class:`~repro.core.lifecycle.BallStatus` machine, and the shared
store's class identity includes those statuses — two views with equal
positions but different announced-termination knowledge must not merge,
because they treat future silence differently.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Mapping, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.tree.local_view import LocalTreeView
from repro.tree.topology import Topology
from repro.core.movement import apply_path_round, apply_position_round

BallId = Hashable


def _fingerprint(inbox: Mapping[BallId, Any]) -> int:
    """Identity of an inbox within one round.

    The simulator hands every receiver with the same delivery signature
    the *same* inbox dict object, so object identity distinguishes inbox
    contents within a round.  Ad-hoc callers passing fresh dicts per ball
    only lose caching (each ball recomputes), never correctness.
    """
    # repro: lint-ok[D104] within-process cache fingerprint; never ordered, serialized, or cross-process
    return id(inbox)


class ViewStore(ABC):
    """Owns the local trees of all balls of one run."""

    def __init__(
        self,
        topology: Topology,
        *,
        check_invariants: bool = False,
        movement_order: str = "priority",
        lifecycle: bool = False,
    ) -> None:
        self._topo = topology
        self._check = check_invariants
        self._order = movement_order
        self._lifecycle = lifecycle

    @property
    def topology(self) -> Topology:
        """The shared static tree shape."""
        return self._topo

    @abstractmethod
    def initialize(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        """Create ``pid``'s tree with the heard-from senders at the root (line 1)."""

    @abstractmethod
    def view_of(self, pid: BallId) -> LocalTreeView:
        """``pid``'s current local tree.  Callers must not mutate it."""

    @abstractmethod
    def apply_paths(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        """Apply a round-1 path exchange to ``pid``'s tree."""

    @abstractmethod
    def apply_positions(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        """Apply a round-2 position synchronization to ``pid``'s tree."""


class PrivateViewStore(ViewStore):
    """One tree per ball: the paper's model, used for validation."""

    def __init__(
        self,
        topology: Topology,
        *,
        check_invariants: bool = False,
        movement_order: str = "priority",
        lifecycle: bool = False,
    ) -> None:
        super().__init__(
            topology,
            check_invariants=check_invariants,
            movement_order=movement_order,
            lifecycle=lifecycle,
        )
        self._trees: Dict[BallId, LocalTreeView] = {}

    def initialize(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        self._trees[pid] = LocalTreeView(self._topo, inbox.keys())

    def view_of(self, pid: BallId) -> LocalTreeView:
        try:
            return self._trees[pid]
        except KeyError:
            raise SimulationError(f"ball {pid!r} has no initialized view") from None

    def apply_paths(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        apply_path_round(
            self.view_of(pid),
            inbox,
            check_invariants=self._check,
            order=self._order,
            lifecycle=self._lifecycle,
        )

    def apply_positions(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        apply_position_round(
            self.view_of(pid),
            inbox,
            check_invariants=self._check,
            lifecycle=self._lifecycle,
        )


class _ViewClass:
    """A group of balls sharing one tree (identical inbox histories)."""

    __slots__ = ("serial", "tree", "members")

    def __init__(self, serial: int, tree: LocalTreeView) -> None:
        self.serial = serial
        self.tree = tree
        self.members: Set[BallId] = set()


class SharedViewStore(ViewStore):
    """Equivalence-class store: one tree per distinct inbox history."""

    def __init__(
        self,
        topology: Topology,
        *,
        check_invariants: bool = False,
        movement_order: str = "priority",
        lifecycle: bool = False,
    ) -> None:
        super().__init__(
            topology,
            check_invariants=check_invariants,
            movement_order=movement_order,
            lifecycle=lifecycle,
        )
        self._class_of: Dict[BallId, _ViewClass] = {}
        self._serial = 0
        self._memo_round = -1
        # (pre-class serial, kind, inbox fingerprint) -> post class.  The
        # memo is scoped to a single round; it is what lets every member
        # of a class reuse one tree update.  Values keep the inbox alive
        # so id()-based fingerprints cannot collide within the round.
        self._memo: Dict[Tuple[int, str, int], Tuple[_ViewClass, Any]] = {}
        # State-snapshot -> post class, also per round.  Divergent
        # classes whose trees re-converge (the common case after a
        # position round) are merged here, keeping the class count small
        # instead of doubling every crash round.  Keyed by the exact
        # (positions, lifecycle tags) sets: no hash-collision risk, and
        # views that differ only in announced-termination knowledge are
        # correctly kept apart (their future silence handling differs).
        self._merge_index: Dict[
            Tuple[str, Tuple[frozenset, frozenset]], _ViewClass
        ] = {}

    # ----------------------------------------------------------------- public
    def initialize(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        self._roll_memo(round_no)
        key = (-1, "init", _fingerprint(inbox))
        memo_hit = self._memo.get(key)
        if memo_hit is None:
            post = self._new_class(LocalTreeView(self._topo, inbox.keys()))
            self._memo[key] = (post, inbox)
        else:
            post = memo_hit[0]
        post.members.add(pid)
        self._class_of[pid] = post

    def view_of(self, pid: BallId) -> LocalTreeView:
        try:
            return self._class_of[pid].tree
        except KeyError:
            raise SimulationError(f"ball {pid!r} has no initialized view") from None

    def apply_paths(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        self._apply(pid, round_no, inbox, "path")

    def apply_positions(self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        self._apply(pid, round_no, inbox, "pos")

    def class_count(self) -> int:
        """Number of live equivalence classes (diagnostic)."""
        # repro: lint-ok[D104] identity-dedup count only; no ordering or output depends on the values
        return len({id(cls) for cls in self._class_of.values()})

    # ---------------------------------------------------------------- private
    def _apply(
        self, pid: BallId, round_no: int, inbox: Mapping[BallId, Any], kind: str
    ) -> None:
        pre = self._class_of.get(pid)
        if pre is None:
            raise SimulationError(f"ball {pid!r} has no initialized view")
        self._roll_memo(round_no)
        key = (pre.serial, kind, _fingerprint(inbox))
        memo_hit = self._memo.get(key)
        if memo_hit is None:
            tree = pre.tree.copy()
            if kind == "path":
                apply_path_round(
                    tree,
                    inbox,
                    check_invariants=self._check,
                    order=self._order,
                    lifecycle=self._lifecycle,
                )
            else:
                apply_position_round(
                    tree,
                    inbox,
                    check_invariants=self._check,
                    lifecycle=self._lifecycle,
                )
            merge_key = (kind, tree.state_set())
            post = self._merge_index.get(merge_key)
            if post is None:
                post = self._new_class(tree)
                self._merge_index[merge_key] = post
            self._memo[key] = (post, inbox)
        else:
            post = memo_hit[0]
        pre.members.discard(pid)
        post.members.add(pid)
        self._class_of[pid] = post

    def _new_class(self, tree: LocalTreeView) -> _ViewClass:
        self._serial += 1
        return _ViewClass(self._serial, tree)

    def _roll_memo(self, round_no: int) -> None:
        if round_no != self._memo_round:
            self._memo.clear()
            self._merge_index.clear()
            self._memo_round = round_no


def make_store(
    mode: str,
    topology: Topology,
    *,
    check_invariants: bool = False,
    movement_order: str = "priority",
    lifecycle: bool = False,
) -> ViewStore:
    """Instantiate a view store by config name (``faithful``/``shared``)."""
    if mode == "faithful":
        return PrivateViewStore(
            topology,
            check_invariants=check_invariants,
            movement_order=movement_order,
            lifecycle=lifecycle,
        )
    if mode == "shared":
        return SharedViewStore(
            topology,
            check_invariants=check_invariants,
            movement_order=movement_order,
            lifecycle=lifecycle,
        )
    raise ConfigurationError(f"unknown view mode {mode!r}")
