"""Trial-stacked Balls-into-Leaves: a whole scenario cell as array passes.

The columnar engine (:mod:`repro.core.columnar`) removed the per-ball
object machinery but still advances *one trial at a time* with
Python-level loops over balls.  A scenario-matrix cell re-runs those
loops once per seed — for the paper's experiment shape (many independent
trials of one ``(algorithm, n, adversary)`` cell) the interpreter cost
dominates.  This module stacks an entire cell of ``T`` failure-free
trials into ``(T * n,)`` NumPy columns over the shared array-indexed
topology and advances *all trials one lock-step round per ufunc pass*.

Exactness is the design constraint, not a best effort: every trial's
:class:`~repro.sim.simulator.SimulationResult` is bit-for-bit the
columnar/reference kernels' (asserted by
``tests/sim/test_vectorized_equivalence.py``).  Three ideas make the
stacking exact:

* **RNG** — per-ball Mersenne-Twister streams are reproduced by
  :class:`repro.core.mt19937.MTStreamBank` (vectorized CPython-MT), so a
  ball draws the same doubles at the same walk steps as under the
  scalar engines.
* **Movement** — the reference moves balls in ``<R`` order, each walking
  its candidate path while child capacity remains.  Because balls only
  ever *enter* subtrees during a round, a ball reaches node ``v`` iff
  its ``<R`` rank among the round's arrivals at ``v`` is below ``v``'s
  round-start free capacity.  That reformulation runs level by level as
  grouped admission quotas — no per-trial sequential loop — and only
  over-subscribed nodes (rare) need an actual within-group ranking.
* **Thresholds** — path-choice probabilities are pure functions of the
  frozen pre-round counts; recomputing them per ball vectorized yields
  the identical IEEE-754 doubles the scalar memo produced.

Supported grid: failure-free runs of the BiL-family policies on the
shared view store, matching :func:`vectorized_rejections`.  Everything
else (crashes, faithful views, traces, ...) stays on the columnar or
reference engines via kernel fallback.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from collections.abc import Mapping

from repro.adversary.base import AdversaryContext, clamp_plan
from repro.adversary.none import NoFailures
from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import require_distinct
from repro.tree.topology import cached_topology
from repro.core.columnar import (
    SUPPORTED_POLICIES,
    _ACTIVE,
    _ANNOUNCED,
    _ProcessIntrospectionUnavailable,
)
from repro.core.config import BallsIntoLeavesConfig
from repro.core.messages import hello_message, path_message, position_message
from repro.core.mt19937 import HAVE_NUMPY, MTStreamBank
from repro.core import sha256

if HAVE_NUMPY:
    import numpy as np

BallId = Hashable


def vectorized_rejections(config: BallsIntoLeavesConfig) -> List[str]:
    """Why this config cannot run trial-stacked (empty = it can).

    The stacked layout models exactly the columnar failure-free grid;
    the adversary/trace/phase-stat gates live in the kernel layer, which
    also knows about the run request.
    """
    reasons = []
    if not HAVE_NUMPY:
        reasons.append(
            "numpy is not installed (the vectorized kernel is the "
            "`pip install .[fast]` extra)"
        )
    if config.path_policy not in SUPPORTED_POLICIES:
        reasons.append(
            f"path policy {config.path_policy!r} is not columnar-modeled "
            f"(supported: {SUPPORTED_POLICIES})"
        )
    if config.view_mode != "shared":
        reasons.append(
            f"view mode {config.view_mode!r} asks for the reference "
            "engine's store (faithful = the paper-verbatim per-ball trees)"
        )
    if config.check_invariants:
        reasons.append("check_invariants instruments the reference movement code")
    if config.movement_order != "priority":
        reasons.append(
            f"movement order {config.movement_order!r} is an ablation of the "
            "reference engine"
        )
    if not config.sync_positions:
        reasons.append("one-round phases (sync_positions=False) are an ablation")
    return reasons


def derive_ball_seeds(
    trial_seeds: Sequence[int], labels: Sequence[BallId]
) -> "np.ndarray":
    """``derive_seed(seed, "ball", label)`` for a whole cell, batched.

    Bit-identical to :func:`repro.sim.rng.derive_seed` (asserted in the
    stream tests): the SHA-256 material of a ball stream is
    ``repr((int(seed), repr("ball"), repr(label)))``, whose per-trial
    head and per-ball tail are each built once instead of ``T * n``
    times.  Every such message fits one padded SHA-256 block, so the
    whole cell hashes as a single :mod:`repro.core.sha256` lane pass —
    the block matrix is assembled head-row by head-row without ever
    materializing the ``T * n`` message strings.  Returns a ``(T * n,)``
    uint64 array, trial-major.
    """
    tails = [(repr(repr(label)) + ")").encode("utf-8") for label in labels]
    heads = [
        ("(%r, \"'ball'\", " % int(seed)).encode("utf-8")
        for seed in trial_seeds
    ]
    n = len(tails)
    lanes = len(heads) * n
    if tails and sha256.use_lanes(lanes):
        max_tail = max(len(tail) for tail in tails)
        max_head = max(len(head) for head in heads)
        if max_head + max_tail <= sha256.MAX_SINGLE_BLOCK:
            # Tail matrix (terminator folded in) built once per cell;
            # each trial stamps its head and shifts the tails in place.
            width = max_tail + 1
            tail_mat = np.zeros((n, width), dtype=np.uint8)
            tail_len = np.empty(n, dtype=np.uint16)
            for i, tail in enumerate(tails):
                tail_mat[i, : len(tail)] = np.frombuffer(tail, dtype=np.uint8)
                tail_mat[i, len(tail)] = 0x80
                tail_len[i] = len(tail)
            blocks = np.zeros((lanes, 64), dtype=np.uint8)
            for t, head in enumerate(heads):
                hl = len(head)
                rows = blocks[t * n : (t + 1) * n]
                rows[:, :hl] = np.frombuffer(head, dtype=np.uint8)
                rows[:, hl : hl + width] = tail_mat
                bits = (tail_len + hl) * np.uint16(8)
                rows[:, 62] = (bits >> np.uint16(8)).astype(np.uint8)
                rows[:, 63] = (bits & np.uint16(0xFF)).astype(np.uint8)
            state = sha256.compress_blocks(blocks)
            return (state[:, 0].astype(np.uint64) << np.uint64(32)) | (
                state[:, 1].astype(np.uint64)
            )
    # OpenSSL path: priming one context per trial head and C-copying it
    # per ball skips re-hashing the head 102k times; the 64-bit
    # truncation happens once, as a stride over the joined digests.
    sha = hashlib.sha256
    digests: List[bytes] = []
    append = digests.append
    for head in heads:
        primed = sha(head).copy
        for tail in tails:
            h = primed()
            h.update(tail)
            append(h.digest())
    return np.frombuffer(b"".join(digests), dtype=">u8")[0::4].astype(np.uint64)


class _VecTopology:
    """The :class:`~repro.tree.arrays.TopologyArrays` lists as ndarrays."""

    __slots__ = (
        "n", "node_count", "height", "root",
        "left", "right", "parent", "span", "depth", "leaf_rank",
        "mid", "lo", "hi", "is_leaf",
    )

    def __init__(self, n: int) -> None:
        arr = cached_topology(n).arrays()
        i32 = np.int32
        self.n = n
        self.node_count = len(arr.nodes)
        self.height = arr.topology.height
        self.root = arr.root
        self.left = np.array(arr.left, dtype=i32)
        self.right = np.array(arr.right, dtype=i32)
        self.parent = np.array(arr.parent, dtype=i32)
        self.span = np.array(arr.span, dtype=i32)
        self.depth = np.array(arr.depth, dtype=i32)
        self.leaf_rank = np.array(arr.leaf_rank, dtype=i32)
        self.mid = np.array(arr.mid, dtype=i32)
        self.lo = np.array([node[0] for node in arr.nodes], dtype=i32)
        self.hi = np.array([node[1] for node in arr.nodes], dtype=i32)
        self.is_leaf = self.left == -1


def _grouped_ranks(keys: "np.ndarray") -> "np.ndarray":
    """Rank of each element within its key group, input order preserved.

    The segmented-cumcount kernel shared by label ranking (rank policy)
    and over-subscribed admission: a stable sort groups equal keys while
    keeping the caller's order — which *is* the tie-break order (label
    rank, ``<R``) at every call site — so the in-group offset is the rank.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(sorted_keys.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    offsets = np.arange(sorted_keys.size, dtype=np.int64)
    offsets -= np.repeat(starts, np.diff(np.append(starts, sorted_keys.size)))
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = offsets
    return ranks


@lru_cache(maxsize=16)
def vectorized_topology(n: int) -> "_VecTopology":
    """Shared ndarray topology per ``n``.

    Bounded like ``cached_topology`` (same 16: the eight EXP-T2
    ``--scale deep`` sizes plus interleaved smoke sizes must not
    thrash), and strictly smaller per entry — flat ndarrays, no node
    dictionaries.
    """
    return _VecTopology(n)


class VectorizedCellEngine:
    """``T`` stacked failure-free runs of one cell, lock-step by rounds.

    Drive with :meth:`run`; afterwards the per-ball outcome arrays
    (``decision``, ``round_named``, ``round_halted``) and the per-trial
    ``rounds`` / message counters hold every trial's result, in the
    exact values the scalar engines produce trial by trial.

    Balls are indexed trial-major: stream/ball ``s`` is trial ``s // n``,
    label rank ``s % n``; tree state is a ``(T * node_count,)`` flat
    column indexed by ``t * node_count + node``.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        trial_seeds: Sequence[int],
        *,
        policy: str = "random",
        halt_on_name: bool = False,
        max_rounds: int = 10_000,
    ) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the vectorized engine requires numpy (pip install .[fast])"
            )
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        if not trial_seeds:
            raise ConfigurationError("a stacked cell needs at least one trial")
        self.labels: List[BallId] = sorted(ids)
        self.n = n = len(self.labels)
        self.trials = T = len(trial_seeds)
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._max_rounds = max_rounds
        self._topo = topo = vectorized_topology(n)
        M = topo.node_count
        S = T * n
        self._S = S
        # Stream bank built on first draw, like the scalar engines' lazy
        # per-ball RNGs: deterministic policies never pay for seeding.
        self._trial_seeds = list(trial_seeds)
        self._bank: Optional[MTStreamBank] = None
        # Ball columns (trial-major).
        self._trial = np.repeat(np.arange(T, dtype=np.int64), n)
        self._jcol = np.tile(np.arange(n, dtype=np.int32), T)
        self._tbase = self._trial * M
        self.pos = np.full(S, topo.root, dtype=np.int32)
        self.halted = np.zeros(S, dtype=bool)
        self.decision = np.full(S, -1, dtype=np.int32)
        self.round_named = np.full(S, -1, dtype=np.int32)
        self.round_halted = np.full(S, -1, dtype=np.int32)
        # Shared-view columns.
        self._count = np.zeros(T * M, dtype=np.int32)
        self._span_tiled = np.tile(topo.span, T)
        self._track_leaf_occ = policy in ("rank", "leftmost")
        self._leaf_occ = (
            np.zeros(T * M, dtype=np.int32) if self._track_leaf_occ else None
        )
        self._n_at_leaf = np.zeros(T, dtype=np.int32)
        self.running = np.full(T, n, dtype=np.int32)
        # Per-round candidate paths, rows indexed by absolute node depth.
        self._path = np.zeros((S, topo.height + 1), dtype=np.int32)
        self._end_depth = np.zeros(S, dtype=np.int32)
        # Per-trial metrics trail: (senders, running_after) per round, for
        # trials active that round.
        self.rounds = np.zeros(T, dtype=np.int32)
        self.round_senders: List["np.ndarray"] = []
        self.round_running_after: List["np.ndarray"] = []
        # Persistent round cursor: run() resumes here, so the engine can
        # be driven in segments (the importance-splitting estimator stops
        # at each level, clones survivors, and resumes the clones).
        self._round = 0

    # ------------------------------------------------------------------ driving
    def run(
        self,
        stop_after: Optional[int] = None,
        observer: Optional[Callable[..., None]] = None,
    ) -> None:
        """All trials to completion, mirroring the kernel driving loop.

        ``stop_after`` pauses the stack once that round number has been
        completed (trials stay resumable); ``observer(engine, round_no,
        active)`` is called after every completed round — the hook the
        stacked invariant monitor attaches to.
        """
        round_no = self._round
        while True:
            active = self.running > 0
            if not active.any():
                break
            if stop_after is not None and round_no >= stop_after:
                break
            if round_no >= self._max_rounds:
                raise RoundLimitExceeded(
                    self._max_rounds, int(self.running[active][0])
                )
            round_no += 1
            self._round = round_no
            senders = np.where(active, self.running, 0)
            if round_no == 1:
                self._init_round()
            elif round_no % 2 == 0:
                self._path_round(round_no, active)
            else:
                self._position_round(round_no, active)
            self.rounds[active] = round_no
            self.round_senders.append(senders)
            self.round_running_after.append(np.where(active, self.running, 0))
            if observer is not None:
                observer(self, round_no, active)

    # -------------------------------------------------------- state interchange
    def export_trial_state(self, t: int) -> Dict[str, Any]:
        """Trial ``t``'s protocol state in the engine-independent form
        shared with ``ColumnarBallsEngine.export_state`` (plain lists,
        ``-1`` sentinels for undecided/unnamed)."""
        n = self.n
        M = self._topo.node_count
        balls = slice(t * n, (t + 1) * n)
        nodes = slice(t * M, (t + 1) * M)
        return {
            "pos": self.pos[balls].tolist(),
            "halted": self.halted[balls].tolist(),
            "decision": self.decision[balls].tolist(),
            "round_named": self.round_named[balls].tolist(),
            "round_halted": self.round_halted[balls].tolist(),
            "count": self._count[nodes].tolist(),
            "leaf_occ": (
                self._leaf_occ[nodes].tolist() if self._track_leaf_occ else None
            ),
            "n_at_leaf": int(self._n_at_leaf[t]),
            "running": int(self.running[t]),
        }

    def inject_trial_states(
        self, states: Sequence[Dict[str, Any]], round_no: int
    ) -> None:
        """Load one exported state per trial, as of completed ``round_no``.

        The engine must be freshly constructed with one trial seed per
        state (the clones' derived seeds); the next :meth:`run` resumes
        at round ``round_no + 1`` with fresh per-ball streams — valid
        because the protocol is Markov given the exported state.
        """
        if len(states) != self.trials:
            raise ConfigurationError(
                f"{len(states)} state(s) for {self.trials} stacked trial(s)"
            )
        n = self.n
        M = self._topo.node_count
        for t, state in enumerate(states):
            balls = slice(t * n, (t + 1) * n)
            nodes = slice(t * M, (t + 1) * M)
            self.pos[balls] = state["pos"]
            self.halted[balls] = state["halted"]
            self.decision[balls] = state["decision"]
            self.round_named[balls] = state["round_named"]
            self.round_halted[balls] = state["round_halted"]
            self._count[nodes] = state["count"]
            if self._track_leaf_occ:
                self._leaf_occ[nodes] = state["leaf_occ"]
            self._n_at_leaf[t] = state["n_at_leaf"]
            self.running[t] = state["running"]
        self.rounds[:] = round_no
        self._round = round_no

    # ------------------------------------------------------------------- rounds
    def _init_round(self) -> None:
        """Line 1: every ball announces its label; all start at the root."""
        topo = self._topo
        root_idx = np.arange(self.trials, dtype=np.int64) * topo.node_count + topo.root
        self._count[root_idx] = self.n
        if topo.span[topo.root] == 1:  # n == 1: the root already is a leaf
            if self._leaf_occ is not None:
                self._leaf_occ[root_idx] = self.n
            self._n_at_leaf[:] = self.n

    def _path_round(self, round_no: int, active: "np.ndarray") -> None:
        """Phase round 1: exchange candidate paths, move under ``<R``."""
        topo = self._topo
        ball_active = np.repeat(active, self.n) & ~self.halted
        # A leaf reached before this round's broadcast fixes the name now
        # (the columnar length-1 branch; in practice the n == 1 root-leaf).
        at_leaf = topo.is_leaf[self.pos]
        naming = ball_active & at_leaf & (self.round_named < 0)
        if naming.any():
            idx = np.flatnonzero(naming)
            self.round_named[idx] = round_no
            self.decision[idx] = topo.leaf_rank[self.pos[idx]]
        movers = self._choose_paths(round_no, ball_active, at_leaf)
        if movers.size:
            self._move(round_no, movers)

    def _position_round(self, round_no: int, active: "np.ndarray") -> None:
        """Phase round 2: re-synchronize positions, terminate."""
        topo = self._topo
        all_at_leaves = self._n_at_leaf == self.n
        ball_active = np.repeat(active, self.n) & ~self.halted
        halting = ball_active & np.repeat(all_at_leaves, self.n)
        if self._halt_on_name:
            halting |= ball_active & topo.is_leaf[self.pos]
        if halting.any():
            idx = np.flatnonzero(halting)
            self.round_halted[idx] = round_no
            self.decision[idx] = topo.leaf_rank[self.pos[idx]]
            self.halted[idx] = True
            self.running -= np.bincount(
                self._trial[idx], minlength=self.trials
            ).astype(np.int32)

    # ------------------------------------------------------------- path choice
    def _choose_paths(
        self, round_no: int, ball_active: "np.ndarray", at_leaf: "np.ndarray"
    ) -> "np.ndarray":
        """Fill the path rows of every mover; returns mover indices.

        All choices read the same frozen pre-round view, exactly like the
        scalar engines (broadcasts compose before any delivery).
        """
        policy = self._policy
        phase = round_no // 2
        candidates = np.flatnonzero(ball_active & ~at_leaf)
        if candidates.size == 0:
            return candidates
        self._path[candidates, self._topo.depth[self.pos[candidates]]] = self.pos[
            candidates
        ]
        if policy == "random" or (policy == "hybrid" and phase > 1):
            self._walk_random(candidates)
            return candidates
        if policy == "hybrid":
            # Section 6, phase 1: ball bi aims at the leaf indexed by its
            # label rank (clamped inside its subtree, as in the scalar
            # policy; failure-free everyone is still at the root).
            topo = self._topo
            start = self.pos[candidates]
            target = np.minimum(
                topo.lo[start] + self._jcol[candidates], topo.hi[start] - 1
            )
            self._walk_to_rank(candidates, target)
            return candidates
        if policy == "rank":
            return self._rank_paths(candidates)
        if policy == "leftmost":
            return self._leftmost_paths(candidates)
        raise ConfigurationError(f"policy {policy!r} is not columnar-modeled")

    def _walk_random(self, idx: "np.ndarray") -> None:
        """Algorithm 1 lines 5-10 for every walker, one level per pass.

        Each ball consumes its private stream exactly where the scalar
        walk does: one draw per non-forced inner node, none when both
        children appear full (the larger raw residual wins, ties left).
        """
        topo = self._topo
        span = topo.span
        count = self._count
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        while idx.size:
            left = topo.left[cur]
            right = topo.right[cur]
            base = self._tbase[idx]
            raw_l = span[left] - count[base + left]
            raw_r = span[right] - count[base + right]
            cap_l = np.maximum(raw_l, 0)
            total = cap_l + np.maximum(raw_r, 0)
            forced = total <= 0
            go_left = np.empty(idx.size, dtype=bool)
            if forced.any():
                go_left[forced] = raw_l[forced] >= raw_r[forced]
            free = ~forced
            if free.any():
                bank = self._bank
                if bank is None:
                    # Block = tree height: a full root-to-leaf walk (the
                    # first round's exact consumption) per extension.
                    bank = self._bank = MTStreamBank(
                        derive_ball_seeds(self._trial_seeds, self.labels),
                        block=max(4, self._topo.height),
                    )
                draws = bank.draws(idx[free])
                go_left[free] = draws < cap_l[free] / total[free]
            cur = np.where(go_left, left, right)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx = idx[keep]
                cur = cur[keep]
                dcur = dcur[keep]

    def _walk_to_rank(self, idx: "np.ndarray", target: "np.ndarray") -> None:
        """Deterministic descent toward a leaf rank (``path_to_rank``)."""
        topo = self._topo
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        while idx.size:
            cur = np.where(target < topo.mid[cur], topo.left[cur], topo.right[cur])
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx, cur, dcur, target = (
                    idx[keep], cur[keep], dcur[keep], target[keep],
                )

    def _walk_to_kth_free(self, idx: "np.ndarray", k: "np.ndarray") -> None:
        """``path_to_kth_free_leaf`` descent (callers ensure free > 0)."""
        topo = self._topo
        span = topo.span
        occ = self._leaf_occ
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        remaining = k
        while idx.size:
            left = topo.left[cur]
            free_left = np.maximum(span[left] - occ[self._tbase[idx] + left], 0)
            go_left = remaining < free_left
            cur = np.where(go_left, left, topo.right[cur])
            remaining = np.where(go_left, remaining, remaining - free_left)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx, cur, dcur, remaining = (
                    idx[keep], cur[keep], dcur[keep], remaining[keep],
                )

    def _rank_paths(self, candidates: "np.ndarray") -> "np.ndarray":
        """Rank-descent: the k-th free leaf by label rank at the node."""
        topo = self._topo
        start = self.pos[candidates]
        free = topo.span[start] - self._leaf_occ[self._tbase[candidates] + start]
        go = free > 0  # full subtree (or leaf): the ball stays put
        walkers = candidates[go]
        if walkers.size:
            rank = self._rank_at_node(candidates)[go]
            self._walk_to_kth_free(
                walkers, np.minimum(rank, free[go] - 1)
            )
        return walkers

    def _leftmost_paths(self, candidates: "np.ndarray") -> "np.ndarray":
        """Leftmost-free descent, with the full-subtree leftmost fallback."""
        topo = self._topo
        start = self.pos[candidates]
        free = topo.span[start] - self._leaf_occ[self._tbase[candidates] + start]
        go = free > 0
        walkers = candidates[go]
        if walkers.size:
            self._walk_to_kth_free(walkers, np.zeros(walkers.size, dtype=np.int32))
        fallback = candidates[~go]
        if fallback.size:
            # No free leaf below: aim at the subtree's leftmost leaf and
            # let the movement rule park the ball.
            self._walk_to_rank(fallback, topo.lo[self.pos[fallback]])
        return candidates

    def _rank_at_node(self, candidates: "np.ndarray") -> "np.ndarray":
        """Label rank of each candidate among candidates at its node."""
        return _grouped_ranks(self._tbase[candidates] + self.pos[candidates])

    # -------------------------------------------------------------- movement
    def _move(self, round_no: int, movers: "np.ndarray") -> None:
        """Lines 12-21 for all trials at once, level by level.

        ``<R`` says deeper balls move first, ties by label.  Since balls
        only enter subtrees, node ``v`` admits the round's arrivals in
        ``<R`` order up to its round-start free capacity — so each tree
        level is one grouped-quota pass, and only over-subscribed nodes
        need an explicit within-group ranking.
        """
        topo = self._topo
        M = topo.node_count
        start_depth = topo.depth[self.pos[movers]]
        end_depth = self._end_depth[movers]
        # Movers in <R order (trial-major so groups stay contiguous in
        # meaning): stable sort by shallow-last start depth keeps label
        # order inside each depth bucket.
        height = topo.height
        key = self._trial[movers] * np.int64(height + 1) + (height - start_depth)
        order = np.argsort(key, kind="stable")
        P = movers[order]
        p_start = start_depth[order]
        p_end = end_depth[order]
        advancing = np.ones(P.size, dtype=bool)
        quota = self._span_tiled - self._count  # frozen round-start capacity
        count = self._count
        trial = self._trial
        path = self._path
        for level in range(1, height + 1):
            eligible = advancing & (p_start < level) & (level <= p_end)
            sel_pos = np.flatnonzero(eligible)
            if sel_pos.size == 0:
                continue
            sel = P[sel_pos]
            child = path[sel, level]
            gid = self._tbase[sel] + child
            arrivals = np.bincount(gid, minlength=count.size)
            crowded = arrivals[gid] > quota[gid]
            admitted = np.ones(sel.size, dtype=bool)
            if crowded.any():
                # Rank the contested arrivals: sel is already in <R
                # order, so within-node arrival rank is the grouped rank
                # and the first quota[node] arrivals win.
                cpos = np.flatnonzero(crowded)
                cgid = gid[cpos]
                admitted[cpos] = _grouped_ranks(cgid) < quota[cgid]
                advancing[sel_pos[~admitted]] = False
            moved = sel[admitted]
            if moved.size == 0:
                continue
            moved_gid = gid[admitted]
            if admitted.all():
                # No over-subscription: the arrivals histogram *is* the
                # per-node entry count.
                np.add(count, arrivals, out=count, casting="unsafe")
            else:
                np.add(
                    count,
                    np.bincount(moved_gid, minlength=count.size),
                    out=count,
                    casting="unsafe",
                )
            moved_child = child[admitted]
            self.pos[moved] = moved_child
            leaf_hit = topo.is_leaf[moved_child]
            if leaf_hit.any():
                landed = moved[leaf_hit]
                leaves = moved_child[leaf_hit]
                self._n_at_leaf += np.bincount(
                    trial[landed], minlength=self.trials
                ).astype(np.int32)
                self.round_named[landed] = round_no
                self.decision[landed] = topo.leaf_rank[leaves]
                if self._leaf_occ is not None:
                    base = self._tbase[landed]
                    walk = leaves
                    while walk.size:
                        np.add.at(self._leaf_occ, base + walk, 1)
                        walk = topo.parent[walk]
                        keep = walk != -1
                        if not keep.all():
                            walk = walk[keep]
                            base = base[keep]

    # ---------------------------------------------------------------- results
    def last_round_named(self, t: int) -> Optional[int]:
        """Latest round at which any ball of trial ``t`` fixed its name."""
        named = self.round_named[t * self.n : (t + 1) * self.n]
        top = int(named.max()) if named.size else -1
        return top if top >= 0 else None


# --------------------------------------------------------------------------
# Crash-capable stacked engine: every live view class of every trial is one
# matrix row; all trials advance one lock-step round per batch of passes.
# --------------------------------------------------------------------------


class _LazyOutbox(Mapping):
    """One round's outbox, payloads materialized on first access.

    Keyed and ordered exactly like the columnar engine's eager dict (the
    running pids in input order).  Certified adversaries are pure
    functions of the public context, so building ``path_message`` tuples
    only for the entries a plan actually touches is observationally
    identical — and most plans touch none.
    """

    __slots__ = ("_pids", "_members", "_fetch", "_memo")

    def __init__(
        self, pids: Sequence[BallId], fetch: Callable[[BallId], Any]
    ) -> None:
        self._pids = pids
        self._members = frozenset(pids)
        self._fetch = fetch
        self._memo: Dict[BallId, Any] = {}

    def __getitem__(self, key: BallId) -> Any:
        memo = self._memo
        if key in memo:
            return memo[key]
        if key not in self._members:
            raise KeyError(key)
        value = self._fetch(key)
        memo[key] = value
        return value

    def __iter__(self) -> Iterator[BallId]:
        return iter(self._pids)

    def __len__(self) -> int:
        return len(self._pids)


class VectorizedCrashEngine:
    """``T`` stacked trials of one cell under certified crash adversaries.

    :class:`~repro.core.columnar.ColumnarCrashEngine` advances one trial
    at a time, cloning and re-merging per-receiver view classes as Python
    list passes.  Here the live classes of *all* trials are rows of
    ``(C, n)`` / ``(C, node_count)`` matrices, and every round is a batch
    of ufunc passes over them; only the adversary ``plan`` calls (Python
    by contract) and the rare purge-dirtied admission nodes drop to
    scalar code.

    Exactness mirrors the columnar engine decision for decision — the
    same per-ball RNG streams, the same :class:`AdversaryContext` and
    clamping, the same frozen-capacity ``<R`` admission (purges enter the
    priority order as capacity-credit events), the same
    ``(pos, status)`` merge keys — asserted trial-for-trial by the
    stacked-crash differential suite.

    Unlike the scalar engines, a trial that exhausts ``max_rounds`` does
    not raise mid-stack: it is flagged in :attr:`overrun` (with the
    running count the columnar engine would have reported) and the other
    trials keep going.  The sim layer re-raises or captures per trial.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        trial_seeds: Sequence[int],
        *,
        policy: str = "random",
        halt_on_name: bool = False,
        adversaries: Optional[Sequence[Any]] = None,
        crash_budget: int = 0,
        max_rounds: int = 10_000,
    ) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the vectorized engine requires numpy (pip install .[fast])"
            )
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        if not trial_seeds:
            raise ConfigurationError("a stacked cell needs at least one trial")
        self.labels: List[BallId] = sorted(ids)
        self.n = n = len(self.labels)
        self.trials = T = len(trial_seeds)
        if adversaries is None:
            adversaries = [None] * T
        if len(adversaries) != T:
            raise ConfigurationError(
                f"{len(adversaries)} adversar(ies) for {T} stacked trial(s)"
            )
        self._adversaries = list(adversaries)
        self._index_of: Dict[BallId, int] = {
            pid: j for j, pid in enumerate(self.labels)
        }
        # Adversary context exposes pids in *input* order (the reference
        # simulator's process-dict insertion order), not label order.
        self._input_order: List[int] = [self._index_of[pid] for pid in ids]
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._budget = crash_budget
        self.max_rounds = max_rounds
        self._topo = topo = vectorized_topology(n)
        self._nodes = cached_topology(n).arrays().nodes
        M = topo.node_count
        S = T * n
        self._S = S
        self._trial_seeds = list(trial_seeds)
        self._bank: Optional[MTStreamBank] = None
        self._jcol = np.tile(np.arange(n, dtype=np.int64), T)
        self._track_leaf_occ = policy in ("rank", "leftmost")
        # Per-ball run state (trial-major, -1 sentinels like the scalar
        # engines' None).
        self.crashed = np.zeros(S, dtype=bool)
        self.halted = np.zeros(S, dtype=bool)
        self.decision = np.full(S, -1, dtype=np.int32)
        self.round_named = np.full(S, -1, dtype=np.int32)
        self.round_halted = np.full(S, -1, dtype=np.int32)
        #: Round each ball crashed (-1 = survived) — trace capture.
        self.round_crashed = np.full(S, -1, dtype=np.int32)
        #: Row of each *running* ball's view class in the class matrices
        #: (-1 before round 1 and for non-running balls).
        self.cls_of = np.full(S, -1, dtype=np.int64)
        self._victim = np.zeros(S, dtype=bool)
        # Class matrices: one row per live receiver equivalence class.
        self._crows = 0
        self._cpos = np.zeros((0, n), dtype=np.int32)
        self._cstat = np.zeros((0, n), dtype=np.uint8)
        self._ccount = np.zeros((0, M), dtype=np.int32)
        self._cocc = (
            np.zeros((0, M), dtype=np.int32) if self._track_leaf_occ else None
        )
        self._cpresent = np.zeros(0, dtype=np.int32)
        self._cleaf = np.zeros(0, dtype=np.int32)
        self._ctrial = np.zeros(0, dtype=np.int64)
        # Per-trial counters and termination state.
        self.crashed_count = np.zeros(T, dtype=np.int32)
        self.running = np.full(T, n, dtype=np.int32)
        self.rounds = np.zeros(T, dtype=np.int32)
        self.overrun = np.zeros(T, dtype=bool)
        self.running_at_limit = np.zeros(T, dtype=np.int32)
        # Candidate paths, rows indexed by absolute node depth.
        self._path = np.zeros((S, topo.height + 1), dtype=np.int32)
        self._start_depth = np.zeros(S, dtype=np.int32)
        self._end_depth = np.zeros(S, dtype=np.int32)
        self._announced = np.full(S, -1, dtype=np.int32)
        # Metrics trail: one (T,) row per executed round, inactive trials
        # zeroed so whole-column sums give per-trial totals directly.
        self.round_sent: List["np.ndarray"] = []
        self.round_delivered: List["np.ndarray"] = []
        self.round_crashes: List["np.ndarray"] = []
        self.round_alive: List["np.ndarray"] = []
        self.round_running: List["np.ndarray"] = []
        self._active = np.zeros(T, dtype=bool)
        self._round = 0

    # ------------------------------------------------------------------ driving
    def run(self) -> None:
        """All trials to completion or to the shared round limit.

        Mirrors the per-trial kernel loop: a trial still running when
        ``max_rounds`` rounds have completed is marked overrun with the
        running count the columnar engine's raise would have carried.
        """
        round_no = self._round
        while True:
            active = (self.running > 0) & ~self.overrun
            if not active.any():
                break
            if round_no >= self.max_rounds:
                self.overrun |= active
                self.running_at_limit = np.where(
                    active, self.running, self.running_at_limit
                )
                break
            self._active = active
            round_no += 1
            self._round = round_no
            self.step(round_no)
            self.rounds[active] = round_no

    def step(self, round_no: int) -> None:
        """One full round for every active trial: compose, crash plan,
        deliver per (pre-class, signature) group, merge, halt."""
        n = self.n
        T = self.trials
        topo = self._topo
        M = topo.node_count
        active = self._active
        active_balls = np.repeat(active, n)
        sent_balls = active_balls & ~self.crashed & ~self.halted
        sent_row = np.where(active, self.running, 0).astype(np.int64)
        if round_no == 1:
            kind = "init"
        elif round_no % 2 == 0:
            kind = "path"
            senders = np.flatnonzero(sent_balls)
            if senders.size:
                self._choose_paths(round_no, senders)
        else:
            kind = "pos"
            senders = np.flatnonzero(sent_balls)
            self._announced.fill(-1)
            if senders.size:
                self._announced[senders] = self._cpos[
                    self.cls_of[senders], self._jcol[senders]
                ]
        crashes_row, partial = self._plan_and_crash(
            round_no, kind, sent_balls, active
        )
        alive_row = np.where(
            active, n - self.crashed_count.astype(np.int64), 0
        )

        # Receivers: running balls after this round's crashes land.
        recv = np.flatnonzero(active_balls & ~self.crashed & ~self.halted)
        r_trial = recv // n
        r_j = recv - r_trial * n
        r_pre = self.cls_of[recv]
        r_pat = np.zeros(recv.size, dtype=np.int64)
        # Distinct delivery camps per trial: a receiver's signature is a
        # function of its camp-membership pattern (np.unique over the
        # pattern matrix), computed once per distinct pattern.
        trial_sig: Dict[int, Any] = {}
        npat = 1
        for t, events in partial.items():
            where = np.flatnonzero(r_trial == t)
            if where.size == 0:
                continue
            camp_sets: List[frozenset] = []
            camp_victims: List[List[int]] = []
            camp_idx: Dict[frozenset, int] = {}
            for j, kept in events:
                k = camp_idx.get(kept)
                if k is None:
                    camp_idx[kept] = k = len(camp_sets)
                    camp_sets.append(kept)
                    camp_victims.append([])
                camp_victims[k].append(j)
            ncamps = len(camp_sets)
            mem = np.zeros((ncamps, n), dtype=bool)
            index_of = self._index_of
            for k, kept in enumerate(camp_sets):
                cols = [index_of[pid] for pid in kept if pid in index_of]
                if cols:
                    mem[k, cols] = True
            vmask = np.zeros((ncamps, n), dtype=np.int64)
            vlen = np.zeros(ncamps, dtype=np.int64)
            for k, vs in enumerate(camp_victims):
                vmask[k, vs] = 1
                vlen[k] = len(vs)
            patterns = mem[:, r_j[where]].T
            if ncamps <= 62:
                # Row identity as one int64 key: a plain 1-D unique,
                # far cheaper than the axis-0 structured-view path.
                codes = patterns.astype(np.int64) @ (
                    np.int64(1) << np.arange(ncamps, dtype=np.int64)
                )
                _uc, fidx, inverse = np.unique(
                    codes, return_index=True, return_inverse=True
                )
                uniq = patterns[fidx]
            else:  # pragma: no cover - needs >62 distinct camps in a round
                uniq, inverse = np.unique(
                    patterns, axis=0, return_inverse=True
                )
            r_pat[where] = inverse.reshape(-1)
            urows = uniq.astype(np.int64)
            trial_sig[t] = ((urows @ vmask) > 0, urows @ vlen)
            npat = max(npat, uniq.shape[0])

        # Delivery groups: (trial, pre-class, signature pattern).
        gkey = (
            r_trial * np.int64(self._crows + 1) + (r_pre + 1)
        ) * np.int64(npat) + r_pat
        _uk, first, inv = np.unique(
            gkey, return_index=True, return_inverse=True
        )
        inv = inv.reshape(-1)
        G = first.size
        g_trial = r_trial[first]
        g_pre = r_pre[first]
        g_pat = r_pat[first]
        g_sig = np.zeros((G, n), dtype=bool)
        g_siglen = np.zeros(G, dtype=np.int64)
        for t, (smask, slen) in trial_sig.items():
            rows = np.flatnonzero(g_trial == t)
            if rows.size:
                pat = g_pat[rows]
                g_sig[rows] = smask[pat]
                g_siglen[rows] = slen[pat]
        partial_count = np.zeros(T, dtype=np.int64)
        for t, events in partial.items():
            partial_count[t] = len(events)
        base_count = sent_row - partial_count
        delivered_row = np.zeros(T, dtype=np.int64)
        if recv.size:
            delivered_row = np.bincount(
                r_trial,
                weights=(base_count[r_trial] + g_siglen[inv]).astype(
                    np.float64
                ),
                minlength=T,
            ).astype(np.int64)

        # Gather each group's pre-class row and apply the round to it.
        sent_m = sent_balls.reshape(T, n)[g_trial]
        victim_m = self._victim.reshape(T, n)[g_trial]
        if kind == "init":
            members = sent_m & (~victim_m | g_sig)
            new_pos = np.where(members, np.int32(topo.root), np.int32(-1))
            new_stat = np.zeros((G, n), dtype=np.uint8)
            new_count = np.zeros((G, M), dtype=np.int32)
            mcount = members.sum(axis=1).astype(np.int32)
            new_count[:, topo.root] = mcount
            new_present = mcount.copy()
            new_leaf = np.zeros(G, dtype=np.int32)
            new_occ = (
                np.zeros((G, M), dtype=np.int32)
                if self._track_leaf_occ
                else None
            )
            if topo.span[topo.root] == 1:  # n == 1: the root is a leaf
                new_leaf = mcount.copy()
                if new_occ is not None:
                    new_occ[:, topo.root] = mcount
        else:
            new_pos = self._cpos[g_pre]
            new_stat = self._cstat[g_pre]
            new_count = self._ccount[g_pre]
            new_occ = self._cocc[g_pre] if self._cocc is not None else None
            new_present = self._cpresent[g_pre].copy()
            new_leaf = self._cleaf[g_pre].copy()
            if kind == "path":
                self._apply_path_groups(
                    new_pos, new_stat, new_count, new_occ,
                    new_present, new_leaf, g_trial, g_sig, sent_m, victim_m,
                )
            else:
                self._apply_pos_groups(
                    new_pos, new_stat, new_count, new_occ,
                    new_present, new_leaf, g_trial, g_sig, sent_m, victim_m,
                )

        # Merge classes whose (pos, status) coincide, then point every
        # receiver at its canonical row; stale rows drop out here.
        remap = np.empty(G, dtype=np.int64)
        canon: Dict[Any, int] = {}
        g_trial_l = g_trial.tolist()
        for g in range(G):
            mkey = (g_trial_l[g], new_pos[g].tobytes(), new_stat[g].tobytes())
            hit = canon.get(mkey)
            if hit is None:
                canon[mkey] = g
                remap[g] = g
            else:
                remap[g] = hit
        keep = np.unique(remap)
        ridx = np.full(G, -1, dtype=np.int64)
        ridx[keep] = np.arange(keep.size, dtype=np.int64)
        self._cpos = np.ascontiguousarray(new_pos[keep])
        self._cstat = np.ascontiguousarray(new_stat[keep])
        self._ccount = np.ascontiguousarray(new_count[keep])
        self._cocc = (
            np.ascontiguousarray(new_occ[keep]) if new_occ is not None else None
        )
        self._cpresent = new_present[keep]
        self._cleaf = new_leaf[keep]
        self._ctrial = g_trial[keep]
        self._crows = int(keep.size)
        cls = np.full(self._S, -1, dtype=np.int64)
        if recv.size:
            cls[recv] = ridx[remap[inv]]
        self.cls_of = cls

        if kind != "init":
            # Per-ball bookkeeping against the ball's own (post) view;
            # skipped on the hello round exactly like the scalar engines.
            c = self.cls_of[recv]
            p = self._cpos[c, r_j]
            at_leaf = topo.span[p] == 1
            naming = at_leaf & (self.round_named[recv] < 0)
            if naming.any():
                named = recv[naming]
                self.round_named[named] = round_no
                self.decision[named] = topo.leaf_rank[p[naming]]
            if kind == "pos":
                halt = self._cleaf[c] == self._cpresent[c]
                if self._halt_on_name:
                    halt |= at_leaf
                if halt.any():
                    idx = recv[halt]
                    self.round_halted[idx] = round_no
                    self.decision[idx] = topo.leaf_rank[p[halt]]
                    self.halted[idx] = True
                    self.running -= np.bincount(
                        r_trial[halt], minlength=T
                    ).astype(np.int32)
        self.round_sent.append(sent_row)
        self.round_delivered.append(delivered_row)
        self.round_crashes.append(crashes_row)
        self.round_alive.append(alive_row)
        self.round_running.append(
            np.where(active, self.running.astype(np.int64), 0)
        )

    # -------------------------------------------------------------- adversary
    def _plan_and_crash(
        self,
        round_no: int,
        kind: str,
        sent_balls: "np.ndarray",
        active: "np.ndarray",
    ) -> Tuple["np.ndarray", Dict[int, List[Any]]]:
        """Plan, clamp and apply every active trial's crashes.

        Returns the per-trial crash counts and the partial victims
        (``trial -> [(ball index, kept receivers), ...]`` in clamped plan
        order) whose broadcasts some receivers still see.
        """
        n = self.n
        T = self.trials
        labels = self.labels
        nodes = self._nodes
        crashes_row = np.zeros(T, dtype=np.int64)
        partial: Dict[int, List[Any]] = {}
        self._victim.fill(False)
        for t in np.flatnonzero(active).tolist():
            adv = self._adversaries[t]
            if adv is None or type(adv) is NoFailures:
                continue
            remaining = self._budget - int(self.crashed_count[t])
            if remaining <= 0:
                continue
            base = t * n
            sent_list = sent_balls[base : base + n].tolist()
            running_pids = tuple(
                labels[j] for j in self._input_order if sent_list[j]
            )
            if kind == "init":
                hello = hello_message()

                def fetch(pid: BallId, _hello: Any = hello) -> Any:
                    return _hello

            elif kind == "path":

                def fetch(pid: BallId, base: int = base) -> Any:
                    s = base + self._index_of[pid]
                    sd = int(self._start_depth[s])
                    ed = int(self._end_depth[s])
                    return path_message(
                        tuple(
                            nodes[int(i)] for i in self._path[s, sd : ed + 1]
                        )
                    )

            else:

                def fetch(pid: BallId, base: int = base) -> Any:
                    return position_message(
                        nodes[int(self._announced[base + self._index_of[pid]])]
                    )

            crashed_list = self.crashed[base : base + n].tolist()
            alive = [
                labels[j] for j in self._input_order if not crashed_list[j]
            ]
            ctx = AdversaryContext(
                round_no=round_no,
                running=running_pids,
                alive=tuple(alive),
                outbox=_LazyOutbox(running_pids, fetch),
                crashed_so_far=frozenset(
                    labels[j] for j in range(n) if crashed_list[j]
                ),
                budget_remaining=remaining,
                processes=_ProcessIntrospectionUnavailable(alive),
            )
            plan = adv.plan(ctx) or {}
            plan = clamp_plan(plan, alive=alive, budget_remaining=remaining)
            if not plan:
                continue
            crashes_row[t] = len(plan)
            events = []
            for pid, kept in plan.items():
                j = self._index_of[pid]
                s = base + j
                self.crashed[s] = True
                self.round_crashed[s] = round_no
                self.crashed_count[t] += 1
                if not self.halted[s]:
                    self.running[t] -= 1
                if sent_list[j]:
                    self._victim[s] = True
                    events.append((j, kept))
            if events:
                partial[t] = events
        return crashes_row, partial

    # --------------------------------------------------------------- the rounds
    def _apply_path_groups(
        self,
        new_pos: "np.ndarray",
        new_stat: "np.ndarray",
        new_count: "np.ndarray",
        new_occ: Optional["np.ndarray"],
        new_present: "np.ndarray",
        new_leaf: "np.ndarray",
        g_trial: "np.ndarray",
        g_sig: "np.ndarray",
        sent_m: "np.ndarray",
        victim_m: "np.ndarray",
    ) -> None:
        """Lines 12-21 on every group row at once, level by level.

        The ``<R`` interleaving of movers and purges is realized against
        frozen round-start capacities: purges post capacity-credit events
        keyed by their priority, clean nodes admit by grouped rank, and
        only nodes holding both purge credit and arrivals replay the
        exact event merge sequentially (rare: a node's subtree must lose
        a silent ball and receive arrivals in the same round).
        """
        topo = self._topo
        M = topo.node_count
        H = topo.height
        n = self.n
        G = new_pos.shape[0]
        span = topo.span
        depth = topo.depth
        fc = new_count.reshape(-1)
        focc = new_occ.reshape(-1) if new_occ is not None else None
        lifecycle = self._halt_on_name
        present = new_pos >= 0
        delivered = sent_m & (~victim_m | g_sig)
        # Frozen round-start capacity; purges must not open quota for
        # <R-earlier arrivals, so they go into the credit ledger instead.
        quota0 = (span[np.newaxis, :] - new_count).reshape(-1).copy()
        silent = present & ~delivered
        if lifecycle:
            silent &= new_stat != _ANNOUNCED
        credit = None
        purges = None
        pg, pi = np.nonzero(silent)
        if pg.size:
            credit = np.zeros(fc.size, dtype=np.int32)
            ppos = new_pos[pg, pi]
            pdep = depth[ppos]
            pleaf = span[ppos] == 1
            new_pos[pg, pi] = -1
            new_stat[pg, pi] = _ACTIVE
            new_present -= np.bincount(pg, minlength=G).astype(np.int32)
            if pleaf.any():
                new_leaf -= np.bincount(
                    pg[pleaf], minlength=G
                ).astype(np.int32)
            gb = pg * np.int64(M)
            self._chain_add(fc, gb, ppos, -1)
            self._chain_add(credit, gb, ppos, 1)
            if pleaf.any() and focc is not None:
                self._chain_add(focc, gb[pleaf], ppos[pleaf], -1)
            # Event lists for the (rare) purge-dirtied admission nodes
            # are reconstructed on demand in _admit_dirty from these.
            purges = (pg, pi, ppos, pdep)
        # Movers: delivered balls whose recorded path resumes from this
        # class's position (the columnar ghost rule: the position must
        # sit on the path strictly before its end, else the ball stays).
        mg, mi = np.nonzero(present & delivered)
        if mg.size == 0:
            return
        mball = g_trial[mg] * np.int64(n) + mi
        sd = self._start_depth[mball]
        ed = self._end_depth[mball]
        p = new_pos[mg, mi]
        dp = depth[p]
        valid = (sd <= dp) & (dp < ed) & (self._path[mball, dp] == p)
        keepm = np.flatnonzero(valid)
        if keepm.size == 0:
            return
        mg = mg[keepm]
        mi = mi[keepm]
        mball = mball[keepm]
        dp = dp[keepm]
        ed = ed[keepm]
        # <R order: deeper start first, ties by ball index (stable).
        order = np.argsort(
            mg * np.int64(H + 1) + (H - dp), kind="stable"
        )
        mg = mg[order]
        mi = mi[order]
        mball = mball[order]
        dp = dp[order]
        ed = ed[order]
        advancing = np.ones(mg.size, dtype=bool)
        gbase = mg * np.int64(M)
        for level in range(1, H + 1):
            elig = advancing & (dp < level) & (level <= ed)
            sel = np.flatnonzero(elig)
            if sel.size == 0:
                continue
            child = self._path[mball[sel], level]
            gid = gbase[sel] + child
            arrivals = np.bincount(gid, minlength=fc.size)
            admitted = np.ones(sel.size, dtype=bool)
            if credit is not None:
                is_dirty = credit[gid] > 0
                crowd = ~is_dirty & (arrivals[gid] > quota0[gid])
            else:
                is_dirty = None
                crowd = arrivals[gid] > quota0[gid]
            if crowd.any():
                cpos_ = np.flatnonzero(crowd)
                cgid = gid[cpos_]
                admitted[cpos_] = _grouped_ranks(cgid) < quota0[cgid]
            if is_dirty is not None and is_dirty.any():
                self._admit_dirty(
                    gid, is_dirty, admitted, quota0, purges,
                    dp[sel], mi[sel],
                )
            if not admitted.all():
                advancing[sel[~admitted]] = False
            msel = sel[admitted]
            if msel.size == 0:
                continue
            if admitted.all():
                np.add(fc, arrivals, out=fc, casting="unsafe")
            else:
                np.add(
                    fc,
                    np.bincount(gid[admitted], minlength=fc.size),
                    out=fc,
                    casting="unsafe",
                )
            mchild = child[admitted]
            new_pos[mg[msel], mi[msel]] = mchild
            leaf_hit = span[mchild] == 1
            if leaf_hit.any():
                lg = mg[msel][leaf_hit]
                new_leaf += np.bincount(lg, minlength=G).astype(np.int32)
                if focc is not None:
                    self._chain_add(
                        focc, lg * np.int64(M), mchild[leaf_hit], 1
                    )

    def _admit_dirty(
        self,
        gid: "np.ndarray",
        is_dirty: "np.ndarray",
        admitted: "np.ndarray",
        quota0: "np.ndarray",
        purges: Any,
        dp: "np.ndarray",
        mi: "np.ndarray",
    ) -> None:
        """Replay arrivals against purge-credit events at dirty nodes.

        Arrivals reach here already in ``<R`` order per node; a purge at
        ``p0`` posted one capacity credit at every ancestor, carrying the
        priority key the columnar depth buckets gave it, so a sorted
        two-stream merge reproduces the sequential capacity evolution
        exactly.  Each dirty node's event list is rebuilt here from the
        round's purge table (the purges whose position sits in the
        node's subtree) — almost every round has purges, almost no node
        has both credit and arrivals.
        """
        topo = self._topo
        M = topo.node_count
        lo = topo.lo
        hi = topo.hi
        pg, pi, ppos, pdep = purges
        by_gid: Dict[int, List[int]] = {}
        gid_l = gid.tolist()
        for k in np.flatnonzero(is_dirty).tolist():
            by_gid.setdefault(gid_l[k], []).append(k)
        dp_l = dp.tolist()
        mi_l = mi.tolist()
        for gidval, ks in by_gid.items():
            g, a = divmod(gidval, M)
            sel = (pg == g) & (lo[a] <= lo[ppos]) & (hi[ppos] <= hi[a])
            events = sorted(
                zip(pdep[sel].tolist(), pi[sel].tolist()),
                key=lambda e: (-e[0], e[1]),
            )
            cap = int(quota0[gidval])
            ei = 0
            ne = len(events)
            for k in ks:
                akey = (-dp_l[k], mi_l[k])
                while ei < ne and (-events[ei][0], events[ei][1]) < akey:
                    cap += 1
                    ei += 1
                if cap > 0:
                    cap -= 1
                else:
                    admitted[k] = False

    def _apply_pos_groups(
        self,
        new_pos: "np.ndarray",
        new_stat: "np.ndarray",
        new_count: "np.ndarray",
        new_occ: Optional["np.ndarray"],
        new_present: "np.ndarray",
        new_leaf: "np.ndarray",
        g_trial: "np.ndarray",
        g_sig: "np.ndarray",
        sent_m: "np.ndarray",
        victim_m: "np.ndarray",
    ) -> None:
        """Lines 22-28 on every group row at once (order-independent)."""
        topo = self._topo
        M = topo.node_count
        n = self.n
        G = new_pos.shape[0]
        span = topo.span
        fc = new_count.reshape(-1)
        focc = new_occ.reshape(-1) if new_occ is not None else None
        lifecycle = self._halt_on_name
        present = new_pos >= 0
        delivered = sent_m & (~victim_m | g_sig)
        ann = self._announced.reshape(self.trials, n)[g_trial]
        live = present & delivered
        tg, ti = np.nonzero(live & (ann != new_pos))
        if tg.size:
            old = new_pos[tg, ti]
            newp = ann[tg, ti]
            gb = tg * np.int64(M)
            self._chain_add(fc, gb, old, -1)
            self._chain_add(fc, gb, newp, 1)
            oldleaf = span[old] == 1
            newleaf = span[newp] == 1
            if oldleaf.any():
                new_leaf -= np.bincount(
                    tg[oldleaf], minlength=G
                ).astype(np.int32)
                if focc is not None:
                    self._chain_add(focc, gb[oldleaf], old[oldleaf], -1)
            if newleaf.any():
                new_leaf += np.bincount(
                    tg[newleaf], minlength=G
                ).astype(np.int32)
                if focc is not None:
                    self._chain_add(focc, gb[newleaf], newp[newleaf], 1)
            new_pos[tg, ti] = newp
        if lifecycle:
            lg, li = np.nonzero(live)
            if lg.size:
                a = ann[lg, li]
                new_stat[lg, li] = np.where(
                    span[a] == 1, np.uint8(_ANNOUNCED), np.uint8(_ACTIVE)
                )
        silent = present & ~delivered
        if lifecycle:
            silent &= new_stat != _ANNOUNCED
        pg, pi = np.nonzero(silent)
        if pg.size:
            ppos = new_pos[pg, pi]
            pleaf = span[ppos] == 1
            new_pos[pg, pi] = -1
            new_stat[pg, pi] = _ACTIVE
            new_present -= np.bincount(pg, minlength=G).astype(np.int32)
            gb = pg * np.int64(M)
            self._chain_add(fc, gb, ppos, -1)
            if pleaf.any():
                new_leaf -= np.bincount(
                    pg[pleaf], minlength=G
                ).astype(np.int32)
                if focc is not None:
                    self._chain_add(focc, gb[pleaf], ppos[pleaf], -1)

    def _chain_add(
        self,
        arr: "np.ndarray",
        base: "np.ndarray",
        start: "np.ndarray",
        delta: int,
    ) -> None:
        """``arr[base + v] += delta`` along every root chain from ``start``."""
        parent = self._topo.parent
        walk = start
        b = base
        while walk.size:
            np.add.at(arr, b + walk, delta)
            nxt = parent[walk]
            keep = nxt != -1
            walk = nxt[keep]
            b = b[keep]

    # ------------------------------------------------------------- path choice
    def _choose_paths(self, round_no: int, senders: "np.ndarray") -> None:
        """Each sender's candidate path against *its own* class row."""
        topo = self._topo
        M = topo.node_count
        c = self.cls_of[senders]
        j = self._jcol[senders]
        start = self._cpos[c, j]
        sd = topo.depth[start]
        self._path[senders, sd] = start
        self._start_depth[senders] = sd
        self._end_depth[senders] = sd
        policy = self._policy
        phase = round_no // 2
        nonleaf = ~topo.is_leaf[start]
        cbase = c * np.int64(M)
        if policy == "random" or (policy == "hybrid" and phase > 1):
            walkers = np.flatnonzero(nonleaf)
            if walkers.size:
                self._walk_random(
                    senders[walkers], start[walkers], cbase[walkers]
                )
            return
        if policy == "hybrid":
            pres = self._cpos >= 0
            rank_all = np.cumsum(pres, axis=1) - pres
            rank = rank_all[c, j]
            target = np.minimum(topo.lo[start] + rank, topo.hi[start] - 1)
            walkers = np.flatnonzero(nonleaf)
            if walkers.size:
                self._walk_to_rank(
                    senders[walkers], start[walkers], target[walkers]
                )
            return
        occ = self._cocc.reshape(-1)
        free = topo.span[start] - occ[cbase + start]
        if policy == "rank":
            go = np.flatnonzero(nonleaf & (free > 0))
            if go.size:
                rank = self._ranks_at_node()[c[go], j[go]]
                self._walk_to_kth_free(
                    senders[go], start[go], cbase[go],
                    np.minimum(rank, free[go] - 1),
                )
            return
        if policy == "leftmost":
            go = np.flatnonzero(nonleaf & (free > 0))
            if go.size:
                self._walk_to_kth_free(
                    senders[go], start[go], cbase[go],
                    np.zeros(go.size, dtype=np.int64),
                )
            fallback = np.flatnonzero(nonleaf & (free <= 0))
            if fallback.size:
                self._walk_to_rank(
                    senders[fallback], start[fallback],
                    topo.lo[start[fallback]],
                )
            return
        raise ConfigurationError(
            f"policy {policy!r} is not columnar-modeled"
        )

    def _ranks_at_node(self) -> "np.ndarray":
        """Label rank of every present ball among the balls at its node,
        per class row (the columnar ``rank_here`` memo, all at once)."""
        M = self._topo.node_count
        cc, ii = np.nonzero(self._cpos >= 0)
        keys = cc * np.int64(M) + self._cpos[cc, ii]
        out = np.zeros((self._crows, self.n), dtype=np.int64)
        out[cc, ii] = _grouped_ranks(keys)
        return out

    def _draw(self, balls: "np.ndarray") -> "np.ndarray":
        bank = self._bank
        if bank is None:
            bank = self._bank = MTStreamBank(
                derive_ball_seeds(self._trial_seeds, self.labels),
                block=max(4, self._topo.height),
            )
        return bank.draws(balls)

    def _walk_random(
        self, idx: "np.ndarray", cur: "np.ndarray", base: "np.ndarray"
    ) -> None:
        """The failure-free engine's random walk against class rows."""
        topo = self._topo
        span = topo.span
        count = self._ccount.reshape(-1)
        dcur = topo.depth[cur]
        while idx.size:
            left = topo.left[cur]
            right = topo.right[cur]
            raw_l = span[left] - count[base + left]
            raw_r = span[right] - count[base + right]
            cap_l = np.maximum(raw_l, 0)
            total = cap_l + np.maximum(raw_r, 0)
            forced = total <= 0
            go_left = np.empty(idx.size, dtype=bool)
            if forced.any():
                go_left[forced] = raw_l[forced] >= raw_r[forced]
            free = ~forced
            if free.any():
                draws = self._draw(idx[free])
                go_left[free] = draws < cap_l[free] / total[free]
            cur = np.where(go_left, left, right)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx = idx[keep]
                cur = cur[keep]
                dcur = dcur[keep]
                base = base[keep]

    def _walk_to_rank(
        self, idx: "np.ndarray", cur: "np.ndarray", target: "np.ndarray"
    ) -> None:
        topo = self._topo
        dcur = topo.depth[cur]
        while idx.size:
            cur = np.where(
                target < topo.mid[cur], topo.left[cur], topo.right[cur]
            )
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx = idx[keep]
                cur = cur[keep]
                dcur = dcur[keep]
                target = target[keep]

    def _walk_to_kth_free(
        self,
        idx: "np.ndarray",
        cur: "np.ndarray",
        base: "np.ndarray",
        k: "np.ndarray",
    ) -> None:
        topo = self._topo
        span = topo.span
        occ = self._cocc.reshape(-1)
        dcur = topo.depth[cur]
        remaining = k
        while idx.size:
            left = topo.left[cur]
            free_left = np.maximum(span[left] - occ[base + left], 0)
            go_left = remaining < free_left
            cur = np.where(go_left, left, topo.right[cur])
            remaining = np.where(go_left, remaining, remaining - free_left)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx = idx[keep]
                cur = cur[keep]
                dcur = dcur[keep]
                remaining = remaining[keep]
                base = base[keep]

    # ---------------------------------------------------------------- results
    def last_round_named(self, t: int) -> Optional[int]:
        """Latest naming round of a *correct* ball of trial ``t``."""
        s = slice(t * self.n, (t + 1) * self.n)
        named = self.round_named[s]
        ok = ~self.crashed[s] & (named >= 0)
        return int(named[ok].max()) if ok.any() else None
