"""Trial-stacked Balls-into-Leaves: a whole scenario cell as array passes.

The columnar engine (:mod:`repro.core.columnar`) removed the per-ball
object machinery but still advances *one trial at a time* with
Python-level loops over balls.  A scenario-matrix cell re-runs those
loops once per seed — for the paper's experiment shape (many independent
trials of one ``(algorithm, n, adversary)`` cell) the interpreter cost
dominates.  This module stacks an entire cell of ``T`` failure-free
trials into ``(T * n,)`` NumPy columns over the shared array-indexed
topology and advances *all trials one lock-step round per ufunc pass*.

Exactness is the design constraint, not a best effort: every trial's
:class:`~repro.sim.simulator.SimulationResult` is bit-for-bit the
columnar/reference kernels' (asserted by
``tests/sim/test_vectorized_equivalence.py``).  Three ideas make the
stacking exact:

* **RNG** — per-ball Mersenne-Twister streams are reproduced by
  :class:`repro.core.mt19937.MTStreamBank` (vectorized CPython-MT), so a
  ball draws the same doubles at the same walk steps as under the
  scalar engines.
* **Movement** — the reference moves balls in ``<R`` order, each walking
  its candidate path while child capacity remains.  Because balls only
  ever *enter* subtrees during a round, a ball reaches node ``v`` iff
  its ``<R`` rank among the round's arrivals at ``v`` is below ``v``'s
  round-start free capacity.  That reformulation runs level by level as
  grouped admission quotas — no per-trial sequential loop — and only
  over-subscribed nodes (rare) need an actual within-group ranking.
* **Thresholds** — path-choice probabilities are pure functions of the
  frozen pre-round counts; recomputing them per ball vectorized yields
  the identical IEEE-754 doubles the scalar memo produced.

Supported grid: failure-free runs of the BiL-family policies on the
shared view store, matching :func:`vectorized_rejections`.  Everything
else (crashes, faithful views, traces, ...) stays on the columnar or
reference engines via kernel fallback.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.ids import require_distinct
from repro.tree.topology import cached_topology
from repro.core.columnar import SUPPORTED_POLICIES
from repro.core.config import BallsIntoLeavesConfig
from repro.core.mt19937 import HAVE_NUMPY, MTStreamBank

if HAVE_NUMPY:
    import numpy as np

BallId = Hashable


def vectorized_rejections(config: BallsIntoLeavesConfig) -> List[str]:
    """Why this config cannot run trial-stacked (empty = it can).

    The stacked layout models exactly the columnar failure-free grid;
    the adversary/trace/phase-stat gates live in the kernel layer, which
    also knows about the run request.
    """
    reasons = []
    if not HAVE_NUMPY:
        reasons.append(
            "numpy is not installed (the vectorized kernel is the "
            "`pip install .[fast]` extra)"
        )
    if config.path_policy not in SUPPORTED_POLICIES:
        reasons.append(
            f"path policy {config.path_policy!r} is not columnar-modeled "
            f"(supported: {SUPPORTED_POLICIES})"
        )
    if config.view_mode != "shared":
        reasons.append(
            f"view mode {config.view_mode!r} asks for the reference "
            "engine's store (faithful = the paper-verbatim per-ball trees)"
        )
    if config.check_invariants:
        reasons.append("check_invariants instruments the reference movement code")
    if config.movement_order != "priority":
        reasons.append(
            f"movement order {config.movement_order!r} is an ablation of the "
            "reference engine"
        )
    if not config.sync_positions:
        reasons.append("one-round phases (sync_positions=False) are an ablation")
    return reasons


def derive_ball_seeds(trial_seeds: Sequence[int], labels: Sequence[BallId]):
    """``derive_seed(seed, "ball", label)`` for a whole cell, batched.

    Bit-identical to :func:`repro.sim.rng.derive_seed` (asserted in the
    stream tests): the SHA-256 material of a ball stream is
    ``repr((int(seed), repr("ball"), repr(label)))``, whose per-trial
    head and per-ball tail are each built once instead of ``T * n``
    times.  Returns a ``(T * n,)`` uint64 array, trial-major.
    """
    sha = hashlib.sha256
    tails = [(repr(repr(label)) + ")").encode("utf-8") for label in labels]
    digests = bytearray()
    for seed in trial_seeds:
        head = ("(%r, \"'ball'\", " % int(seed)).encode("utf-8")
        for tail in tails:
            digests += sha(head + tail).digest()[:8]
    return np.frombuffer(bytes(digests), dtype=">u8").astype(np.uint64)


class _VecTopology:
    """The :class:`~repro.tree.arrays.TopologyArrays` lists as ndarrays."""

    __slots__ = (
        "n", "node_count", "height", "root",
        "left", "right", "parent", "span", "depth", "leaf_rank",
        "mid", "lo", "hi", "is_leaf",
    )

    def __init__(self, n: int) -> None:
        arr = cached_topology(n).arrays()
        i32 = np.int32
        self.n = n
        self.node_count = len(arr.nodes)
        self.height = arr.topology.height
        self.root = arr.root
        self.left = np.array(arr.left, dtype=i32)
        self.right = np.array(arr.right, dtype=i32)
        self.parent = np.array(arr.parent, dtype=i32)
        self.span = np.array(arr.span, dtype=i32)
        self.depth = np.array(arr.depth, dtype=i32)
        self.leaf_rank = np.array(arr.leaf_rank, dtype=i32)
        self.mid = np.array(arr.mid, dtype=i32)
        self.lo = np.array([node[0] for node in arr.nodes], dtype=i32)
        self.hi = np.array([node[1] for node in arr.nodes], dtype=i32)
        self.is_leaf = self.left == -1


def _grouped_ranks(keys: "np.ndarray") -> "np.ndarray":
    """Rank of each element within its key group, input order preserved.

    The segmented-cumcount kernel shared by label ranking (rank policy)
    and over-subscribed admission: a stable sort groups equal keys while
    keeping the caller's order — which *is* the tie-break order (label
    rank, ``<R``) at every call site — so the in-group offset is the rank.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.empty(sorted_keys.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    offsets = np.arange(sorted_keys.size, dtype=np.int64)
    offsets -= np.repeat(starts, np.diff(np.append(starts, sorted_keys.size)))
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = offsets
    return ranks


@lru_cache(maxsize=16)
def vectorized_topology(n: int) -> "_VecTopology":
    """Shared ndarray topology per ``n``.

    Bounded like ``cached_topology`` (same 16: the eight EXP-T2
    ``--scale deep`` sizes plus interleaved smoke sizes must not
    thrash), and strictly smaller per entry — flat ndarrays, no node
    dictionaries.
    """
    return _VecTopology(n)


class VectorizedCellEngine:
    """``T`` stacked failure-free runs of one cell, lock-step by rounds.

    Drive with :meth:`run`; afterwards the per-ball outcome arrays
    (``decision``, ``round_named``, ``round_halted``) and the per-trial
    ``rounds`` / message counters hold every trial's result, in the
    exact values the scalar engines produce trial by trial.

    Balls are indexed trial-major: stream/ball ``s`` is trial ``s // n``,
    label rank ``s % n``; tree state is a ``(T * node_count,)`` flat
    column indexed by ``t * node_count + node``.
    """

    def __init__(
        self,
        ids: Sequence[BallId],
        trial_seeds: Sequence[int],
        *,
        policy: str = "random",
        halt_on_name: bool = False,
        max_rounds: int = 10_000,
    ) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the vectorized engine requires numpy (pip install .[fast])"
            )
        require_distinct(ids)
        if not ids:
            raise ConfigurationError("renaming needs at least one participant")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"policy {policy!r} is not columnar-modeled; "
                f"choose from {SUPPORTED_POLICIES}"
            )
        if not trial_seeds:
            raise ConfigurationError("a stacked cell needs at least one trial")
        self.labels: List[BallId] = sorted(ids)
        self.n = n = len(self.labels)
        self.trials = T = len(trial_seeds)
        self._policy = policy
        self._halt_on_name = halt_on_name
        self._max_rounds = max_rounds
        self._topo = topo = vectorized_topology(n)
        M = topo.node_count
        S = T * n
        self._S = S
        # Stream bank built on first draw, like the scalar engines' lazy
        # per-ball RNGs: deterministic policies never pay for seeding.
        self._trial_seeds = list(trial_seeds)
        self._bank: Optional[MTStreamBank] = None
        # Ball columns (trial-major).
        self._trial = np.repeat(np.arange(T, dtype=np.int64), n)
        self._jcol = np.tile(np.arange(n, dtype=np.int32), T)
        self._tbase = self._trial * M
        self.pos = np.full(S, topo.root, dtype=np.int32)
        self.halted = np.zeros(S, dtype=bool)
        self.decision = np.full(S, -1, dtype=np.int32)
        self.round_named = np.full(S, -1, dtype=np.int32)
        self.round_halted = np.full(S, -1, dtype=np.int32)
        # Shared-view columns.
        self._count = np.zeros(T * M, dtype=np.int32)
        self._span_tiled = np.tile(topo.span, T)
        self._track_leaf_occ = policy in ("rank", "leftmost")
        self._leaf_occ = (
            np.zeros(T * M, dtype=np.int32) if self._track_leaf_occ else None
        )
        self._n_at_leaf = np.zeros(T, dtype=np.int32)
        self.running = np.full(T, n, dtype=np.int32)
        # Per-round candidate paths, rows indexed by absolute node depth.
        self._path = np.zeros((S, topo.height + 1), dtype=np.int32)
        self._end_depth = np.zeros(S, dtype=np.int32)
        # Per-trial metrics trail: (senders, running_after) per round, for
        # trials active that round.
        self.rounds = np.zeros(T, dtype=np.int32)
        self.round_senders: List["np.ndarray"] = []
        self.round_running_after: List["np.ndarray"] = []
        # Persistent round cursor: run() resumes here, so the engine can
        # be driven in segments (the importance-splitting estimator stops
        # at each level, clones survivors, and resumes the clones).
        self._round = 0

    # ------------------------------------------------------------------ driving
    def run(self, stop_after: Optional[int] = None, observer=None) -> None:
        """All trials to completion, mirroring the kernel driving loop.

        ``stop_after`` pauses the stack once that round number has been
        completed (trials stay resumable); ``observer(engine, round_no,
        active)`` is called after every completed round — the hook the
        stacked invariant monitor attaches to.
        """
        round_no = self._round
        while True:
            active = self.running > 0
            if not active.any():
                break
            if stop_after is not None and round_no >= stop_after:
                break
            if round_no >= self._max_rounds:
                raise RoundLimitExceeded(
                    self._max_rounds, int(self.running[active][0])
                )
            round_no += 1
            self._round = round_no
            senders = np.where(active, self.running, 0)
            if round_no == 1:
                self._init_round()
            elif round_no % 2 == 0:
                self._path_round(round_no, active)
            else:
                self._position_round(round_no, active)
            self.rounds[active] = round_no
            self.round_senders.append(senders)
            self.round_running_after.append(np.where(active, self.running, 0))
            if observer is not None:
                observer(self, round_no, active)

    # -------------------------------------------------------- state interchange
    def export_trial_state(self, t: int) -> Dict[str, Any]:
        """Trial ``t``'s protocol state in the engine-independent form
        shared with ``ColumnarBallsEngine.export_state`` (plain lists,
        ``-1`` sentinels for undecided/unnamed)."""
        n = self.n
        M = self._topo.node_count
        balls = slice(t * n, (t + 1) * n)
        nodes = slice(t * M, (t + 1) * M)
        return {
            "pos": self.pos[balls].tolist(),
            "halted": self.halted[balls].tolist(),
            "decision": self.decision[balls].tolist(),
            "round_named": self.round_named[balls].tolist(),
            "round_halted": self.round_halted[balls].tolist(),
            "count": self._count[nodes].tolist(),
            "leaf_occ": (
                self._leaf_occ[nodes].tolist() if self._track_leaf_occ else None
            ),
            "n_at_leaf": int(self._n_at_leaf[t]),
            "running": int(self.running[t]),
        }

    def inject_trial_states(
        self, states: Sequence[Dict[str, Any]], round_no: int
    ) -> None:
        """Load one exported state per trial, as of completed ``round_no``.

        The engine must be freshly constructed with one trial seed per
        state (the clones' derived seeds); the next :meth:`run` resumes
        at round ``round_no + 1`` with fresh per-ball streams — valid
        because the protocol is Markov given the exported state.
        """
        if len(states) != self.trials:
            raise ConfigurationError(
                f"{len(states)} state(s) for {self.trials} stacked trial(s)"
            )
        n = self.n
        M = self._topo.node_count
        for t, state in enumerate(states):
            balls = slice(t * n, (t + 1) * n)
            nodes = slice(t * M, (t + 1) * M)
            self.pos[balls] = state["pos"]
            self.halted[balls] = state["halted"]
            self.decision[balls] = state["decision"]
            self.round_named[balls] = state["round_named"]
            self.round_halted[balls] = state["round_halted"]
            self._count[nodes] = state["count"]
            if self._track_leaf_occ:
                self._leaf_occ[nodes] = state["leaf_occ"]
            self._n_at_leaf[t] = state["n_at_leaf"]
            self.running[t] = state["running"]
        self.rounds[:] = round_no
        self._round = round_no

    # ------------------------------------------------------------------- rounds
    def _init_round(self) -> None:
        """Line 1: every ball announces its label; all start at the root."""
        topo = self._topo
        root_idx = np.arange(self.trials, dtype=np.int64) * topo.node_count + topo.root
        self._count[root_idx] = self.n
        if topo.span[topo.root] == 1:  # n == 1: the root already is a leaf
            if self._leaf_occ is not None:
                self._leaf_occ[root_idx] = self.n
            self._n_at_leaf[:] = self.n

    def _path_round(self, round_no: int, active: "np.ndarray") -> None:
        """Phase round 1: exchange candidate paths, move under ``<R``."""
        topo = self._topo
        ball_active = np.repeat(active, self.n) & ~self.halted
        # A leaf reached before this round's broadcast fixes the name now
        # (the columnar length-1 branch; in practice the n == 1 root-leaf).
        at_leaf = topo.is_leaf[self.pos]
        naming = ball_active & at_leaf & (self.round_named < 0)
        if naming.any():
            idx = np.flatnonzero(naming)
            self.round_named[idx] = round_no
            self.decision[idx] = topo.leaf_rank[self.pos[idx]]
        movers = self._choose_paths(round_no, ball_active, at_leaf)
        if movers.size:
            self._move(round_no, movers)

    def _position_round(self, round_no: int, active: "np.ndarray") -> None:
        """Phase round 2: re-synchronize positions, terminate."""
        topo = self._topo
        all_at_leaves = self._n_at_leaf == self.n
        ball_active = np.repeat(active, self.n) & ~self.halted
        halting = ball_active & np.repeat(all_at_leaves, self.n)
        if self._halt_on_name:
            halting |= ball_active & topo.is_leaf[self.pos]
        if halting.any():
            idx = np.flatnonzero(halting)
            self.round_halted[idx] = round_no
            self.decision[idx] = topo.leaf_rank[self.pos[idx]]
            self.halted[idx] = True
            self.running -= np.bincount(
                self._trial[idx], minlength=self.trials
            ).astype(np.int32)

    # ------------------------------------------------------------- path choice
    def _choose_paths(
        self, round_no: int, ball_active: "np.ndarray", at_leaf: "np.ndarray"
    ) -> "np.ndarray":
        """Fill the path rows of every mover; returns mover indices.

        All choices read the same frozen pre-round view, exactly like the
        scalar engines (broadcasts compose before any delivery).
        """
        policy = self._policy
        phase = round_no // 2
        candidates = np.flatnonzero(ball_active & ~at_leaf)
        if candidates.size == 0:
            return candidates
        self._path[candidates, self._topo.depth[self.pos[candidates]]] = self.pos[
            candidates
        ]
        if policy == "random" or (policy == "hybrid" and phase > 1):
            self._walk_random(candidates)
            return candidates
        if policy == "hybrid":
            # Section 6, phase 1: ball bi aims at the leaf indexed by its
            # label rank (clamped inside its subtree, as in the scalar
            # policy; failure-free everyone is still at the root).
            topo = self._topo
            start = self.pos[candidates]
            target = np.minimum(
                topo.lo[start] + self._jcol[candidates], topo.hi[start] - 1
            )
            self._walk_to_rank(candidates, target)
            return candidates
        if policy == "rank":
            return self._rank_paths(candidates)
        if policy == "leftmost":
            return self._leftmost_paths(candidates)
        raise ConfigurationError(f"policy {policy!r} is not columnar-modeled")

    def _walk_random(self, idx: "np.ndarray") -> None:
        """Algorithm 1 lines 5-10 for every walker, one level per pass.

        Each ball consumes its private stream exactly where the scalar
        walk does: one draw per non-forced inner node, none when both
        children appear full (the larger raw residual wins, ties left).
        """
        topo = self._topo
        span = topo.span
        count = self._count
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        while idx.size:
            left = topo.left[cur]
            right = topo.right[cur]
            base = self._tbase[idx]
            raw_l = span[left] - count[base + left]
            raw_r = span[right] - count[base + right]
            cap_l = np.maximum(raw_l, 0)
            total = cap_l + np.maximum(raw_r, 0)
            forced = total <= 0
            go_left = np.empty(idx.size, dtype=bool)
            if forced.any():
                go_left[forced] = raw_l[forced] >= raw_r[forced]
            free = ~forced
            if free.any():
                bank = self._bank
                if bank is None:
                    # Block = tree height: a full root-to-leaf walk (the
                    # first round's exact consumption) per extension.
                    bank = self._bank = MTStreamBank(
                        derive_ball_seeds(self._trial_seeds, self.labels),
                        block=max(4, self._topo.height),
                    )
                draws = bank.draws(idx[free])
                go_left[free] = draws < cap_l[free] / total[free]
            cur = np.where(go_left, left, right)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx = idx[keep]
                cur = cur[keep]
                dcur = dcur[keep]

    def _walk_to_rank(self, idx: "np.ndarray", target: "np.ndarray") -> None:
        """Deterministic descent toward a leaf rank (``path_to_rank``)."""
        topo = self._topo
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        while idx.size:
            cur = np.where(target < topo.mid[cur], topo.left[cur], topo.right[cur])
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx, cur, dcur, target = (
                    idx[keep], cur[keep], dcur[keep], target[keep],
                )

    def _walk_to_kth_free(self, idx: "np.ndarray", k: "np.ndarray") -> None:
        """``path_to_kth_free_leaf`` descent (callers ensure free > 0)."""
        topo = self._topo
        span = topo.span
        occ = self._leaf_occ
        cur = self.pos[idx]
        dcur = topo.depth[cur]
        remaining = k
        while idx.size:
            left = topo.left[cur]
            free_left = np.maximum(span[left] - occ[self._tbase[idx] + left], 0)
            go_left = remaining < free_left
            cur = np.where(go_left, left, topo.right[cur])
            remaining = np.where(go_left, remaining, remaining - free_left)
            dcur = dcur + 1
            self._path[idx, dcur] = cur
            done = topo.is_leaf[cur]
            if done.any():
                self._end_depth[idx[done]] = dcur[done]
                keep = ~done
                idx, cur, dcur, remaining = (
                    idx[keep], cur[keep], dcur[keep], remaining[keep],
                )

    def _rank_paths(self, candidates: "np.ndarray") -> "np.ndarray":
        """Rank-descent: the k-th free leaf by label rank at the node."""
        topo = self._topo
        start = self.pos[candidates]
        free = topo.span[start] - self._leaf_occ[self._tbase[candidates] + start]
        go = free > 0  # full subtree (or leaf): the ball stays put
        walkers = candidates[go]
        if walkers.size:
            rank = self._rank_at_node(candidates)[go]
            self._walk_to_kth_free(
                walkers, np.minimum(rank, free[go] - 1)
            )
        return walkers

    def _leftmost_paths(self, candidates: "np.ndarray") -> "np.ndarray":
        """Leftmost-free descent, with the full-subtree leftmost fallback."""
        topo = self._topo
        start = self.pos[candidates]
        free = topo.span[start] - self._leaf_occ[self._tbase[candidates] + start]
        go = free > 0
        walkers = candidates[go]
        if walkers.size:
            self._walk_to_kth_free(walkers, np.zeros(walkers.size, dtype=np.int32))
        fallback = candidates[~go]
        if fallback.size:
            # No free leaf below: aim at the subtree's leftmost leaf and
            # let the movement rule park the ball.
            self._walk_to_rank(fallback, topo.lo[self.pos[fallback]])
        return candidates

    def _rank_at_node(self, candidates: "np.ndarray") -> "np.ndarray":
        """Label rank of each candidate among candidates at its node."""
        return _grouped_ranks(self._tbase[candidates] + self.pos[candidates])

    # -------------------------------------------------------------- movement
    def _move(self, round_no: int, movers: "np.ndarray") -> None:
        """Lines 12-21 for all trials at once, level by level.

        ``<R`` says deeper balls move first, ties by label.  Since balls
        only enter subtrees, node ``v`` admits the round's arrivals in
        ``<R`` order up to its round-start free capacity — so each tree
        level is one grouped-quota pass, and only over-subscribed nodes
        need an explicit within-group ranking.
        """
        topo = self._topo
        M = topo.node_count
        start_depth = topo.depth[self.pos[movers]]
        end_depth = self._end_depth[movers]
        # Movers in <R order (trial-major so groups stay contiguous in
        # meaning): stable sort by shallow-last start depth keeps label
        # order inside each depth bucket.
        height = topo.height
        key = self._trial[movers] * np.int64(height + 1) + (height - start_depth)
        order = np.argsort(key, kind="stable")
        P = movers[order]
        p_start = start_depth[order]
        p_end = end_depth[order]
        advancing = np.ones(P.size, dtype=bool)
        quota = self._span_tiled - self._count  # frozen round-start capacity
        count = self._count
        trial = self._trial
        path = self._path
        for level in range(1, height + 1):
            eligible = advancing & (p_start < level) & (level <= p_end)
            sel_pos = np.flatnonzero(eligible)
            if sel_pos.size == 0:
                continue
            sel = P[sel_pos]
            child = path[sel, level]
            gid = self._tbase[sel] + child
            arrivals = np.bincount(gid, minlength=count.size)
            crowded = arrivals[gid] > quota[gid]
            admitted = np.ones(sel.size, dtype=bool)
            if crowded.any():
                # Rank the contested arrivals: sel is already in <R
                # order, so within-node arrival rank is the grouped rank
                # and the first quota[node] arrivals win.
                cpos = np.flatnonzero(crowded)
                cgid = gid[cpos]
                admitted[cpos] = _grouped_ranks(cgid) < quota[cgid]
                advancing[sel_pos[~admitted]] = False
            moved = sel[admitted]
            if moved.size == 0:
                continue
            moved_gid = gid[admitted]
            if admitted.all():
                # No over-subscription: the arrivals histogram *is* the
                # per-node entry count.
                np.add(count, arrivals, out=count, casting="unsafe")
            else:
                np.add(
                    count,
                    np.bincount(moved_gid, minlength=count.size),
                    out=count,
                    casting="unsafe",
                )
            moved_child = child[admitted]
            self.pos[moved] = moved_child
            leaf_hit = topo.is_leaf[moved_child]
            if leaf_hit.any():
                landed = moved[leaf_hit]
                leaves = moved_child[leaf_hit]
                self._n_at_leaf += np.bincount(
                    trial[landed], minlength=self.trials
                ).astype(np.int32)
                self.round_named[landed] = round_no
                self.decision[landed] = topo.leaf_rank[leaves]
                if self._leaf_occ is not None:
                    base = self._tbase[landed]
                    walk = leaves
                    while walk.size:
                        np.add.at(self._leaf_occ, base + walk, 1)
                        walk = topo.parent[walk]
                        keep = walk != -1
                        if not keep.all():
                            walk = walk[keep]
                            base = base[keep]

    # ---------------------------------------------------------------- results
    def last_round_named(self, t: int) -> Optional[int]:
        """Latest round at which any ball of trial ``t`` fixed its name."""
        named = self.round_named[t * self.n : (t + 1) * self.n]
        top = int(named.max()) if named.size else -1
        return top if top >= 0 else None
