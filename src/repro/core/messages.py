"""Wire format of Algorithm 1.

Three message kinds, all tiny tuples (hashable and cheap to fingerprint,
which the shared-view engine relies on):

* ``("hello",)`` — line 1's label announcement; the sender pid *is* the
  label, so no payload is needed.
* ``("path", (node, ...))`` — line 11, the candidate path, current node
  first, leaf last.
* ``("pos", node)`` — line 22, the round-2 position report.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.tree.node import Node

HELLO = "hello"
PATH = "path"
POSITION = "pos"


def hello_message() -> Tuple[str]:
    """The initialization broadcast (Algorithm 1, line 1)."""
    return (HELLO,)


def path_message(path: Tuple[Node, ...]) -> Tuple[str, Tuple[Node, ...]]:
    """A round-1 candidate-path broadcast (line 11)."""
    return (PATH, tuple(path))


def position_message(node: Node) -> Tuple[str, Node]:
    """A round-2 position broadcast (line 22)."""
    return (POSITION, node)


def parse_path(payload: Any) -> Optional[Tuple[Node, ...]]:
    """The path carried by ``payload``, or None if it is not a path message."""
    if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == PATH:
        return payload[1]
    return None


def parse_position(payload: Any) -> Optional[Node]:
    """The node carried by ``payload``, or None if not a position message."""
    if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == POSITION:
        return payload[1]
    return None


def is_hello(payload: Any) -> bool:
    """True if ``payload`` is the initialization announcement."""
    return isinstance(payload, tuple) and len(payload) == 1 and payload[0] == HELLO
