"""Per-phase tree statistics, feeding the Lemma 6 / Lemma 10 experiments.

The observer samples a *reference view* (the lowest-labelled ball still
alive) after every position round — the moment the paper's per-phase
quantities are well defined — and records the measures used in the
complexity analysis: ``bmax`` (Lemma 6), the maximum path population
(Lemmas 9-10), and how many balls have reached leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.views import SharedViewStore, ViewStore
from repro.errors import SimulationError


@dataclass(frozen=True)
class PhaseStats:
    """Tree measures at the end of one phase, in the reference view."""

    phase: int
    round_no: int
    balls: int
    balls_at_leaves: int
    bmax_inner: int
    max_path_population: int
    occupancy_by_depth: Dict[int, int]
    view_classes: int


class TreeStatsObserver:
    """Simulator observer collecting :class:`PhaseStats` each phase.

    Attach via ``Simulation(observers=[observer])``; it is cheap for the
    tree sizes used in experiments (O(occupied nodes * height) per phase).
    """

    def __init__(self, store: ViewStore) -> None:
        self._store = store
        self.phases: List[PhaseStats] = []

    def __call__(self, simulation: Any, round_no: int) -> None:
        # Rounds: 1 = hello, then (2*phi, 2*phi + 1) = phase phi.  Sample
        # at the end of each position round.
        if round_no < 3 or round_no % 2 == 0:
            return
        reference = self._reference_pid(simulation)
        if reference is None:
            return
        try:
            view = self._store.view_of(reference)
        except SimulationError:
            # The reference ball crashed before its view was initialized
            # ("ball ... has no initialized view"); skip the sample.  Any
            # other failure is an engine bug and must propagate.
            return
        classes = (
            self._store.class_count()
            if isinstance(self._store, SharedViewStore)
            else len(simulation.alive())
        )
        self.phases.append(
            PhaseStats(
                phase=(round_no - 1) // 2,
                round_no=round_no,
                balls=len(view),
                balls_at_leaves=view.balls_at_leaves(),
                bmax_inner=view.max_inner_occupancy(),
                max_path_population=view.max_path_population(),
                occupancy_by_depth=view.occupancy_by_depth(),
                view_classes=classes,
            )
        )

    def bmax_trajectory(self) -> List[int]:
        """``bmax`` per phase, the quantity bounded by Lemma 6."""
        return [stats.bmax_inner for stats in self.phases]

    def path_population_trajectory(self) -> List[int]:
        """Maximum path population per phase (Lemmas 9-10)."""
        return [stats.max_path_population for stats in self.phases]

    @staticmethod
    def _reference_pid(simulation: Any) -> Optional[object]:
        candidates = simulation.alive()
        if not candidates:
            return None
        return min(candidates, key=repr)
