"""Per-phase tree statistics and runtime stage telemetry.

Two instrumentation layers live here:

* :class:`TreeStatsObserver` samples a *reference view* (the lowest-
  labelled ball still alive) after every position round — the moment the
  paper's per-phase quantities are well defined — and records the
  measures used in the complexity analysis: ``bmax`` (Lemma 6), the
  maximum path population (Lemmas 9-10), and how many balls have reached
  leaves.

* :class:`StageTimers` is lightweight wall-clock telemetry over the
  runtime's hot stages (RNG ``seeding``, MT ``twist`` passes, engine
  ``movement`` rounds, ``monitor`` screens).  It is **off by default**
  and costs one attribute read per hook when disabled.  Timings are
  wall-clock by nature, so they never touch a result row — the CLI
  emits them as a separate trailing ``telemetry`` jsonl record, and
  lint rule D106 statically bans clock reads inside trace/telemetry
  *payload* recording.  The module-level :data:`TIMERS` collector is
  per-process: under the process executor it observes the coordinating
  process only (worker time shows up as executor elapsed, not stages).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.views import SharedViewStore, ViewStore
from repro.errors import SimulationError

#: The runtime stages :class:`StageTimers` knows how to attribute.
TELEMETRY_STAGES = ("seeding", "twist", "movement", "monitor")


@dataclass
class StageStats:
    """Accumulated wall-clock time and call count for one stage."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class StageTimers:
    """Opt-in per-stage wall-clock accumulators (see module docstring).

    Usage at a hook site::

        started = TIMERS.start()
        ...the timed stage...
        TIMERS.stop("movement", started)

    ``start`` returns 0.0 when disabled, and ``stop`` is then a no-op;
    both clock reads live inside this class so hook sites stay free of
    wall-clock calls (and of D102 waivers).
    """

    enabled: bool = False
    stages: Dict[str, StageStats] = field(default_factory=dict)

    def enable(self) -> None:
        """Start collecting (cleared first, so snapshots are per-run)."""
        self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.stages.clear()

    def start(self) -> float:
        """A stage start mark, or 0.0 when telemetry is off."""
        if not self.enabled:
            return 0.0
        # repro: lint-ok[D102] wall-clock telemetry only; stage timings never feed a result row or an RNG
        return time.perf_counter()

    def stop(self, stage: str, started: float) -> None:
        """Attribute the time since ``started`` to ``stage``."""
        if not self.enabled:
            return
        # repro: lint-ok[D102] wall-clock telemetry only; stage timings never feed a result row or an RNG
        elapsed = time.perf_counter() - started
        stats = self.stages.get(stage)
        if stats is None:
            stats = self.stages[stage] = StageStats()
        stats.calls += 1
        stats.seconds += elapsed

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready ``{stage: {calls, seconds}}`` in stage order."""
        ordered = [s for s in TELEMETRY_STAGES if s in self.stages]
        ordered += sorted(set(self.stages) - set(TELEMETRY_STAGES))
        return {
            stage: {
                "calls": self.stages[stage].calls,
                "seconds": self.stages[stage].seconds,
            }
            for stage in ordered
        }


#: The process-wide collector every hook reports to.  Enable with
#: ``TIMERS.enable()`` (the CLI's ``--telemetry`` flag does) and read
#: with ``TIMERS.snapshot()``.
TIMERS = StageTimers()


@dataclass(frozen=True)
class PhaseStats:
    """Tree measures at the end of one phase, in the reference view."""

    phase: int
    round_no: int
    balls: int
    balls_at_leaves: int
    bmax_inner: int
    max_path_population: int
    occupancy_by_depth: Dict[int, int]
    view_classes: int


class TreeStatsObserver:
    """Simulator observer collecting :class:`PhaseStats` each phase.

    Attach via ``Simulation(observers=[observer])``; it is cheap for the
    tree sizes used in experiments (O(occupied nodes * height) per phase).
    """

    def __init__(self, store: ViewStore) -> None:
        self._store = store
        self.phases: List[PhaseStats] = []

    def __call__(self, simulation: Any, round_no: int) -> None:
        # Rounds: 1 = hello, then (2*phi, 2*phi + 1) = phase phi.  Sample
        # at the end of each position round.
        if round_no < 3 or round_no % 2 == 0:
            return
        reference = self._reference_pid(simulation)
        if reference is None:
            return
        try:
            view = self._store.view_of(reference)
        except SimulationError:
            # The reference ball crashed before its view was initialized
            # ("ball ... has no initialized view"); skip the sample.  Any
            # other failure is an engine bug and must propagate.
            return
        classes = (
            self._store.class_count()
            if isinstance(self._store, SharedViewStore)
            else len(simulation.alive())
        )
        self.phases.append(
            PhaseStats(
                phase=(round_no - 1) // 2,
                round_no=round_no,
                balls=len(view),
                balls_at_leaves=view.balls_at_leaves(),
                bmax_inner=view.max_inner_occupancy(),
                max_path_population=view.max_path_population(),
                occupancy_by_depth=view.occupancy_by_depth(),
                view_classes=classes,
            )
        )

    def bmax_trajectory(self) -> List[int]:
        """``bmax`` per phase, the quantity bounded by Lemma 6."""
        return [stats.bmax_inner for stats in self.phases]

    def path_population_trajectory(self) -> List[int]:
        """Maximum path population per phase (Lemmas 9-10)."""
        return [stats.max_path_population for stats in self.phases]

    @staticmethod
    def _reference_pid(simulation: Any) -> Optional[object]:
        candidates = simulation.alive()
        if not candidates:
            return None
        return min(candidates, key=repr)
