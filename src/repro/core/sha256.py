"""Pure-NumPy single-block SHA-256 over stacked uint32 lanes.

Every ball-stream seed in :func:`repro.core.vectorized.derive_ball_seeds`
hashes one short ``repr`` tuple — at most 55 bytes of message, i.e. a
*single* padded SHA-256 block.  The scalar path pays one ``hashlib``
object construction plus Python call overhead per (trial, ball) stream;
for a stacked cell that is ``T * n`` hash calls before the first round
runs, and BENCH_kernel.json shows it as the dominant share of the
RNG-seeding floor.

This module runs the whole batch as one compression pass: the ``(B, 64)``
padded block matrix is viewed as big-endian words, and the 64-round
schedule + state update execute as ufunc passes over ``(B,)`` uint32
lanes (NumPy's modular uint32 arithmetic is exactly the spec's mod-2**32
arithmetic).  Word-exactness against ``hashlib.sha256`` for every
message shape is asserted by ``tests/core/test_sha256.py``; the stream
and differential suites then rest on it.

Messages longer than :data:`MAX_SINGLE_BLOCK` bytes (not produced by any
current seed scope, but reachable through exotic labels) and builds
without NumPy take the byte-identical ``hashlib`` fallback.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

from repro import config as repro_config

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Longest message that fits one padded block: 64 bytes minus the 0x80
#: terminator and the 8-byte big-endian bit length.
MAX_SINGLE_BLOCK = 55

#: Below this many lanes the ufunc overhead of the ~2800-pass compression
#: cannot amortize regardless of the backend, so the lane path never
#: engages there even when forced on.
MIN_LANES = 192


def use_lanes(count: int) -> bool:
    """Whether a ``count``-message batch should take the lane path.

    ``REPRO_SHA256_LANES=on`` forces the NumPy lanes (bit-identical by
    the word-exactness suite), ``off`` pins the scalar path, and the
    default ``auto`` currently resolves to the scalar path: OpenSSL's
    SIMD/SHA-NI C implementation behind ``hashlib`` outruns ~2800
    interpreted ufunc passes at every batch size measured (see the
    ``rng_share`` microbenchmark in BENCH_kernel.json) — the lane
    backend exists for builds where that C path is slow, and as the
    measured baseline that redirected this optimisation at the seeding
    loops instead.
    """
    if not HAVE_NUMPY or count < MIN_LANES:
        return False
    return repro_config.sha256_lanes() == "on"

#: FIPS 180-4 round constants (fractional cube roots of the first 64
#: primes) and initial state (fractional square roots of the first 8).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


#: Lanes per compression chunk.  All working arrays of a chunk are a few
#: tens of KB — small enough for the allocator's cached bins and the L2
#: working set, which is where the ~2800 ufunc passes spend their time.
_CHUNK = 8192


def _rotr_into(
    x: "np.ndarray", r: int, out: "np.ndarray", scratch: "np.ndarray"
) -> "np.ndarray":
    """``out = rotr(x, r)`` without allocating (scratch is clobbered)."""
    np.right_shift(x, np.uint32(r), out=out)
    np.left_shift(x, np.uint32(32 - r), out=scratch)
    np.bitwise_or(out, scratch, out=out)
    return out


def _sigma_into(
    x: "np.ndarray",
    r1: int,
    r2: int,
    shift: int,
    out: "np.ndarray",
    t1: "np.ndarray",
    t2: "np.ndarray",
) -> "np.ndarray":
    """``out = rotr(x,r1) ^ rotr(x,r2) ^ (x >> shift)`` allocation-free."""
    _rotr_into(x, r1, out, t1)
    _rotr_into(x, r2, t1, t2)
    np.bitwise_xor(out, t1, out=out)
    np.right_shift(x, np.uint32(shift), out=t1)
    np.bitwise_xor(out, t1, out=out)
    return out


def _big_sigma_into(
    x: "np.ndarray",
    r1: int,
    r2: int,
    r3: int,
    out: "np.ndarray",
    t1: "np.ndarray",
    t2: "np.ndarray",
) -> "np.ndarray":
    """``out = rotr(x,r1) ^ rotr(x,r2) ^ rotr(x,r3)`` allocation-free."""
    _rotr_into(x, r1, out, t1)
    _rotr_into(x, r2, t1, t2)
    np.bitwise_xor(out, t1, out=out)
    _rotr_into(x, r3, t1, t2)
    np.bitwise_xor(out, t1, out=out)
    return out


def _compress_chunk(words: "np.ndarray", state: "np.ndarray") -> None:
    """Compress one chunk: ``words`` is ``(B, 16)`` native uint32 message
    words, ``state`` the ``(B, 8)`` output rows."""
    lanes = words.shape[0]
    # Schedule ring: 16 live words, each slot overwritten in place when
    # the round index laps it; K[t] is folded in at production time so
    # the round update adds one array instead of two.
    w = [np.ascontiguousarray(words[:, i]) for i in range(16)]
    wk = [w[i] + np.uint32(_K[i]) for i in range(16)]
    t1 = np.empty(lanes, dtype=np.uint32)
    t2 = np.empty(lanes, dtype=np.uint32)
    t3 = np.empty(lanes, dtype=np.uint32)
    t4 = np.empty(lanes, dtype=np.uint32)
    regs = [np.full(lanes, np.uint32(word)) for word in _H0]
    for t in range(64):
        if t >= 16:
            slot = t & 15
            # w[t] = w[t-16] + s0(w[t-15]) + w[t-7] + s1(w[t-2])
            target = w[slot]  # holds w[t-16]; becomes w[t] in place
            _sigma_into(w[(t - 15) & 15], 7, 18, 3, t1, t3, t4)
            np.add(target, t1, out=target)
            np.add(target, w[(t - 7) & 15], out=target)
            _sigma_into(w[(t - 2) & 15], 17, 19, 10, t1, t3, t4)
            np.add(target, t1, out=target)
            np.add(target, np.uint32(_K[t]), out=wk[slot])
        a, b, c, d, e, f, g, h = regs
        # temp1 accumulates into h (retired this round): h += S1(e) +
        # ch(e,f,g) + (K[t] + w[t]).
        _big_sigma_into(e, 6, 11, 25, t1, t3, t4)
        np.add(h, t1, out=h)
        np.bitwise_xor(f, g, out=t2)
        np.bitwise_and(t2, e, out=t2)
        np.bitwise_xor(t2, g, out=t2)
        np.add(h, t2, out=h)
        np.add(h, wk[t & 15], out=h)
        # temp2 = S0(a) + maj(a,b,c), into t1.
        _big_sigma_into(a, 2, 13, 22, t1, t3, t4)
        np.bitwise_xor(b, c, out=t2)
        np.bitwise_and(t2, a, out=t2)
        np.bitwise_and(b, c, out=t3)
        np.bitwise_xor(t2, t3, out=t2)
        np.add(t1, t2, out=t1)
        np.add(d, h, out=d)  # e' = d + temp1
        np.add(h, t1, out=h)  # a' = temp1 + temp2
        regs = [h, a, b, c, d, e, f, g]
    for i, v in enumerate(regs):
        np.add(v, np.uint32(_H0[i]), out=v)
        state[:, i] = v


def compress_blocks(blocks: "np.ndarray") -> "np.ndarray":
    """One SHA-256 compression of ``(B, 64)`` padded blocks, per lane.

    ``blocks`` is the already-padded 64-byte block of each message
    (terminator and bit length included).  Returns the ``(B, 8)`` uint32
    state words — the big-endian digest, word for word.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    words = blocks.view(">u4").astype(np.uint32)
    lanes = blocks.shape[0]
    state = np.empty((lanes, 8), dtype=np.uint32)
    for start in range(0, lanes, _CHUNK):
        stop = min(lanes, start + _CHUNK)
        _compress_chunk(words[start:stop], state[start:stop])
    return state


def pack_messages(messages: Sequence[bytes]) -> Optional["np.ndarray"]:
    """The ``(B, 64)`` padded block matrix, or None if any message is
    longer than :data:`MAX_SINGLE_BLOCK` bytes."""
    blocks = np.zeros((len(messages), 64), dtype=np.uint8)
    for row, message in enumerate(messages):
        length = len(message)
        if length > MAX_SINGLE_BLOCK:
            return None
        blocks[row, :length] = np.frombuffer(message, dtype=np.uint8)
        blocks[row, length] = 0x80
        bits = length * 8
        blocks[row, 62] = bits >> 8
        blocks[row, 63] = bits & 0xFF
    return blocks


def digest_first8(messages: Sequence[bytes]) -> List[int]:
    """The first 8 digest bytes of every message as big-endian integers.

    Exactly ``int.from_bytes(hashlib.sha256(m).digest()[:8], "big")`` per
    message (the :func:`repro.sim.rng.derive_seed` truncation), batched
    through the lane compression when NumPy is present and every message
    fits a single block.
    """
    if use_lanes(len(messages)):
        blocks = pack_messages(messages)
        if blocks is not None:
            state = compress_blocks(blocks)
            first8 = (state[:, 0].astype(np.uint64) << np.uint64(32)) | (
                state[:, 1].astype(np.uint64)
            )
            return [int(v) for v in first8]
    sha = hashlib.sha256
    return [
        int.from_bytes(sha(message).digest()[:8], "big")
        for message in messages
    ]
