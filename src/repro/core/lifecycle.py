"""The ball lifecycle: making termination an announced event.

The halt-on-name extension lets a ball stop as soon as it has a name.
The paper sketches the required "additional checks" as: a silent ball
positioned at a leaf is a terminated name holder, so its slot stays
reserved.  That inference from *silence alone* is unsound: a ball that
crashes while broadcasting its candidate *path* can be simulated onto a
leaf in a partial receiver's view, and the silence-at-leaf rule then
retains the ghost as if it had terminated there, reserving forever a
leaf that every other view considers free — the one survivor whose free
leaf it was loops without capacity (``RoundLimitExceeded``).

The sound rule makes termination an *announced* event, in the spirit of
specification-vs-execution runtime checking: a view may retain a silent
ball only if the ball itself **announced** its leaf position (a round-2
position broadcast), never because the view merely *simulated* the ball
onto a leaf from a candidate path.  Equivalently: a silent leaf ball is
retained only if it did not move during the current phase's path round.

:class:`BallStatus` is the per-ball, per-view state machine realizing
this.  Within a view a ball is:

* ``ACTIVE`` — the default; the last processed broadcast from the ball
  was a candidate path or a non-leaf position.  Silence means a crash
  and the ball is removed.
* ``ANNOUNCED`` — the ball's last processed broadcast was a position
  announcement naming a **leaf**, under halt-on-name semantics (where a
  ball halts immediately after announcing its leaf).  Silence is the
  expected behaviour of a terminated holder; the ball is retained and
  its leaf stays reserved.
* ``CRASHED`` — the ball was removed from the view (silence while
  ``ACTIVE``).  Views drop crashed balls entirely, so this value never
  appears inside a live view; the columnar engine uses it for its flat
  per-ball status column.

Transitions (per view, applied by :mod:`repro.core.movement`):

``ACTIVE --(leaf position announced, halt-on-name)--> ANNOUNCED``
``ACTIVE --(silence)--> CRASHED`` (removed)
``ANNOUNCED --(silence)--> ANNOUNCED`` (retained, slot reserved)

An ``ANNOUNCED`` ball can never broadcast again — under halt-on-name a
ball halts in the very round it announces its leaf — so ``ANNOUNCED``
is absorbing for live messages too.  The two view stores
(:mod:`repro.core.views`) carry the status as part of each view's
identity, so equivalence classes with identical positions but different
lifecycle knowledge are never merged.
"""

from __future__ import annotations

from enum import IntEnum


class BallStatus(IntEnum):
    """Per-view lifecycle state of one ball (see module docstring)."""

    ACTIVE = 0
    ANNOUNCED = 1
    CRASHED = 2
