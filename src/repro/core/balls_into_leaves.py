"""Algorithm 1 as a process on the synchronous substrate.

Rounds of a run (lock-step, all balls in the same stage):

* round 1 — line 1: broadcast the label, build the initial tree.
* round ``2*phi``   — phase ``phi`` round 1: broadcast the candidate path,
  then simulate everyone's descent in ``<R`` order (lines 3-21).
* round ``2*phi+1`` — phase ``phi`` round 2: broadcast the current
  position, re-synchronize, terminate if every known ball is at a leaf
  (lines 22-29).

A ball's *name* (the rank of its leaf) is fixed the moment it reaches a
leaf — it can never be displaced (Appendix A) — and the process *halts*
when its whole view is at leaves, exactly as in the pseudocode.  The two
round counts are reported separately by the runner.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.ids import require_distinct
from repro.sim.process import SyncProcess
from repro.sim.rng import derive_rng
from repro.tree import node as nd
from repro.tree.local_view import LocalTreeView
from repro.tree.topology import cached_topology
from repro.core.config import BallsIntoLeavesConfig
from repro.core.messages import hello_message, path_message, position_message
from repro.core.policies import PathPolicy, make_policy
from repro.core.views import ViewStore, make_store

BallId = Hashable

_STAGE_INIT = "init"
_STAGE_PATH = "path"
_STAGE_POSITION = "pos"


class BallProcess(SyncProcess):
    """One ball of the Balls-into-Leaves algorithm.

    Parameters
    ----------
    pid:
        The ball's unique label (the process's original id).
    store:
        The run's :class:`ViewStore`, shared by all balls.
    policy:
        The candidate-path policy; defaults to the config's.
    seed:
        Run seed; the ball derives its private random stream from it.
    """

    def __init__(
        self,
        pid: BallId,
        *,
        store: ViewStore,
        config: Optional[BallsIntoLeavesConfig] = None,
        policy: Optional[PathPolicy] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(pid)
        self._config = config or BallsIntoLeavesConfig()
        self._store = store
        self._policy = policy or make_policy(self._config.path_policy)
        self._rng = derive_rng(seed, "ball", pid)
        self._stage = _STAGE_INIT
        self._phase = 0
        self._round_named: Optional[int] = None
        self._round_halted: Optional[int] = None

    # ------------------------------------------------------------- reporting
    @property
    def phase(self) -> int:
        """Current phase index (1-based; 0 before initialization)."""
        return self._phase

    @property
    def round_named(self) -> Optional[int]:
        """Round at which this ball reached (and kept) its leaf."""
        return self._round_named

    @property
    def round_halted(self) -> Optional[int]:
        """Round at which the termination condition of line 29 held."""
        return self._round_halted

    @property
    def view(self) -> LocalTreeView:
        """This ball's current local tree (read-only use)."""
        return self._store.view_of(self.pid)

    # ------------------------------------------------------------- protocol
    def compose(self, round_no: int) -> Any:
        if self._stage == _STAGE_INIT:
            return hello_message()
        if self._stage == _STAGE_PATH:
            view = self._store.view_of(self.pid)
            path = self._policy.choose(view, self.pid, self._phase, self._rng)
            if not path or path[0] != view.position(self.pid):
                raise SimulationError(
                    f"policy {self._policy.name} produced a path not starting at "
                    f"{view.position(self.pid)}: {path!r}"
                )
            return path_message(path)
        if self._stage == _STAGE_POSITION:
            return position_message(self._store.view_of(self.pid).position(self.pid))
        raise SimulationError(f"ball {self.pid!r} composed in unknown stage {self._stage!r}")

    def deliver(self, round_no: int, inbox: Mapping[BallId, Any]) -> None:
        if self._stage == _STAGE_INIT:
            self._store.initialize(self.pid, round_no, inbox)
            self._phase = 1
            self._stage = _STAGE_PATH
            return
        if self._stage == _STAGE_PATH:
            self._store.apply_paths(self.pid, round_no, inbox)
            self._note_leaf(round_no)
            if self._config.sync_positions:
                self._stage = _STAGE_POSITION
            else:
                # EXP-ABL ablation: skip round 2 entirely.  One-round
                # phases; view divergence is never repaired.
                self._finish_phase(round_no)
            return
        if self._stage == _STAGE_POSITION:
            self._store.apply_positions(self.pid, round_no, inbox)
            self._note_leaf(round_no)
            self._finish_phase(round_no)
            return
        raise SimulationError(f"ball {self.pid!r} delivered in unknown stage {self._stage!r}")

    def _finish_phase(self, round_no: int) -> None:
        view = self._store.view_of(self.pid)
        my_position = view.position(self.pid)
        if view.all_at_leaves() or (
            self._config.halt_on_name and nd.is_leaf(my_position)
        ):
            # With halt_on_name, this ball just announced its leaf in the
            # position broadcast of this very round, so peers marked it
            # ANNOUNCED (the lifecycle retention rule) and its slot stays
            # reserved through all future silence.
            self._round_halted = round_no
            self.decide(nd.leaf_rank(my_position))
            self.halt()
        else:
            self._phase += 1
            self._stage = _STAGE_PATH
    # --------------------------------------------------------------- private
    def _note_leaf(self, round_no: int) -> None:
        if self._round_named is not None:
            return
        position = self._store.view_of(self.pid).position(self.pid)
        if nd.is_leaf(position):
            self._round_named = round_no
            # The name is fixed now: a ball at a leaf is never displaced.
            self.decide(nd.leaf_rank(position))


def build_balls_into_leaves(
    ids: Sequence[BallId],
    *,
    seed: int = 0,
    config: Optional[BallsIntoLeavesConfig] = None,
) -> Tuple[List[BallProcess], ViewStore]:
    """Create the ``n`` ball processes and their shared view store.

    Returns the processes (one per id, in input order) and the store,
    which callers keep for instrumentation.
    """
    require_distinct(ids)
    if not ids:
        raise ConfigurationError("renaming needs at least one participant")
    config = config or BallsIntoLeavesConfig()
    topology = cached_topology(len(ids))
    store = make_store(
        config.view_mode,
        topology,
        check_invariants=config.check_invariants,
        movement_order=config.movement_order,
        lifecycle=config.halt_on_name,
    )
    processes = [
        BallProcess(pid, store=store, config=config, seed=seed) for pid in ids
    ]
    return processes, store
