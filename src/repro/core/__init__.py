"""The paper's primary contribution: the Balls-into-Leaves algorithm.

:class:`BallProcess` implements Algorithm 1 on the :mod:`repro.sim`
substrate.  The random, early-terminating (Section 6), deterministic-rank,
and degenerate-leftmost variants differ only in the *path policy* used on
lines 5-10; everything else (priority movement, crash handling, round-2
synchronization, termination) is shared, mirroring the paper's structure.
"""

from repro.core.config import BallsIntoLeavesConfig
from repro.core.lifecycle import BallStatus
from repro.core.messages import (
    HELLO,
    PATH,
    POSITION,
    hello_message,
    path_message,
    position_message,
)
from repro.core.policies import (
    HybridRankThenRandomPolicy,
    LeftmostPolicy,
    PathPolicy,
    RandomPolicy,
    RankPolicy,
    make_policy,
)
from repro.core.movement import apply_path_round, apply_position_round
from repro.core.views import PrivateViewStore, SharedViewStore, ViewStore, make_store
from repro.core.balls_into_leaves import BallProcess, build_balls_into_leaves
from repro.core.instrumentation import PhaseStats, TreeStatsObserver

__all__ = [
    "BallsIntoLeavesConfig",
    "BallStatus",
    "HELLO",
    "PATH",
    "POSITION",
    "hello_message",
    "path_message",
    "position_message",
    "PathPolicy",
    "RandomPolicy",
    "RankPolicy",
    "HybridRankThenRandomPolicy",
    "LeftmostPolicy",
    "make_policy",
    "apply_path_round",
    "apply_position_round",
    "ViewStore",
    "PrivateViewStore",
    "SharedViewStore",
    "make_store",
    "BallProcess",
    "build_balls_into_leaves",
    "PhaseStats",
    "TreeStatsObserver",
]
