"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro list                     # show all experiments
    repro run EXP-T2 [--scale ...] # run one experiment, print its report
    repro all [--scale smoke]      # run the whole suite
    repro demo [--n 32]            # one quick renaming run, human-readable
    repro batch --algorithms ...   # run a raw scenario matrix
    repro hunt --objective rounds  # synthesize worst-case crash schedules
    repro tail --n 1024            # importance-splitting round-tail estimate

Every experiment prints the exact command reproducing it, and all
randomness flows from ``--seed``.  ``--executor process --workers K``
spreads batched sweeps over ``K`` processes without changing a digit of
the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, List, Optional

from repro._version import __version__
from repro.config import set_vec_threads
from repro.errors import ReproError
from repro.experiments.registry import all_experiments, run_experiment
from repro.ids import sparse_ids
from repro.search.objectives import OBJECTIVES
from repro.search.strategies import FAULT_FAMILY_CHOICES, STRATEGIES
from repro.sim.batch import EXECUTORS, ScenarioMatrix, run_batch
from repro.sim.kernel import KERNEL_CHOICES
from repro.sim.runner import ALGORITHMS, run_renaming


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        default=None,
        choices=EXECUTORS,
        help="trial execution backend (default: serial; process when --workers > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the process executor",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_CHOICES,
        help="simulation kernel: auto picks the fastest exact engine per "
        "cell (trial-stacked vectorized for failure-free sweeps when numpy "
        "is installed, columnar otherwise, reference as the final "
        "fallback); reference/columnar/vectorized pin an engine and fail "
        "on runs it cannot model",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="K",
        help="threads for the vectorized kernel's seeding/twist passes "
        "(sets REPRO_VEC_THREADS; default: CPU count, 1 = the exact "
        "serial pass — any value is byte-identical)",
    )


def _add_monitor_option(parser: argparse.ArgumentParser) -> None:
    from repro.monitor.invariants import MONITOR_MODES

    parser.add_argument(
        "--monitor",
        default="off",
        choices=MONITOR_MODES,
        help="runtime invariant monitoring: cheap = per-round flat-array "
        "predicates on any kernel (violations land in the jsonl rows), "
        "full = cheap plus the instrumented reference movement audit "
        "(pins the reference engine)",
    )


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    from repro.sim.trace import TRACE_MODES

    parser.add_argument(
        "--trace",
        default="off",
        choices=TRACE_MODES,
        help="per-trial event capture: cheap = per-round crash/omit/name/"
        "halt deltas appended from the fast kernels' flat arrays (any "
        "kernel), full = the reference engine's message-level stream "
        "(pins the reference engine); results are byte-identical either "
        "way",
    )


def _add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-stage wall-clock timers (seeding/twist/"
        "movement/monitor) and append a trailing telemetry record to "
        ".jsonl output; summarize with `repro stats`",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balls-into-Leaves (PODC 2014) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment suite")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. EXP-T2")
    run_parser.add_argument("--scale", default="paper", choices=("smoke", "paper", "deep"))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--out",
        help="also write the report to this file; a .jsonl path persists "
        "the per-cell table rows as JSON lines instead",
    )
    _add_executor_options(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", default="smoke", choices=("smoke", "paper", "deep"))
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--out",
        help="also write the combined report to this file; a .jsonl path "
        "persists every experiment's table rows as JSON lines instead",
    )
    _add_executor_options(all_parser)

    demo_parser = sub.add_parser("demo", help="one quick renaming run")
    demo_parser.add_argument("--n", type=int, default=32)
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--algorithm",
        default="balls-into-leaves",
        choices=("balls-into-leaves", "early-terminating", "rank-descent", "flood"),
    )
    demo_parser.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_CHOICES,
        help="simulation kernel (auto = columnar fast path when supported)",
    )

    batch_parser = sub.add_parser(
        "batch", help="run a raw algorithm x adversary x n x seed matrix"
    )
    batch_parser.add_argument(
        "--algorithms",
        default="balls-into-leaves",
        help="comma-separated algorithm names",
    )
    batch_parser.add_argument(
        "--sizes", default="32", help="comma-separated participant counts"
    )
    batch_parser.add_argument(
        "--adversary",
        action="append",
        dest="adversaries",
        metavar="SPEC",
        help="adversary spec 'name[:key=value,...]', e.g. random:rate=0.2 "
        "(repeatable; default: none)",
    )
    batch_parser.add_argument("--trials", type=int, default=10, help="seeds per cell")
    batch_parser.add_argument("--seed", type=int, default=0)
    batch_parser.add_argument(
        "--seed-mode",
        default="legacy",
        choices=("legacy", "derived"),
        help="per-trial seed schedule (derived = independent per-cell streams)",
    )
    batch_parser.add_argument(
        "--out",
        help="also write the report to this file; a .jsonl path persists "
        "one JSON row per trial instead",
    )
    batch_parser.add_argument("--csv", help="write the per-cell table as CSV here")
    batch_parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the renaming spec check per trial (fault-injection "
        "cells measure violations instead of raising on the first one)",
    )
    batch_parser.add_argument(
        "--capture-errors",
        action="store_true",
        help="record simulation/spec failures as per-trial error rows "
        "instead of aborting the batch",
    )
    batch_parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="tasks shipped per worker round-trip on the process executor "
        "(default: ~4 chunks per worker); results are identical for any value",
    )
    _add_executor_options(batch_parser)
    _add_monitor_option(batch_parser)
    _add_trace_option(batch_parser)
    _add_telemetry_option(batch_parser)

    hunt_parser = sub.add_parser(
        "hunt",
        help="search crash-schedule space for worst-case executions "
        "(adversary synthesis / counterexample mining)",
    )
    hunt_parser.add_argument(
        "--objective",
        default="rounds",
        choices=sorted(OBJECTIVES),
        help="what the search maximizes (higher = worse for the algorithm)",
    )
    hunt_parser.add_argument(
        "--strategy",
        default="hillclimb",
        choices=sorted(STRATEGIES),
        help="search strategy over the schedule genotype",
    )
    hunt_parser.add_argument(
        "--budget", type=int, default=200, help="trial evaluations to spend"
    )
    hunt_parser.add_argument("--seed", type=int, default=0)
    hunt_parser.add_argument(
        "--algorithm",
        default="balls-into-leaves",
        choices=sorted(ALGORITHMS),
    )
    hunt_parser.add_argument("--n", type=int, default=16, help="cell size")
    hunt_parser.add_argument(
        "--halt-on-name",
        action="store_true",
        help="hunt under the per-ball termination extension",
    )
    hunt_parser.add_argument(
        "--crash-budget", type=int, default=None, help="the model's t (default n-1)"
    )
    hunt_parser.add_argument(
        "--fault-family",
        default="crash",
        choices=FAULT_FAMILY_CHOICES,
        help="genotype fault vocabulary: crash events only, omission "
        "(link-drop) events only, or a mixed schedule of both; the "
        "baseline gauntlet follows the family",
    )
    hunt_parser.add_argument(
        "--seeds-per-schedule",
        type=int,
        default=1,
        help="trials per candidate; its score is the max over them",
    )
    hunt_parser.add_argument(
        "--max-crashes", type=int, default=None, help="genotype crash-count cap"
    )
    hunt_parser.add_argument(
        "--max-round", type=int, default=None, help="genotype round horizon"
    )
    hunt_parser.add_argument(
        "--baseline-trials",
        type=int,
        default=5,
        help="seeds per bundled adversary in the comparison baseline",
    )
    hunt_parser.add_argument(
        "--top", type=int, default=3, help="distinct hunted schedules to report"
    )
    hunt_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging minimization of the best schedule",
    )
    hunt_parser.add_argument(
        "--out",
        help="also write the report to this file; a .jsonl path persists "
        "one JSON row per evaluated schedule instead (byte-identical on "
        "every executor)",
    )
    hunt_parser.add_argument(
        "--scenario-out",
        default=None,
        metavar="PATH",
        help="where to write the winning schedule's scenario file "
        "(default: hunt-scenario-<digest>.json in the current "
        "directory); its cheap trace lands alongside as "
        "trace-<digest>.jsonl",
    )
    hunt_parser.add_argument(
        "--no-scenario",
        action="store_true",
        help="skip writing the scenario + trace files for the winner",
    )
    _add_executor_options(hunt_parser)
    _add_monitor_option(hunt_parser)
    _add_telemetry_option(hunt_parser)

    tail_parser = sub.add_parser(
        "tail",
        help="estimate the round-count tail P(rounds > k*ceil(loglog n)) "
        "by multilevel importance splitting",
    )
    tail_parser.add_argument("--n", type=int, default=1024, help="cell size")
    tail_parser.add_argument(
        "--algorithm",
        default="balls-into-leaves",
        choices=sorted(name for name, p in ALGORITHMS.items() if p is not None),
    )
    tail_parser.add_argument("--seed", type=int, default=0)
    tail_parser.add_argument(
        "--trials", type=int, default=256, help="trials per splitting stage"
    )
    tail_parser.add_argument(
        "--k-min", type=int, default=2, help="first level, in loglog units"
    )
    tail_parser.add_argument(
        "--k-max", type=int, default=5, help="last level, in loglog units"
    )
    tail_parser.add_argument(
        "--levels",
        default=None,
        help="explicit comma-separated absolute round levels "
        "(overrides --k-min/--k-max)",
    )
    tail_parser.add_argument(
        "--halt-on-name",
        action="store_true",
        help="estimate under the per-ball termination extension",
    )
    tail_parser.add_argument(
        "--chunk",
        type=int,
        default=64,
        help="trials per work unit (fixed regardless of executor, so "
        "parallel runs replay the serial schedule)",
    )
    tail_parser.add_argument(
        "--growth",
        type=float,
        default=1.0,
        help="per-stage population growth factor; the conditional factors "
        "decay with depth, so growth > 1 keeps deep (cheap, two-round) "
        "stages from going extinct",
    )
    tail_parser.add_argument(
        "--max-trials",
        type=int,
        default=65536,
        help="hard cap on any single stage's population",
    )
    tail_parser.add_argument(
        "--out",
        help="also write the report to this file; a .jsonl path persists "
        "one JSON row per stage plus the final estimate instead",
    )
    _add_executor_options(tail_parser)

    lint_parser = sub.add_parser(
        "lint",
        help="run the determinism & kernel-parity static analyzer "
        "(the tier-1 CI gate; see LINTING.md)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="report format",
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_parser.add_argument(
        "--out", help="also write the report to this file"
    )

    explore_parser = sub.add_parser(
        "explore",
        help="render a scenario's execution as a self-contained HTML "
        "process-lane timeline (rounds x processes, crash/omit/name/"
        "halt markers)",
    )
    explore_parser.add_argument(
        "scenario",
        help="scenario JSON file (`repro hunt` writes one for its "
        "winner; hand-editable — the schedule block is authoritative)",
    )
    explore_parser.add_argument(
        "--out",
        help="HTML output path (default: timeline-<digest>.html)",
    )
    explore_parser.add_argument(
        "--replay",
        action="store_true",
        help="re-execute the (possibly hand-edited) scenario instead of "
        "reading its stored trace, certify reference/columnar byte-"
        "identity when a schedule is present, and diff the outcome "
        "against the recorded meta block",
    )

    stats_parser = sub.add_parser(
        "stats",
        help="summarize persisted .jsonl runs: per-cell trial rows plus "
        "the --telemetry stage timers",
    )
    stats_parser.add_argument(
        "files",
        nargs="+",
        help="jsonl files written via --out rows.jsonl",
    )
    stats_parser.add_argument(
        "--out", help="also write the summary to this file"
    )
    return parser


def _cmd_list() -> int:
    for entry in all_experiments():
        print(f"{entry.experiment_id:<10} {entry.title}")
    return 0


def _is_jsonl(out: Optional[str]) -> bool:
    return bool(out) and out.endswith(".jsonl")


def _write_jsonl(path: str, rows: Iterable[dict]) -> int:
    """Write one compact JSON object per line; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, separators=(",", ":")) + "\n")
            count += 1
    return count


def _experiment_rows(results, kernel: str = "auto") -> Iterable[dict]:
    """Per-cell rows of every table of every experiment result.

    ``kernel`` records the engine-selection mode the sweep ran under, so
    bench artifacts written via ``--out`` carry their execution
    provenance (per-trial resolved kernels appear in ``batch`` rows,
    which are trial-granular).
    """
    for result in results:
        for table in result.tables:
            for row in table.row_dicts():
                yield {
                    "experiment": result.experiment_id,
                    "scale": result.scale,
                    "table": table.title,
                    "kernel": kernel,
                    **row,
                }


def _emit(report: str, out: Optional[str], jsonl_rows=None) -> None:
    """Print the report; persist to ``out`` (JSONL rows for .jsonl paths)."""
    print(report)
    if not out:
        return
    if _is_jsonl(out) and jsonl_rows is not None:
        count = _write_jsonl(out, jsonl_rows)
        print(f"[{count} JSONL rows written to {out}]", file=sys.stderr)
        return
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    print(f"[written to {out}]", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.experiment_id,
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        kernel=args.kernel,
    )
    _emit(result.render(), args.out, jsonl_rows=_experiment_rows([result], args.kernel))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    results = []
    for entry in all_experiments():
        print(f"... running {entry.experiment_id}", file=sys.stderr)
        results.append(
            run_experiment(
                entry.experiment_id,
                scale=args.scale,
                seed=args.seed,
                executor=args.executor,
                workers=args.workers,
                kernel=args.kernel,
            )
        )
    _emit(
        "\n\n".join(result.render() for result in results),
        args.out,
        jsonl_rows=_experiment_rows(results, args.kernel),
    )
    return 0


def _cmd_demo(n: int, seed: int, algorithm: str, kernel: str = "auto") -> int:
    run = run_renaming(algorithm, sparse_ids(n), seed=seed, kernel=kernel)
    print(
        f"{algorithm}: renamed n={n} processes in {run.rounds} rounds "
        f"({run.kernel} kernel)"
    )
    shown = sorted(run.names.items())[:8]
    for pid, name in shown:
        print(f"  original id {pid} -> name {name}")
    if len(run.names) > len(shown):
        print(f"  ... and {len(run.names) - len(shown)} more")
    return 0


def _parse_sizes(raw: str) -> List[int]:
    try:
        return [int(n) for n in raw.split(",") if n.strip()]
    except ValueError:
        raise ReproError(f"--sizes must be comma-separated integers, got {raw!r}") from None


def _telemetry_row(
    elapsed: Optional[float] = None, executor: Optional[str] = None
) -> dict:
    """The trailing jsonl record ``--telemetry`` appends (see `repro stats`)."""
    from repro.core.instrumentation import TIMERS

    row = {"kind": "telemetry", "stages": TIMERS.snapshot()}
    if elapsed is not None:
        row["elapsed"] = elapsed
    if executor is not None:
        row["executor"] = executor
    return row


def _print_telemetry(
    elapsed: Optional[float] = None, executor: Optional[str] = None
) -> None:
    from repro.analysis.runstats import telemetry_table

    print(
        telemetry_table([_telemetry_row(elapsed, executor)]).render(),
        file=sys.stderr,
        end="",
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    matrix = ScenarioMatrix.build(
        [name.strip() for name in args.algorithms.split(",") if name.strip()],
        _parse_sizes(args.sizes),
        args.adversaries or ["none"],
        trials=args.trials,
        base_seed=args.seed,
        seed_mode=args.seed_mode,
        check=not args.no_check,
        capture_errors=args.capture_errors,
        kernel=args.kernel,
        monitor=args.monitor,
        trace=args.trace,
    )
    batch = run_batch(
        matrix,
        executor=args.executor,
        workers=args.workers,
        chunksize=args.chunksize,
    )
    table = batch.to_table(
        f"scenario matrix: {len(matrix)} trials "
        f"({len(matrix.algorithms)} algorithms x {len(matrix.sizes)} sizes "
        f"x {len(matrix.adversaries)} adversaries x {matrix.trials} seeds)"
    )
    rows: Iterable[dict] = (trial.to_row() for trial in batch.trials)
    if args.telemetry:
        import itertools

        rows = itertools.chain(
            rows, [_telemetry_row(batch.elapsed, batch.executor)]
        )
    _emit(table.render(), args.out, jsonl_rows=rows)
    if args.telemetry:
        _print_telemetry(batch.elapsed, batch.executor)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(table.to_csv())
        print(f"[csv written to {args.csv}]", file=sys.stderr)
    print(
        f"ran {len(batch)} trials via the {batch.executor} executor "
        f"in {batch.elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    from repro.analysis.worst_case import beats_every_bundled, worst_case_table
    from repro.errors import KernelUnsupported
    from repro.search.baseline import evaluate_bundled, hunt_entry
    from repro.search.shrink import replay_identical, shrink, to_pytest
    from repro.search.strategies import HuntConfig, run_hunt

    if args.baseline_trials < 1:
        raise ReproError(
            f"--baseline-trials must be >= 1, got {args.baseline_trials}"
        )
    config = HuntConfig(
        algorithm=args.algorithm,
        n=args.n,
        objective=args.objective,
        budget=args.budget,
        seed=args.seed,
        seeds_per_schedule=args.seeds_per_schedule,
        halt_on_name=args.halt_on_name,
        crash_budget=args.crash_budget,
        max_crashes=args.max_crashes,
        max_round=args.max_round,
        kernel=args.kernel,
        monitor=args.monitor,
        fault_family=args.fault_family,
    )
    result = run_hunt(
        config, args.strategy, executor=args.executor, workers=args.workers
    )
    baseline = evaluate_bundled(
        config,
        trials=args.baseline_trials,
        executor=args.executor,
        workers=args.workers,
    )
    entries = [hunt_entry(e) for e in result.top(max(1, args.top))] + baseline
    cell = f"{config.algorithm} n={config.n}"
    report = [
        f"hunt: {args.strategy} strategy, {len(result.evaluations)} schedules "
        f"evaluated (budget {config.budget}, seed {config.seed})",
        "",
        worst_case_table(cell, config.objective, entries).render(),
    ]

    best = result.best
    winner_schedule, winner_seed = best.schedule, best.best_result.spec.seed
    report.append("")
    report.append(
        f"worst schedule {best.schedule.digest}: score {best.score:g}, "
        f"{best.schedule.crashes} crash(es), trial seed {best.best_result.spec.seed}"
    )
    report.append(f"  genotype: {best.schedule.to_json()}")
    if not args.no_shrink:
        shrunk = shrink(best.schedule, config, best.best_result.spec.seed)
        winner_schedule, winner_seed = shrunk.schedule, shrunk.seed
        report.append(
            f"shrunk to {shrunk.schedule.crashes} crash(es) "
            f"(score {shrunk.score:g}, {shrunk.trials_used} replays): "
            f"{shrunk.schedule.to_json()}"
        )
        try:
            reference, _ = replay_identical(shrunk.schedule, config, shrunk.seed)
            report.append(
                "replay: bit-identical on the reference and columnar kernels"
            )
            report.append("")
            report.append("ready-to-paste regression:")
            report.append(
                to_pytest(shrunk.schedule, config, shrunk.seed, reference)
            )
        except KernelUnsupported as error:
            report.append(f"replay: columnar kernel not applicable ({error.reason})")
    scenario_path = None
    if not args.no_scenario:
        scenario_path = _write_hunt_scenario(
            args, config, winner_schedule, winner_seed
        )
    repro_cmd = (
        "python -m repro hunt"
        f" --objective {config.objective} --strategy {args.strategy}"
        f" --seed {config.seed} --budget {config.budget}"
        f" --algorithm {config.algorithm} --n {config.n}"
        f" --baseline-trials {args.baseline_trials}"
    )
    if config.fault_family != "crash":
        repro_cmd += f" --fault-family {config.fault_family}"
    if config.halt_on_name:
        repro_cmd += " --halt-on-name"
    if config.crash_budget is not None:
        repro_cmd += f" --crash-budget {config.crash_budget}"
    if config.seeds_per_schedule != 1:
        repro_cmd += f" --seeds-per-schedule {config.seeds_per_schedule}"
    if config.max_crashes is not None:
        repro_cmd += f" --max-crashes {config.max_crashes}"
    if config.max_round is not None:
        repro_cmd += f" --max-round {config.max_round}"
    if args.no_shrink:
        repro_cmd += " --no-shrink"
    report.append(f"reproduce with: {repro_cmd}")
    if scenario_path is not None:
        report.append(
            f"  scenario file: {scenario_path} "
            f"(render with: python -m repro explore {scenario_path})"
        )
    rows: Iterable[dict] = result.rows()
    if args.telemetry:
        import itertools

        rows = itertools.chain(rows, [_telemetry_row()])
    _emit("\n".join(report), args.out, jsonl_rows=rows)
    if args.telemetry:
        _print_telemetry()
    if beats_every_bundled(entries):
        print(
            "the synthesized schedule beats every bundled adversary",
            file=sys.stderr,
        )
    return 0


def _write_hunt_scenario(args, config, schedule, seed) -> str:
    """Replay the hunt winner with a cheap trace and persist both files.

    Writes ``hunt-scenario-<digest>.json`` (or ``--scenario-out``) plus
    the content-addressed ``trace-<digest>.jsonl`` alongside it, and
    returns the scenario path for the report footer.
    """
    import os

    from repro.search.scenario import (
        Scenario,
        scenario_filename,
        write_scenario,
    )
    from repro.sim.batch import TrialSpec, run_trial
    from repro.sim.trace import trace_filename, write_trace

    spec = TrialSpec(
        algorithm=config.algorithm,
        n=config.n,
        seed=seed,
        adversary=schedule.spec(),
        halt_on_name=config.halt_on_name,
        crash_budget=config.crash_budget,
        check=False,
        kernel=config.kernel,
        capture_errors=True,
        trace="cheap",
    )
    result = run_trial(spec)
    digest = spec.digest()
    scenario_path = args.scenario_out or scenario_filename(
        digest, prefix="hunt-scenario"
    )
    directory = os.path.dirname(os.path.abspath(scenario_path))
    trace_name = None
    if result.trace is not None:
        trace_name = trace_filename(digest)
        write_trace(
            result.trace,
            os.path.join(directory, trace_name),
            digest=digest,
            meta={
                "algorithm": config.algorithm,
                "n": config.n,
                "seed": seed,
                "schedule": schedule.digest,
            },
        )
    scenario = Scenario.from_trial(
        spec,
        result,
        schedule=schedule,
        trace_path=trace_name,
        objective=config.objective,
    )
    write_scenario(scenario, scenario_path)
    return scenario_path


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.monitor.splitting import TailConfig, default_levels, run_tail

    if args.levels:
        try:
            levels = tuple(
                int(level) for level in args.levels.split(",") if level.strip()
            )
        except ValueError:
            raise ReproError(
                f"--levels must be comma-separated integers, got {args.levels!r}"
            ) from None
    else:
        levels = default_levels(args.n, args.k_min, args.k_max)
    config = TailConfig(
        n=args.n,
        algorithm=args.algorithm,
        seed=args.seed,
        trials=args.trials,
        levels=levels,
        halt_on_name=args.halt_on_name,
        kernel=args.kernel,
        chunk=args.chunk,
        growth=args.growth,
        max_trials=args.max_trials,
    )
    result = run_tail(config, executor=args.executor, workers=args.workers)
    repro_cmd = (
        "python -m repro tail"
        f" --n {config.n} --algorithm {config.algorithm}"
        f" --seed {config.seed} --trials {config.trials}"
        f" --levels {','.join(str(level) for level in config.levels)}"
        f" --chunk {config.chunk}"
        f" --growth {config.growth} --max-trials {config.max_trials}"
    )
    if config.halt_on_name:
        repro_cmd += " --halt-on-name"
    _emit(
        result.render() + f"\nreproduce with: {repro_cmd}",
        args.out,
        jsonl_rows=result.rows(),
    )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from repro.analysis.timeline import render_timeline
    from repro.errors import KernelUnsupported
    from repro.search.scenario import load_scenario
    from repro.sim.batch import run_trial
    from repro.sim.trace import read_trace

    scenario = load_scenario(args.scenario)
    spec = scenario.spec
    digest = spec.digest()
    trace = None
    source = ""
    if not args.replay and scenario.trace_path:
        trace_path = scenario.trace_path
        if not os.path.isabs(trace_path):
            trace_path = os.path.join(
                os.path.dirname(os.path.abspath(args.scenario)), trace_path
            )
        if os.path.exists(trace_path):
            header, stored = read_trace(trace_path)
            if header.get("digest") in ("", None, digest):
                trace, source = stored, f"stored trace {scenario.trace_path}"
            else:
                # The scenario was edited after the trace was captured
                # (digests disagree): fall through to a fresh replay so
                # the timeline shows the *edited* execution.
                print(
                    f"note: {scenario.trace_path} is for digest "
                    f"{header.get('digest')}, scenario is {digest}; "
                    "replaying instead",
                    file=sys.stderr,
                )
    if trace is None:
        replay_spec = dataclasses.replace(
            spec, trace="cheap", capture_errors=True
        )
        result = run_trial(replay_spec)
        trace, source = result.trace, f"replayed on the {result.kernel} kernel"
        if trace is None:
            raise ReproError(
                "replay recorded no trace (the run failed before its "
                f"first round): {result.error}"
            )
        for key, label in (("rounds", "rounds"), ("error", "error")):
            expected = scenario.meta.get(key)
            observed = getattr(result, key)
            if expected is not None and expected != observed:
                print(
                    f"meta mismatch: recorded {label}={expected!r}, "
                    f"replay observed {observed!r} "
                    "(expected after a hand-edit)",
                    file=sys.stderr,
                )
    if args.replay and scenario.schedule is not None:
        from repro.search.shrink import replay_identical
        from repro.search.strategies import HuntConfig

        config = HuntConfig(
            algorithm=spec.algorithm,
            n=spec.n,
            seed=spec.seed,
            halt_on_name=spec.halt_on_name,
            crash_budget=spec.crash_budget,
        )
        try:
            replay_identical(scenario.schedule, config, spec.seed)
            print(
                "replay: bit-identical on the reference and columnar kernels",
                file=sys.stderr,
            )
        except KernelUnsupported as error:
            print(
                f"replay: columnar kernel not applicable ({error.reason})",
                file=sys.stderr,
            )
    html = render_timeline(
        trace,
        title=(
            f"{spec.algorithm} n={spec.n} seed={spec.seed} "
            f"[{spec.adversary.key}]"
        ),
        participants=list(sparse_ids(spec.n)),
        meta={**scenario.meta, "digest": digest, "source": source},
    )
    out = args.out or f"timeline-{digest}.html"
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"timeline written to {out} ({source})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis.runstats import render_stats

    _emit(render_stats(args.files), args.out)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so the analyzer costs nothing on simulation verbs.
    from repro.lint import all_rules, lint_paths, render_report, render_rules
    from repro.lint.engine import iter_python_files
    from repro.lint.report import EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS

    rules = all_rules()
    if args.rules:
        print(render_rules(rules))
        return EXIT_CLEAN
    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        rules = tuple(rule for rule in rules if rule.rule_id in wanted)
    files = list(iter_python_files(args.paths))
    violations = lint_paths(args.paths, rules=rules)
    report = render_report(
        violations, files_checked=len(files), fmt=args.fmt
    )
    _emit(report, args.out)
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if getattr(args, "threads", None) is not None:
        if args.threads < 1:
            print("error: --threads must be >= 1", file=sys.stderr)
            return 2
        # The knob is just the env var, written through the config seam:
        # the stream-bank fanout reads it per pass, and every thread
        # count is byte-identical.
        set_vec_threads(args.threads)
    if getattr(args, "telemetry", False):
        from repro.core.instrumentation import TIMERS

        TIMERS.enable()
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "all":
            return _cmd_all(args)
        if args.command == "demo":
            return _cmd_demo(args.n, args.seed, args.algorithm, args.kernel)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "hunt":
            return _cmd_hunt(args)
        if args.command == "tail":
            return _cmd_tail(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "stats":
            return _cmd_stats(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # A downstream pager closed early (`repro lint --rules | head`).
        # Point stdout at devnull so the interpreter's flush-at-exit does
        # not raise the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
