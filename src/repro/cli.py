"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro list                     # show all experiments
    repro run EXP-T2 [--scale ...] # run one experiment, print its report
    repro all [--scale smoke]      # run the whole suite
    repro demo [--n 32]            # one quick renaming run, human-readable
    repro batch --algorithms ...   # run a raw scenario matrix

Every experiment prints the exact command reproducing it, and all
randomness flows from ``--seed``.  ``--executor process --workers K``
spreads batched sweeps over ``K`` processes without changing a digit of
the output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.errors import ReproError
from repro.experiments.registry import all_experiments, run_experiment
from repro.ids import sparse_ids
from repro.sim.batch import EXECUTORS, ScenarioMatrix, run_batch
from repro.sim.runner import run_renaming


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        default=None,
        choices=EXECUTORS,
        help="trial execution backend (default: serial; process when --workers > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the process executor",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balls-into-Leaves (PODC 2014) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment suite")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. EXP-T2")
    run_parser.add_argument("--scale", default="paper", choices=("smoke", "paper"))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--out", help="also write the report to this file")
    _add_executor_options(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", default="smoke", choices=("smoke", "paper"))
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--out", help="also write the combined report to this file")
    _add_executor_options(all_parser)

    demo_parser = sub.add_parser("demo", help="one quick renaming run")
    demo_parser.add_argument("--n", type=int, default=32)
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--algorithm",
        default="balls-into-leaves",
        choices=("balls-into-leaves", "early-terminating", "rank-descent", "flood"),
    )

    batch_parser = sub.add_parser(
        "batch", help="run a raw algorithm x adversary x n x seed matrix"
    )
    batch_parser.add_argument(
        "--algorithms",
        default="balls-into-leaves",
        help="comma-separated algorithm names",
    )
    batch_parser.add_argument(
        "--sizes", default="32", help="comma-separated participant counts"
    )
    batch_parser.add_argument(
        "--adversary",
        action="append",
        dest="adversaries",
        metavar="SPEC",
        help="adversary spec 'name[:key=value,...]', e.g. random:rate=0.2 "
        "(repeatable; default: none)",
    )
    batch_parser.add_argument("--trials", type=int, default=10, help="seeds per cell")
    batch_parser.add_argument("--seed", type=int, default=0)
    batch_parser.add_argument(
        "--seed-mode",
        default="legacy",
        choices=("legacy", "derived"),
        help="per-trial seed schedule (derived = independent per-cell streams)",
    )
    batch_parser.add_argument("--out", help="also write the report to this file")
    batch_parser.add_argument("--csv", help="write the per-cell table as CSV here")
    _add_executor_options(batch_parser)
    return parser


def _cmd_list() -> int:
    for entry in all_experiments():
        print(f"{entry.experiment_id:<10} {entry.title}")
    return 0


def _emit(report: str, out: Optional[str]) -> None:
    print(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[written to {out}]", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.experiment_id,
        scale=args.scale,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
    )
    _emit(result.render(), args.out)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    reports = []
    for entry in all_experiments():
        print(f"... running {entry.experiment_id}", file=sys.stderr)
        reports.append(
            run_experiment(
                entry.experiment_id,
                scale=args.scale,
                seed=args.seed,
                executor=args.executor,
                workers=args.workers,
            ).render()
        )
    _emit("\n\n".join(reports), args.out)
    return 0


def _cmd_demo(n: int, seed: int, algorithm: str) -> int:
    run = run_renaming(algorithm, sparse_ids(n), seed=seed)
    print(f"{algorithm}: renamed n={n} processes in {run.rounds} rounds")
    shown = sorted(run.names.items())[:8]
    for pid, name in shown:
        print(f"  original id {pid} -> name {name}")
    if len(run.names) > len(shown):
        print(f"  ... and {len(run.names) - len(shown)} more")
    return 0


def _parse_sizes(raw: str) -> List[int]:
    try:
        return [int(n) for n in raw.split(",") if n.strip()]
    except ValueError:
        raise ReproError(f"--sizes must be comma-separated integers, got {raw!r}") from None


def _cmd_batch(args: argparse.Namespace) -> int:
    matrix = ScenarioMatrix.build(
        [name.strip() for name in args.algorithms.split(",") if name.strip()],
        _parse_sizes(args.sizes),
        args.adversaries or ["none"],
        trials=args.trials,
        base_seed=args.seed,
        seed_mode=args.seed_mode,
    )
    batch = run_batch(matrix, executor=args.executor, workers=args.workers)
    table = batch.to_table(
        f"scenario matrix: {len(matrix)} trials "
        f"({len(matrix.algorithms)} algorithms x {len(matrix.sizes)} sizes "
        f"x {len(matrix.adversaries)} adversaries x {matrix.trials} seeds)"
    )
    _emit(table.render(), args.out)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(table.to_csv())
        print(f"[csv written to {args.csv}]", file=sys.stderr)
    print(
        f"ran {len(batch)} trials via the {batch.executor} executor "
        f"in {batch.elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "all":
            return _cmd_all(args)
        if args.command == "demo":
            return _cmd_demo(args.n, args.seed, args.algorithm)
        if args.command == "batch":
            return _cmd_batch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
