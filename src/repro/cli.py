"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro list                     # show all experiments
    repro run EXP-T2 [--scale ...] # run one experiment, print its report
    repro all [--scale smoke]      # run the whole suite
    repro demo [--n 32]            # one quick renaming run, human-readable

Every experiment prints the exact command reproducing it, and all
randomness flows from ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.errors import ReproError
from repro.experiments.registry import all_experiments, run_experiment
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balls-into-Leaves (PODC 2014) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment suite")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. EXP-T2")
    run_parser.add_argument("--scale", default="paper", choices=("smoke", "paper"))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--out", help="also write the report to this file")

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", default="smoke", choices=("smoke", "paper"))
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--out", help="also write the combined report to this file")

    demo_parser = sub.add_parser("demo", help="one quick renaming run")
    demo_parser.add_argument("--n", type=int, default=32)
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--algorithm",
        default="balls-into-leaves",
        choices=("balls-into-leaves", "early-terminating", "rank-descent", "flood"),
    )
    return parser


def _cmd_list() -> int:
    for entry in all_experiments():
        print(f"{entry.experiment_id:<10} {entry.title}")
    return 0


def _emit(report: str, out: Optional[str]) -> None:
    print(report)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"[written to {out}]", file=sys.stderr)


def _cmd_run(experiment_id: str, scale: str, seed: int, out: Optional[str]) -> int:
    result = run_experiment(experiment_id, scale=scale, seed=seed)
    _emit(result.render(), out)
    return 0


def _cmd_all(scale: str, seed: int, out: Optional[str]) -> int:
    reports = []
    for entry in all_experiments():
        print(f"... running {entry.experiment_id}", file=sys.stderr)
        reports.append(entry.run(scale=scale, seed=seed).render())
    _emit("\n\n".join(reports), out)
    return 0


def _cmd_demo(n: int, seed: int, algorithm: str) -> int:
    run = run_renaming(algorithm, sparse_ids(n), seed=seed)
    print(f"{algorithm}: renamed n={n} processes in {run.rounds} rounds")
    shown = sorted(run.names.items())[:8]
    for pid, name in shown:
        print(f"  original id {pid} -> name {name}")
    if len(run.names) > len(shown):
        print(f"  ... and {len(run.names) - len(shown)} more")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args.experiment_id, args.scale, args.seed, args.out)
        if args.command == "all":
            return _cmd_all(args.scale, args.seed, args.out)
        if args.command == "demo":
            return _cmd_demo(args.n, args.seed, args.algorithm)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
