#!/usr/bin/env python3
"""Early termination: pay for the failures you get, not the ones you plan for.

Section 6 of the paper: with the deterministic first phase, a failure-free
execution finishes in O(1) rounds, and an execution with ``f`` crashes in
O(log log f) — the cost scales with what actually went wrong.  This
example stages exactly ``f`` first-round crashes for growing ``f`` and
prints the measured rounds next to log2(log2(f)).

Run:  python examples/failover_early_termination.py
"""

from __future__ import annotations

import math

import repro
from repro.adversary import ScheduledAdversary, ScheduledCrash


def exactly_f_crashes(ids, f):
    """Crash f spread-out servers during the label announcement."""
    if f == 0:
        return None
    stride = max(1, len(ids) // f)
    victims = ids[::stride][:f]
    schedule = []
    for victim in victims:
        others = [pid for pid in ids if pid != victim]
        schedule.append(ScheduledCrash(round_no=1, victim=victim, receivers=others[::2]))
    return ScheduledAdversary(schedule)


def main() -> None:
    n = 512
    ids = repro.sparse_ids(n)
    print(f"early-terminating Balls-into-Leaves, n={n}, forced crashes in round 1")
    print(f"{'f':>5}  {'rounds':>6}  {'log2 log2 f':>12}")
    for f in (0, 1, 4, 16, 64, 256):
        run = repro.run_renaming(
            "early-terminating", ids, seed=42, adversary=exactly_f_crashes(ids, f)
        )
        loglog = math.log2(math.log2(f)) if f >= 4 else 0.0
        print(f"{f:>5}  {run.rounds:>6}  {loglog:>12.2f}")
        assert len(set(run.names.values())) == len(run.names)
    print()
    print("f=0 takes 3 rounds flat (Theorem 3); growth tracks log log f, not n")
    print("(Theorem 4) — compare: plain Balls-into-Leaves pays its O(log log n)")
    plain = repro.run_renaming("balls-into-leaves", ids, seed=42)
    print(f"plain BiL on the same failure-free instance: {plain.rounds} rounds")


if __name__ == "__main__":
    main()
