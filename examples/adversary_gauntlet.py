#!/usr/bin/env python3
"""Run Balls-into-Leaves against every adversary in the suite.

The paper claims robustness against a *strong adaptive* adversary — one
that sees the messages (including random choices) before deciding whom to
crash and who still hears the dying broadcast.  This script pits the
algorithm against each implemented strategy and prints the round counts.

Run:  python examples/adversary_gauntlet.py
"""

from __future__ import annotations

import repro
from repro.adversary import (
    HalfSplitAdversary,
    NoFailures,
    RandomCrashAdversary,
    SandwichAdversary,
    TargetedPriorityAdversary,
)


def main() -> None:
    n = 128
    ids = repro.sparse_ids(n)
    strategies = {
        "no failures": lambda: NoFailures(),
        "random crashes (5%/round)": lambda: RandomCrashAdversary(0.05, seed=3),
        "random crashes (20%/round)": lambda: RandomCrashAdversary(0.20, seed=3),
        "targeted priority sniper": lambda: TargetedPriorityAdversary(seed=3),
        "CHT sandwich pattern": lambda: SandwichAdversary(seed=3),
        "half-split on round 1": lambda: HalfSplitAdversary(seed=3),
        "half-split, persistent": lambda: HalfSplitAdversary(
            rounds=frozenset({1} | set(range(3, 99, 2))), seed=3
        ),
    }

    print(f"Balls-into-Leaves, n={n}, budget t=n-1, same seed everywhere")
    print(f"{'adversary':<28} {'rounds':>6} {'crashed':>8} {'unique?':>8}")
    for name, factory in strategies.items():
        run = repro.run_renaming("balls-into-leaves", ids, seed=3, adversary=factory())
        unique = len(set(run.names.values())) == len(run.names)
        print(f"{name:<28} {run.rounds:>6} {run.failures:>8} {'yes' if unique else 'NO':>8}")
    print()
    print("every row passes the tight-renaming checker; no adversary pushes the")
    print("round count beyond a small constant of the failure-free run (§5.3)")


if __name__ == "__main__":
    main()
