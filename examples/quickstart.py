#!/usr/bin/env python3
"""Quickstart: rename 32 servers to 32 slots in a handful of rounds.

The scenario from the paper's first sentence: ``n`` failure-prone servers,
communicating synchronously, must assign themselves one-to-one to ``n``
distinct items.  Balls-into-Leaves does it in O(log log n) communication
rounds, with high probability, even under an adaptive crash adversary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    n = 32
    server_ids = repro.string_ids(n, prefix="server")

    print(f"Renaming {n} servers with Balls-into-Leaves ...")
    run = repro.run_renaming("balls-into-leaves", server_ids, seed=2014)

    print(f"done in {run.rounds} communication rounds "
          f"({run.phases} phases of 2 rounds after the label announcement)")
    print()
    print("first few assignments:")
    for server, slot in sorted(run.names.items())[:6]:
        print(f"  {server} -> slot {slot}")
    print(f"  ... {len(run.names) - 6} more")

    # The output is a tight renaming: exactly the names 0..n-1, one each.
    assert sorted(run.names.values()) == list(range(n))
    print()
    print("verified: every server holds a distinct slot in 0..n-1")

    # Compare with the deterministic lower bound territory: a consensus-
    # style baseline needs n rounds with the same fault tolerance.
    flood = repro.run_renaming("flood", server_ids, seed=2014)
    print(f"flooding/consensus baseline took {flood.rounds} rounds "
          f"(t + 1 with t = n - 1) — that is the gap the paper closes")


if __name__ == "__main__":
    main()
