#!/usr/bin/env python3
"""Shard assignment under fire: servers crash mid-protocol, slots stay unique.

A storage cluster of 64 servers must each claim exactly one of 64 shards.
Mid-assignment, an adaptive adversary crashes servers *while they are
broadcasting*, delivering each dying message to only half the cluster —
the nastiest pattern the model allows.  Surviving servers still end up
with distinct shards, and the round count barely moves (Section 5.3).

Run:  python examples/shard_assignment.py
"""

from __future__ import annotations

import repro
from repro.adversary import RandomCrashAdversary, TargetedPriorityAdversary


def assignment_report(title: str, run: repro.RenamingRun) -> None:
    print(f"{title}:")
    print(f"  rounds: {run.rounds}, crashed servers: {run.failures}")
    shards = sorted(run.names.values())
    print(f"  surviving servers: {len(run.names)}, shards claimed: {len(set(shards))}")
    assert len(shards) == len(set(shards)), "duplicate shard claim!"
    print("  uniqueness: OK (no shard claimed twice)")
    print()


def main() -> None:
    n = 64
    servers = repro.string_ids(n, prefix="store")

    calm = repro.run_renaming("balls-into-leaves", servers, seed=7)
    assignment_report("calm cluster (no failures)", calm)

    storm = repro.run_renaming(
        "balls-into-leaves",
        servers,
        seed=7,
        adversary=RandomCrashAdversary(0.10, seed=7),
    )
    assignment_report("crash storm (10% of servers die per round)", storm)

    sniper = repro.run_renaming(
        "balls-into-leaves",
        servers,
        seed=7,
        adversary=TargetedPriorityAdversary(seed=7),
    )
    assignment_report("adaptive sniper (kills the priority ball mid-broadcast)", sniper)

    print("takeaway: the adversary costs crashed servers their shards, but")
    print("never costs the survivors uniqueness — and the round count stays")
    print(f"within a constant of the calm run ({calm.rounds} vs {storm.rounds} "
          f"vs {sniper.rounds}).")


if __name__ == "__main__":
    main()
