#!/usr/bin/env python3
"""Why classic load balancing does not solve this problem (Sections 1-2).

Three demonstrations on the same instance size:

1. single-choice and two-choice balls-into-bins leave collisions (max
   load > 1) — renaming needs one-to-one;
2. parallel retry *is* one-to-one and fast, but relies on every ball
   seeing consistent bin states;
3. lose a few "bin taken" announcements to crashes and the same scheme
   hands one bin to two balls — the uniqueness violation renaming forbids.
Balls-into-Leaves delivers the one-to-one guarantee under those crashes.

Run:  python examples/loadbalance_vs_renaming.py
"""

from __future__ import annotations

import random

import repro
from repro.adversary import RandomCrashAdversary
from repro.loadbalance import (
    crash_faulted_parallel_retry,
    parallel_retry,
    single_choice,
    two_choice,
)


def main() -> None:
    n = 1024
    rng = random.Random(99)

    print(f"-- classic balls-into-bins, n={n} balls into {n} bins --")
    single = single_choice(n, n, rng)
    double = two_choice(n, n, rng)
    print(f"single choice : max load {single.max_load}, empty bins {single.empty_bins}")
    print(f"two choices   : max load {double.max_load}, empty bins {double.empty_bins}")
    print("neither is one-to-one: some bins hold several balls\n")

    print("-- parallel retry with perfectly consistent views --")
    retry = parallel_retry(n, n, random.Random(99))
    print(f"one-to-one in {retry.rounds} rounds "
          f"(needs global knowledge of free bins)\n")

    print("-- the same idea when 'bin taken' announcements can be lost --")
    faulty = crash_faulted_parallel_retry(
        n, n, random.Random(99), announcement_loss_rate=0.2
    )
    print(f"duplicate bins: {len(faulty.duplicate_bins)} "
          f"(lost announcements: {faulty.crashed_announcements})")
    print("one bin, two owners: that is a renaming uniqueness violation\n")

    print("-- Balls-into-Leaves under real crash failures --")
    run = repro.run_renaming(
        "balls-into-leaves",
        repro.sparse_ids(n),
        seed=99,
        adversary=RandomCrashAdversary(0.05, seed=99),
    )
    names = list(run.names.values())
    print(f"rounds: {run.rounds}, crashed: {run.failures}, "
          f"duplicates: {len(names) - len(set(names))}")
    print("fault-tolerant, one-to-one, and still doubly-logarithmic")


if __name__ == "__main__":
    main()
