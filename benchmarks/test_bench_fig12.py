"""Regenerate EXP-F12 (Figures 1-2) and time the regeneration."""

from __future__ import annotations


def test_bench_fig12(run_and_report):
    result = run_and_report("EXP-F12")
    assert result.tables or result.plots
