"""Cheap-trace overhead: traced vs untraced batch wall-clock.

Times whole scenario-matrix cells through the batch API with
``trace="off"`` vs ``trace="cheap"`` and writes the measurements to
``BENCH_trace.json`` at the repository root (uploaded by the CI bench
job).  Two workloads:

* *stacked* — failure-free cells pinned to the vectorized kernel, where
  cheap traces are lazy views over the engine's persistent arrays (zero
  per-round cost; the per-event decode is pay-per-read and exercised
  outside the timed region, in the unperturbed-results assertions);
* *columnar* — the certified crash-adversary grid, where the columnar
  engine appends per-round deltas from its flat arrays inside the loop.

The acceptance bar on both is <= 20% overhead (the ISSUE's ceiling for
the cheap mode).  Traced results are asserted identical to untraced
ones inside the timing loop, so the benchmark doubles as a
tracing-does-not-perturb test.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.sim.batch import AdversarySpec, ScenarioMatrix, run_batch

SEED = 5
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_trace.json"
CEILING = 0.20

#: Stacked (vectorized) failure-free cells: (n, trials, reps).
STACKED_CELLS = ((256, 100, 3), (1024, 100, 2))

#: Crash-adversary cells for the columnar engine.
COLUMNAR_ADVERSARIES = (
    AdversarySpec.of("random", rate=0.1),
    AdversarySpec.of("targeted"),
)
COLUMNAR_N = 128
COLUMNAR_TRIALS = 20
COLUMNAR_REPS = 3


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _time_matrix(trace, reps, sizes, adversaries=("none",), **build):
    def run():
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves"],
            sizes,
            adversaries,
            trace=trace,
            base_seed=SEED,
            **build,
        )
        return run_batch(matrix, executor="serial")

    return _best_of(reps, run)


def _assert_unperturbed(off, cheap, kernel=None):
    if kernel is not None:
        assert {t.kernel for t in cheap.trials} == {kernel}
    assert all(t.trace is not None and len(t.trace) for t in cheap.trials)
    assert all(t.trace is None for t in off.trials)
    assert [t.names for t in cheap.trials] == [t.names for t in off.trials]
    assert [t.rounds for t in cheap.trials] == [t.rounds for t in off.trials]


# Wall-clock comparison: too flaky for the -x tier-1 gate (same policy
# as the other benches).  The bench CI job selects it with -m tier2.
@pytest.mark.tier2
def test_bench_trace_writes_json(capsys):
    from repro.sim.vectorized import vectorized_available

    cells = []

    # Warm caches (numpy import, topology/stream-bank setup) outside the
    # timed region so the first trace mode measured pays no setup tax.
    _time_matrix("off", 1, [64], trials=5, kernel="auto")
    if vectorized_available():
        _time_matrix("off", 1, [64], trials=5, kernel="vectorized")
        for n, trials, reps in STACKED_CELLS:
            off_s, off = _time_matrix(
                "off", reps, [n], trials=trials, kernel="vectorized"
            )
            cheap_s, cheap = _time_matrix(
                "cheap", reps, [n], trials=trials, kernel="vectorized"
            )
            _assert_unperturbed(off, cheap, kernel="vectorized")
            cells.append(
                {
                    "workload": "stacked",
                    "kernel": "vectorized",
                    "n": n,
                    "trials": trials,
                    "adversary": "none",
                    "reps": reps,
                    "off_s": round(off_s, 6),
                    "cheap_s": round(cheap_s, 6),
                    "overhead": round(cheap_s / off_s - 1.0, 4),
                    "ceiling": CEILING,
                }
            )

    off_s, off = _time_matrix(
        "off",
        COLUMNAR_REPS,
        [COLUMNAR_N],
        COLUMNAR_ADVERSARIES,
        trials=COLUMNAR_TRIALS,
        kernel="columnar",
    )
    cheap_s, cheap = _time_matrix(
        "cheap",
        COLUMNAR_REPS,
        [COLUMNAR_N],
        COLUMNAR_ADVERSARIES,
        trials=COLUMNAR_TRIALS,
        kernel="columnar",
    )
    _assert_unperturbed(off, cheap, kernel="columnar")
    cells.append(
        {
            "workload": "columnar",
            "kernel": "columnar",
            "n": COLUMNAR_N,
            "trials": COLUMNAR_TRIALS,
            "adversary": [spec.key for spec in COLUMNAR_ADVERSARIES],
            "reps": COLUMNAR_REPS,
            "off_s": round(off_s, 6),
            "cheap_s": round(cheap_s, 6),
            "overhead": round(cheap_s / off_s - 1.0, 4),
            "ceiling": CEILING,
        }
    )

    payload = {
        "benchmark": "trace",
        "workload": (
            "run_batch wall clock, trace='off' vs trace='cheap'; "
            "stacked = failure-free vectorized cells (lazy post-hoc "
            "trace decode from persistent arrays), columnar = "
            "crash-adversary grid with in-loop per-round delta appends"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "cells": cells,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        for cell in cells:
            print(
                f"{cell['workload']:>8} n={cell['n']:>5} "
                f"x{cell['trials']}: off {cell['off_s']:.3f}s  "
                f"cheap {cell['cheap_s']:.3f}s  "
                f"overhead {cell['overhead'] * 100:+.1f}% "
                f"(ceiling {cell['ceiling'] * 100:.0f}%)"
            )
        print(f"[written to {OUTPUT}]")

    for cell in cells:
        assert cell["overhead"] <= cell["ceiling"], cell
