"""Regenerate EXP-T3 (Theorem 3) and time the regeneration."""

from __future__ import annotations


def test_bench_t3(run_and_report):
    result = run_and_report("EXP-T3")
    assert result.tables or result.plots
