"""Regenerate EXP-NP2 (arbitrary n) and time the regeneration."""

from __future__ import annotations


def test_bench_nonpow2(run_and_report):
    result = run_and_report("EXP-NP2")
    assert result.tables
