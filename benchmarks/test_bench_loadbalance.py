"""Regenerate EXP-LB (Motivation) and time the regeneration."""

from __future__ import annotations


def test_bench_loadbalance(run_and_report):
    result = run_and_report("EXP-LB")
    assert result.tables or result.plots
