"""Regenerate EXP-ABL (design-choice ablations) and time the regeneration."""

from __future__ import annotations


def test_bench_ablations(run_and_report):
    result = run_and_report("EXP-ABL")
    assert result.tables
