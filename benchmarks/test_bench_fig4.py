"""Regenerate EXP-F4 (Figure 4) and time the regeneration."""

from __future__ import annotations


def test_bench_fig4(run_and_report):
    result = run_and_report("EXP-F4")
    assert result.tables or result.plots
