"""Regenerate EXP-L10 (Lemmas 9-10) and time the regeneration."""

from __future__ import annotations


def test_bench_l10(run_and_report):
    result = run_and_report("EXP-L10")
    assert result.tables or result.plots
