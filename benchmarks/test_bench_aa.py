"""Regenerate EXP-AA (approximate agreement) and time the regeneration."""

from __future__ import annotations


def test_bench_aa(run_and_report):
    result = run_and_report("EXP-AA")
    assert result.tables
