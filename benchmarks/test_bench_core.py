"""Micro-benchmarks of the core algorithm and substrate.

Not tied to a paper table; these track the cost of a full renaming run
(the unit every experiment repeats) and the shared-view speedup.
"""

from __future__ import annotations

import pytest

from repro.adversary.random_crash import RandomCrashAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming


@pytest.mark.parametrize("n", [64, 512, 2048])
def test_bench_bil_failure_free(benchmark, n):
    ids = sparse_ids(n)
    run = benchmark(lambda: run_renaming("balls-into-leaves", ids, seed=1))
    assert len(run.names) == n


def test_bench_bil_with_crashes(benchmark):
    ids = sparse_ids(512)

    def once():
        return run_renaming(
            "balls-into-leaves",
            ids,
            seed=2,
            adversary=RandomCrashAdversary(0.05, seed=2),
        )

    run = benchmark(once)
    assert len(set(run.names.values())) == len(run.names)


def test_bench_faithful_mode_small(benchmark):
    """Per-ball views: the paper-verbatim engine (O(n) trees per round)."""
    ids = sparse_ids(64)
    run = benchmark(
        lambda: run_renaming("balls-into-leaves", ids, seed=3, view_mode="faithful")
    )
    assert len(run.names) == 64


def test_bench_early_terminating(benchmark):
    ids = sparse_ids(2048)
    run = benchmark(lambda: run_renaming("early-terminating", ids, seed=4))
    assert run.rounds == 3
