"""Regenerate EXP-SEP (Separation) and time the regeneration."""

from __future__ import annotations


def test_bench_separation(run_and_report):
    result = run_and_report("EXP-SEP")
    assert result.tables or result.plots
