"""Regenerate EXP-ADV (Section 5.3) and time the regeneration."""

from __future__ import annotations


def test_bench_adversary(run_and_report):
    result = run_and_report("EXP-ADV")
    assert result.tables or result.plots
