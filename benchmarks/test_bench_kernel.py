"""Kernel wall-clock: reference engine vs columnar vs trial-stacked.

Times one failure-free Balls-into-Leaves trial per kernel at
n in {256, 4096, 65536}, a *crashing-adversary* workload
(random 10% crash rate, halt-on-name, the columnar crash engine's
home turf) at n in {256, 1024, 4096}, an *omission-adversary*
workload (targeted link silencing via the delivery-mask columns —
the certified fault family must keep the fast path, so the claim is
measured, not asserted) at n in {256, 1024}, a *trial-throughput*
workload — whole 100-trial failure-free cells through the batch API,
columnar per-trial vs one vectorized stack — a *crash trial-throughput*
workload (whole crash cells on the stacked crash engine vs per-trial
columnar), and an *RNG-share* microbenchmark (scalar vs batched SHA-256
seed derivation, scalar C vs vectorized MT seeding) — and writes the
measurements to ``BENCH_kernel.json`` at the repository root — the
perf-trajectory artifact the CI benchmark job uploads.

Trial-throughput cells measure what scenario-matrix sweeps actually
pay.  Two regimes matter and both are recorded: *early-terminating*
cells are deterministic failure-free (no draws), so stacking removes
nearly all interpreter cost (~5x on one core); *balls-into-leaves*
cells must reproduce every per-ball Mersenne-Twister stream bit for bit
(SHA-256 seed derivation + ``init_by_array`` + partial twists — a cost
the scalar kernels pay in C at near-identical efficiency), so their
serial ceiling is ~3.5x; ``REPRO_VEC_THREADS>1`` lifts the seeding and
twist share further on multi-core runners.  Crash trial cells are the
hunt/gauntlet regime: a schedule-compiled candidate and the sandwich
adversary stack 2-3x above the per-trial columnar path at sweep sizes,
while a heavy random workload (budget n-1, 20% rate) is bounded near
1x by per-class state copies — all three are recorded.  The assertion
floors are set conservatively below the locally measured numbers to
absorb CI-runner variance.

Two reference configurations are measured:

* ``reference`` — the lock-step engine as ``run_renaming`` runs it by
  default (shared equivalence-class view store, itself an earlier exact
  optimization);
* ``reference (faithful)`` — the same engine with the paper-verbatim
  per-ball view store, the executable specification.  It is
  O(n^2 * height) per run, so it is measured at n=256 always and at
  n=4096 only when ``BENCH_KERNEL_FULL=1`` (several minutes).

The columnar kernel's outputs are asserted identical to the reference
run inside the timing loop, so the benchmark cannot silently drift from
the differential contract.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.adversary.omission import TargetedOmissionAdversary
from repro.adversary.random_crash import RandomCrashAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming

SIZES = (256, 4096, 65536)
#: Best-of repetitions per cell, scaled down as trials get longer.
REPS = {256: 5, 4096: 3, 65536: 1}
#: Crashing-adversary cells (the columnar crash engine path).
CRASH_SIZES = (256, 1024, 4096)
CRASH_REPS = {256: 5, 1024: 3, 4096: 2}
CRASH_RATE = 0.10
#: Omission-adversary cells: the certified fault family must *keep* the
#: columnar fast path (the PR's claim), so it is measured like the crash
#: workload, not asserted.  Targeted silencing is the survivable shape
#: at these sizes (i.i.d. loss wedges past the round limit).
OMISSION_SIZES = (256, 1024)
OMISSION_REPS = {256: 5, 1024: 3}
OMISSION_COUNT = 8
OMISSION_WINDOW = (2, 5)
#: Largest n at which the faithful (spec) configuration is timed by
#: default; BENCH_KERNEL_FULL=1 extends it to 4096 (~minutes).
FAITHFUL_DEFAULT_MAX = 256

#: Trial-throughput workload: (algorithm, n, trials, best-of reps,
#: asserted speedup floor).  n=4096 joins under BENCH_KERNEL_FULL=1.
TRIAL_CELLS = (
    ("early-terminating", 1024, 100, 3, 2.5),
    ("balls-into-leaves", 256, 100, 3, 2.0),
    ("balls-into-leaves", 1024, 100, 2, 2.0),
)
TRIAL_CELLS_FULL = (("balls-into-leaves", 4096, 100, 2, 1.2),)

#: Crash trial-throughput workload: (adversary label, adversary spec or
#: None for the compiled hunt candidate, n, trials, reps, floor).  The
#: first two are the hunt/gauntlet regime the stacked crash engine
#: exists for; the random cell is the honest heavy-crash bound.
CRASH_TRIAL_CELLS = (
    ("schedule (hunt candidate)", None, 64, 256, 3, 2.0),
    ("sandwich", "sandwich", 64, 256, 3, 1.5),
    ("random:rate=0.2", "random:rate=0.2", 64, 256, 3, 0.8),
)

SEED = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _trial(n, kernel, view_mode="shared"):
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=SEED,
        kernel=kernel,
        view_mode=view_mode,
    )


def _crash_trial(n, kernel):
    # The adversary is stateful (crash counters, RNG): build a fresh,
    # identically-seeded instance per timed run.
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=SEED,
        adversary=RandomCrashAdversary(CRASH_RATE, seed=SEED),
        halt_on_name=True,
        kernel=kernel,
    )


def _omission_trial(n, kernel):
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=SEED,
        adversary=TargetedOmissionAdversary(
            count=OMISSION_COUNT, rounds=OMISSION_WINDOW
        ),
        check=False,  # silenced balls duplicate names; measured, not raised
        kernel=kernel,
    )


# Wall-clock comparison: too flaky for the -x tier-1 gate (same policy as
# test_bench_batch).  The bench-kernel CI job selects it with -m tier2.
@pytest.mark.tier2
def test_bench_kernel_writes_json(capsys):
    faithful_max = (
        4096 if os.environ.get("BENCH_KERNEL_FULL") == "1" else FAITHFUL_DEFAULT_MAX
    )
    cells = []
    for n in SIZES:
        reps = REPS[n]
        columnar_s, columnar_run = _best_of(reps, lambda: _trial(n, "columnar"))
        reference_s, reference_run = _best_of(reps, lambda: _trial(n, "reference"))
        assert columnar_run.kernel == "columnar"
        assert columnar_run.names == reference_run.names
        assert columnar_run.rounds == reference_run.rounds
        faithful_s = None
        if n <= faithful_max:
            faithful_s, faithful_run = _best_of(
                1, lambda: _trial(n, "reference", view_mode="faithful")
            )
            assert faithful_run.names == columnar_run.names
        cells.append(
            {
                "n": n,
                "algorithm": "balls-into-leaves",
                "adversary": "none",
                "seed": SEED,
                "reps": reps,
                "columnar_s": round(columnar_s, 6),
                "reference_s": round(reference_s, 6),
                "reference_faithful_s": (
                    round(faithful_s, 6) if faithful_s is not None else None
                ),
                "speedup_vs_reference": round(reference_s / columnar_s, 2),
                "speedup_vs_faithful": (
                    round(faithful_s / columnar_s, 2)
                    if faithful_s is not None
                    else None
                ),
            }
        )
    # Crashing-adversary workload: the columnar crash engine (receiver
    # equivalence classes + announced-termination lifecycle) against the
    # reference lock-step engine on the same spec.
    for n in CRASH_SIZES:
        reps = CRASH_REPS[n]
        columnar_s, columnar_run = _best_of(reps, lambda: _crash_trial(n, "columnar"))
        reference_s, reference_run = _best_of(reps, lambda: _crash_trial(n, "reference"))
        assert columnar_run.kernel == "columnar"
        assert columnar_run.names == reference_run.names
        assert columnar_run.rounds == reference_run.rounds
        assert columnar_run.crashed == reference_run.crashed
        cells.append(
            {
                "n": n,
                "algorithm": "balls-into-leaves",
                "adversary": f"random:rate={CRASH_RATE},halt_on_name",
                "seed": SEED,
                "reps": reps,
                "columnar_s": round(columnar_s, 6),
                "reference_s": round(reference_s, 6),
                "reference_faithful_s": None,
                "speedup_vs_reference": round(reference_s / columnar_s, 2),
                "speedup_vs_faithful": None,
            }
        )

    # Omission-adversary workload: the certified fault family on the
    # columnar fast path (delivery-mask columns) vs the reference engine.
    for n in OMISSION_SIZES:
        reps = OMISSION_REPS[n]
        columnar_s, columnar_run = _best_of(
            reps, lambda: _omission_trial(n, "columnar")
        )
        reference_s, reference_run = _best_of(
            reps, lambda: _omission_trial(n, "reference")
        )
        assert columnar_run.kernel == "columnar"
        assert columnar_run.names == reference_run.names
        assert columnar_run.rounds == reference_run.rounds
        assert (
            columnar_run.metrics.total_omissions
            == reference_run.metrics.total_omissions
            > 0
        )
        cells.append(
            {
                "n": n,
                "algorithm": "balls-into-leaves",
                "adversary": (
                    f"omission-targeted:count={OMISSION_COUNT},"
                    f"rounds={OMISSION_WINDOW[0]}-{OMISSION_WINDOW[1]}"
                ),
                "seed": SEED,
                "reps": reps,
                "columnar_s": round(columnar_s, 6),
                "reference_s": round(reference_s, 6),
                "reference_faithful_s": None,
                "speedup_vs_reference": round(reference_s / columnar_s, 2),
                "speedup_vs_faithful": None,
            }
        )

    # Trial-throughput workload: a whole 100-trial failure-free cell via
    # the batch API — columnar per-trial loop vs one vectorized stack.
    trial_cells = []
    from repro.sim.batch import ScenarioMatrix, run_batch
    from repro.sim.vectorized import vectorized_available

    cells_to_time = TRIAL_CELLS + (
        TRIAL_CELLS_FULL if os.environ.get("BENCH_KERNEL_FULL") == "1" else ()
    )
    if vectorized_available():
        for algorithm, n, trials, reps, floor in cells_to_time:
            def matrix(kernel):
                return ScenarioMatrix.build(
                    [algorithm], [n], trials=trials, base_seed=SEED, kernel=kernel
                )

            columnar_s, columnar_batch = _best_of(
                reps, lambda: run_batch(matrix("columnar"), executor="serial")
            )
            vectorized_s, vectorized_batch = _best_of(
                reps, lambda: run_batch(matrix("vectorized"), executor="serial")
            )
            assert {t.kernel for t in columnar_batch.trials} == {"columnar"}
            assert {t.kernel for t in vectorized_batch.trials} == {"vectorized"}
            # The stacked engine must agree bit for bit inside the
            # timing loop, same policy as the single-trial workloads.
            assert (
                vectorized_batch.cell_stats() == columnar_batch.cell_stats()
            )
            assert [t.names for t in vectorized_batch.trials] == [
                t.names for t in columnar_batch.trials
            ]
            trial_cells.append(
                {
                    "workload": "trial-throughput",
                    "algorithm": algorithm,
                    "n": n,
                    "trials": trials,
                    "adversary": "none",
                    "base_seed": SEED,
                    "reps": reps,
                    "columnar_s": round(columnar_s, 6),
                    "vectorized_s": round(vectorized_s, 6),
                    "speedup_vs_columnar": round(columnar_s / vectorized_s, 2),
                    "floor": floor,
                }
            )

    # Crash trial-throughput workload: whole crash cells, per-trial
    # columnar vs one stacked crash-engine pass.  The schedule cell is
    # a compiled hunt candidate (two silent crashes), i.e. exactly what
    # EXP-HUNT generations evaluate.
    crash_trial_cells = []
    if vectorized_available():
        from repro.search.schedule import CrashEvent, Schedule
        from repro.sim.batch import AdversarySpec, TrialSpec, run_trial

        for label, adversary, n, trials, reps, floor in CRASH_TRIAL_CELLS:
            if adversary is None:
                spec_adv = Schedule.of(
                    n, [CrashEvent(3, 6, ()), CrashEvent(5, 2, (0, 1))]
                ).spec()
            else:
                spec_adv = AdversarySpec.parse(adversary)

            def specs(kernel):
                return [
                    TrialSpec(
                        algorithm="balls-into-leaves", n=n, seed=SEED + t,
                        adversary=spec_adv, halt_on_name=True, check=False,
                        kernel=kernel, capture_errors=True,
                    )
                    for t in range(trials)
                ]

            columnar_s, columnar_batch = _best_of(
                reps, lambda: run_batch(specs("columnar"), executor="serial")
            )
            stacked_s, stacked_batch = _best_of(
                reps, lambda: run_batch(specs("auto"), executor="serial")
            )
            assert {t.kernel for t in columnar_batch.trials} == {"columnar"}
            assert {t.kernel for t in stacked_batch.trials} == {"vectorized"}
            # Bit-identity inside the timing loop, same policy as above.
            for want, got in zip(columnar_batch.trials, stacked_batch.trials):
                assert want.rounds == got.rounds
                assert want.names == got.names
                assert want.failures == got.failures
                assert want.messages_delivered == got.messages_delivered
                assert want.error == got.error
            crash_trial_cells.append(
                {
                    "workload": "crash-trial-throughput",
                    "algorithm": "balls-into-leaves",
                    "adversary": label,
                    "n": n,
                    "trials": trials,
                    "halt_on_name": True,
                    "base_seed": SEED,
                    "reps": reps,
                    "columnar_s": round(columnar_s, 6),
                    "vectorized_s": round(stacked_s, 6),
                    "speedup_vs_columnar": round(columnar_s / stacked_s, 2),
                    "floor": floor,
                }
            )

    # RNG-share microbenchmark: the bit-exact per-ball stream costs the
    # stacked kernel pays in NumPy vs what the scalar kernels pay in C.
    rng_share = []
    if vectorized_available():
        from random import Random

        import numpy as _np

        from repro.core.mt19937 import seed_states
        from repro.core.vectorized import derive_ball_seeds
        from repro.ids import sparse_ids as _sparse_ids
        from repro.sim.rng import derive_seed

        rng_n, rng_trials = 1024, 100
        labels = _sparse_ids(rng_n)
        trial_seeds = [
            derive_seed(SEED, "trial", t) for t in range(rng_trials)
        ]
        streams = rng_n * rng_trials

        def scalar_derive():
            return [
                derive_seed(seed, "ball", label)
                for seed in trial_seeds
                for label in labels
            ]

        scalar_sha_s, scalar_seeds = _best_of(2, scalar_derive)
        batched_sha_s, batched = _best_of(
            3, lambda: derive_ball_seeds(trial_seeds, labels)
        )
        assert [int(s) for s in batched] == scalar_seeds
        os.environ["REPRO_SHA256_LANES"] = "1"
        try:
            lanes_sha_s, lanes = _best_of(
                3, lambda: derive_ball_seeds(trial_seeds, labels)
            )
        finally:
            del os.environ["REPRO_SHA256_LANES"]
        assert _np.array_equal(lanes, batched)
        scalar_mt_s, _ = _best_of(
            2, lambda: [Random(seed) for seed in scalar_seeds]
        )
        seed_states(batched)  # warm the pooled state buffer
        vector_mt_s, _ = _best_of(3, lambda: seed_states(batched))
        rng_share = [
            {
                "workload": "rng-share",
                "streams": streams,
                "sha_scalar_per_ball_s": round(scalar_sha_s, 6),
                "sha_batched_openssl_s": round(batched_sha_s, 6),
                "sha_batched_lanes_s": round(lanes_sha_s, 6),
                "mt_seed_scalar_c_s": round(scalar_mt_s, 6),
                "mt_seed_vectorized_s": round(vector_mt_s, 6),
                "sha_batch_speedup": round(scalar_sha_s / batched_sha_s, 2),
                "mt_seed_ratio_vs_c": round(vector_mt_s / scalar_mt_s, 2),
            }
        ]

    payload = {
        "benchmark": "kernel",
        "workload": (
            "run_renaming, balls-into-leaves, best-of-reps wall clock; "
            "failure-free cells plus a crashing-adversary workload "
            "(random 10% crash rate, halt-on-name) and an omission-"
            "adversary workload (targeted link silencing, certified "
            "fault family) on the columnar "
            "crash engine; trial_cells = 100-trial failure-free cells "
            "via run_batch, columnar per-trial vs one vectorized stack; "
            "crash_trial_cells = whole crash cells on the stacked crash "
            "engine vs per-trial columnar; rng_share = scalar vs "
            "vectorized seed derivation and MT seeding"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "notes": (
            "reference = lock-step engine with the shared equivalence-class "
            "store (itself an exact optimization); reference_faithful = the "
            "paper-verbatim per-ball store (the executable spec, O(n^2*h): "
            "measured at small n by default, at 4096 with BENCH_KERNEL_FULL=1). "
            "trial_cells: deterministic (early-terminating) cells stack to "
            "~5-6x on one core; balls-into-leaves cells are bounded ~3.5x "
            "serial by bit-exact per-ball MT stream reproduction (SHA-256 "
            "derivation + init_by_array + twists, 65-77% of the stacked "
            "cell), which the scalar kernels pay in C at near-identical "
            "efficiency — REPRO_VEC_THREADS>1 lifts that share on "
            "multi-core runners. crash_trial_cells: schedule/sandwich "
            "cells (the hunt regime) stack 2-3x; heavy random crash "
            "cells are bounded near 1x by per-class state copies"
        ),
        "cells": cells,
        "trial_cells": trial_cells,
        "crash_trial_cells": crash_trial_cells,
        "rng_share": rng_share,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        for cell in cells:
            faithful = (
                f"  faithful {cell['reference_faithful_s']:.3f}s "
                f"({cell['speedup_vs_faithful']:.0f}x)"
                if cell["reference_faithful_s"] is not None
                else ""
            )
            print(
                f"n={cell['n']:>6}: columnar {cell['columnar_s']:.3f}s  "
                f"reference {cell['reference_s']:.3f}s "
                f"({cell['speedup_vs_reference']:.1f}x){faithful}"
            )
        for cell in trial_cells:
            print(
                f"{cell['algorithm']:>18} n={cell['n']:>5} x{cell['trials']}: "
                f"vectorized {cell['vectorized_s']:.3f}s  "
                f"columnar {cell['columnar_s']:.3f}s "
                f"({cell['speedup_vs_columnar']:.1f}x)"
            )
        for cell in crash_trial_cells:
            print(
                f"crash {cell['adversary']:>22} n={cell['n']:>4} "
                f"x{cell['trials']}: "
                f"stacked {cell['vectorized_s']:.3f}s  "
                f"columnar {cell['columnar_s']:.3f}s "
                f"({cell['speedup_vs_columnar']:.1f}x)"
            )
        for cell in rng_share:
            print(
                f"rng-share {cell['streams']} streams: "
                f"sha scalar {cell['sha_scalar_per_ball_s']:.3f}s  "
                f"batched {cell['sha_batched_openssl_s']:.3f}s  "
                f"lanes {cell['sha_batched_lanes_s']:.3f}s | "
                f"mt seed C {cell['mt_seed_scalar_c_s']:.3f}s  "
                f"vectorized {cell['mt_seed_vectorized_s']:.3f}s"
            )
        print(f"[written to {OUTPUT}]")

    # The fast path must actually be fast: comfortably ahead of the
    # default reference configuration everywhere, and an order of
    # magnitude ahead of the spec configuration wherever that is timed.
    # Crash cells pay for adversary planning and per-class copies, so
    # their bar is lower than the failure-free single-view path's.
    for cell in cells:
        floor = 1.5 if cell["adversary"] != "none" else 2.0
        assert cell["speedup_vs_reference"] > floor, cell
        if cell["speedup_vs_faithful"] is not None:
            assert cell["speedup_vs_faithful"] >= 10.0, cell
    for cell in trial_cells:
        assert cell["speedup_vs_columnar"] >= cell["floor"], cell
    for cell in crash_trial_cells:
        assert cell["speedup_vs_columnar"] >= cell["floor"], cell
    # The batched SHA derivation must comfortably beat the per-ball
    # Python loop; the MT ratio is recorded but unasserted (it compares
    # NumPy against CPython's C init_by_array, which varies by BLAS/CPU).
    for cell in rng_share:
        assert cell["sha_batch_speedup"] >= 2.0, cell
