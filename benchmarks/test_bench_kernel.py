"""Kernel wall-clock: reference engine vs columnar vs trial-stacked.

Times one failure-free Balls-into-Leaves trial per kernel at
n in {256, 4096, 65536}, a *crashing-adversary* workload
(random 10% crash rate, halt-on-name, the columnar crash engine's
home turf) at n in {256, 1024, 4096}, and a *trial-throughput*
workload — whole 100-trial failure-free cells through the batch API,
columnar per-trial vs one vectorized stack — and writes the
measurements to ``BENCH_kernel.json`` at the repository root — the
perf-trajectory artifact the CI benchmark job uploads.

Trial-throughput cells measure what scenario-matrix sweeps actually
pay.  Two regimes matter and both are recorded: *early-terminating*
cells are deterministic failure-free (no draws), so stacking removes
nearly all interpreter cost (~5-6x on one core); *balls-into-leaves*
cells must reproduce every per-ball Mersenne-Twister stream bit for bit
(~45% of the stacked cell's time is SHA-256 seed derivation + MT
seeding, a cost the scalar kernels pay in C), so their ceiling is
~2-2.5x serial.  The assertion floors are set conservatively below the
locally measured numbers to absorb CI-runner variance.

Two reference configurations are measured:

* ``reference`` — the lock-step engine as ``run_renaming`` runs it by
  default (shared equivalence-class view store, itself an earlier exact
  optimization);
* ``reference (faithful)`` — the same engine with the paper-verbatim
  per-ball view store, the executable specification.  It is
  O(n^2 * height) per run, so it is measured at n=256 always and at
  n=4096 only when ``BENCH_KERNEL_FULL=1`` (several minutes).

The columnar kernel's outputs are asserted identical to the reference
run inside the timing loop, so the benchmark cannot silently drift from
the differential contract.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.adversary.random_crash import RandomCrashAdversary
from repro.ids import sparse_ids
from repro.sim.runner import run_renaming

SIZES = (256, 4096, 65536)
#: Best-of repetitions per cell, scaled down as trials get longer.
REPS = {256: 5, 4096: 3, 65536: 1}
#: Crashing-adversary cells (the columnar crash engine path).
CRASH_SIZES = (256, 1024, 4096)
CRASH_REPS = {256: 5, 1024: 3, 4096: 2}
CRASH_RATE = 0.10
#: Largest n at which the faithful (spec) configuration is timed by
#: default; BENCH_KERNEL_FULL=1 extends it to 4096 (~minutes).
FAITHFUL_DEFAULT_MAX = 256

#: Trial-throughput workload: (algorithm, n, trials, best-of reps,
#: asserted speedup floor).  n=4096 joins under BENCH_KERNEL_FULL=1.
TRIAL_CELLS = (
    ("early-terminating", 1024, 100, 3, 2.5),
    ("balls-into-leaves", 256, 100, 3, 1.2),
    ("balls-into-leaves", 1024, 100, 2, 1.2),
)
TRIAL_CELLS_FULL = (("balls-into-leaves", 4096, 100, 2, 1.2),)

SEED = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _trial(n, kernel, view_mode="shared"):
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=SEED,
        kernel=kernel,
        view_mode=view_mode,
    )


def _crash_trial(n, kernel):
    # The adversary is stateful (crash counters, RNG): build a fresh,
    # identically-seeded instance per timed run.
    return run_renaming(
        "balls-into-leaves",
        sparse_ids(n),
        seed=SEED,
        adversary=RandomCrashAdversary(CRASH_RATE, seed=SEED),
        halt_on_name=True,
        kernel=kernel,
    )


# Wall-clock comparison: too flaky for the -x tier-1 gate (same policy as
# test_bench_batch).  The bench-kernel CI job selects it with -m tier2.
@pytest.mark.tier2
def test_bench_kernel_writes_json(capsys):
    faithful_max = (
        4096 if os.environ.get("BENCH_KERNEL_FULL") == "1" else FAITHFUL_DEFAULT_MAX
    )
    cells = []
    for n in SIZES:
        reps = REPS[n]
        columnar_s, columnar_run = _best_of(reps, lambda: _trial(n, "columnar"))
        reference_s, reference_run = _best_of(reps, lambda: _trial(n, "reference"))
        assert columnar_run.kernel == "columnar"
        assert columnar_run.names == reference_run.names
        assert columnar_run.rounds == reference_run.rounds
        faithful_s = None
        if n <= faithful_max:
            faithful_s, faithful_run = _best_of(
                1, lambda: _trial(n, "reference", view_mode="faithful")
            )
            assert faithful_run.names == columnar_run.names
        cells.append(
            {
                "n": n,
                "algorithm": "balls-into-leaves",
                "adversary": "none",
                "seed": SEED,
                "reps": reps,
                "columnar_s": round(columnar_s, 6),
                "reference_s": round(reference_s, 6),
                "reference_faithful_s": (
                    round(faithful_s, 6) if faithful_s is not None else None
                ),
                "speedup_vs_reference": round(reference_s / columnar_s, 2),
                "speedup_vs_faithful": (
                    round(faithful_s / columnar_s, 2)
                    if faithful_s is not None
                    else None
                ),
            }
        )
    # Crashing-adversary workload: the columnar crash engine (receiver
    # equivalence classes + announced-termination lifecycle) against the
    # reference lock-step engine on the same spec.
    for n in CRASH_SIZES:
        reps = CRASH_REPS[n]
        columnar_s, columnar_run = _best_of(reps, lambda: _crash_trial(n, "columnar"))
        reference_s, reference_run = _best_of(reps, lambda: _crash_trial(n, "reference"))
        assert columnar_run.kernel == "columnar"
        assert columnar_run.names == reference_run.names
        assert columnar_run.rounds == reference_run.rounds
        assert columnar_run.crashed == reference_run.crashed
        cells.append(
            {
                "n": n,
                "algorithm": "balls-into-leaves",
                "adversary": f"random:rate={CRASH_RATE},halt_on_name",
                "seed": SEED,
                "reps": reps,
                "columnar_s": round(columnar_s, 6),
                "reference_s": round(reference_s, 6),
                "reference_faithful_s": None,
                "speedup_vs_reference": round(reference_s / columnar_s, 2),
                "speedup_vs_faithful": None,
            }
        )

    # Trial-throughput workload: a whole 100-trial failure-free cell via
    # the batch API — columnar per-trial loop vs one vectorized stack.
    trial_cells = []
    from repro.sim.batch import ScenarioMatrix, run_batch
    from repro.sim.vectorized import vectorized_available

    cells_to_time = TRIAL_CELLS + (
        TRIAL_CELLS_FULL if os.environ.get("BENCH_KERNEL_FULL") == "1" else ()
    )
    if vectorized_available():
        for algorithm, n, trials, reps, floor in cells_to_time:
            def matrix(kernel):
                return ScenarioMatrix.build(
                    [algorithm], [n], trials=trials, base_seed=SEED, kernel=kernel
                )

            columnar_s, columnar_batch = _best_of(
                reps, lambda: run_batch(matrix("columnar"), executor="serial")
            )
            vectorized_s, vectorized_batch = _best_of(
                reps, lambda: run_batch(matrix("vectorized"), executor="serial")
            )
            assert {t.kernel for t in columnar_batch.trials} == {"columnar"}
            assert {t.kernel for t in vectorized_batch.trials} == {"vectorized"}
            # The stacked engine must agree bit for bit inside the
            # timing loop, same policy as the single-trial workloads.
            assert (
                vectorized_batch.cell_stats() == columnar_batch.cell_stats()
            )
            assert [t.names for t in vectorized_batch.trials] == [
                t.names for t in columnar_batch.trials
            ]
            trial_cells.append(
                {
                    "workload": "trial-throughput",
                    "algorithm": algorithm,
                    "n": n,
                    "trials": trials,
                    "adversary": "none",
                    "base_seed": SEED,
                    "reps": reps,
                    "columnar_s": round(columnar_s, 6),
                    "vectorized_s": round(vectorized_s, 6),
                    "speedup_vs_columnar": round(columnar_s / vectorized_s, 2),
                    "floor": floor,
                }
            )

    payload = {
        "benchmark": "kernel",
        "workload": (
            "run_renaming, balls-into-leaves, best-of-reps wall clock; "
            "failure-free cells plus a crashing-adversary workload "
            "(random 10% crash rate, halt-on-name) on the columnar "
            "crash engine; trial_cells = 100-trial failure-free cells "
            "via run_batch, columnar per-trial vs one vectorized stack"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "notes": (
            "reference = lock-step engine with the shared equivalence-class "
            "store (itself an exact optimization); reference_faithful = the "
            "paper-verbatim per-ball store (the executable spec, O(n^2*h): "
            "measured at small n by default, at 4096 with BENCH_KERNEL_FULL=1). "
            "trial_cells: deterministic (early-terminating) cells stack to "
            "~5-6x on one core; balls-into-leaves cells are bounded ~2-2.5x "
            "serial by bit-exact per-ball MT stream reproduction (SHA-256 "
            "derivation + init_by_array), which the scalar kernels pay in C"
        ),
        "cells": cells,
        "trial_cells": trial_cells,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        for cell in cells:
            faithful = (
                f"  faithful {cell['reference_faithful_s']:.3f}s "
                f"({cell['speedup_vs_faithful']:.0f}x)"
                if cell["reference_faithful_s"] is not None
                else ""
            )
            print(
                f"n={cell['n']:>6}: columnar {cell['columnar_s']:.3f}s  "
                f"reference {cell['reference_s']:.3f}s "
                f"({cell['speedup_vs_reference']:.1f}x){faithful}"
            )
        for cell in trial_cells:
            print(
                f"{cell['algorithm']:>18} n={cell['n']:>5} x{cell['trials']}: "
                f"vectorized {cell['vectorized_s']:.3f}s  "
                f"columnar {cell['columnar_s']:.3f}s "
                f"({cell['speedup_vs_columnar']:.1f}x)"
            )
        print(f"[written to {OUTPUT}]")

    # The fast path must actually be fast: comfortably ahead of the
    # default reference configuration everywhere, and an order of
    # magnitude ahead of the spec configuration wherever that is timed.
    # Crash cells pay for adversary planning and per-class copies, so
    # their bar is lower than the failure-free single-view path's.
    for cell in cells:
        floor = 1.5 if cell["adversary"] != "none" else 2.0
        assert cell["speedup_vs_reference"] > floor, cell
        if cell["speedup_vs_faithful"] is not None:
            assert cell["speedup_vs_faithful"] >= 10.0, cell
    for cell in trial_cells:
        assert cell["speedup_vs_columnar"] >= cell["floor"], cell
