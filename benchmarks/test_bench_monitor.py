"""Monitor overhead: monitored vs unmonitored batch wall-clock.

Times whole scenario-matrix cells through the batch API with
``monitor="off"`` vs ``monitor="cheap"`` and writes the measurements to
``BENCH_monitor.json`` at the repository root (uploaded by the CI bench
job).  Two workloads:

* *stacked* — failure-free cells pinned to the vectorized kernel, where
  the :class:`~repro.monitor.invariants.StackedMonitor` screens are a
  handful of O(T·n) ufunc passes per round against the engine's own
  dozens; the acceptance bar is <= 15% overhead, and in practice the
  screens disappear into the seed-derivation noise floor;
* *gauntlet* — the full certified-adversary grid (random, targeted,
  sandwich, half-split) on the columnar crash engine, where the scalar
  per-round predicates run in pure Python; the bar is looser (35%)
  because every distinct receiver-class view is audited per round.

Monitored results are asserted identical to unmonitored ones inside the
timing loop, so the benchmark doubles as a monitors-do-not-perturb test.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.sim.batch import AdversarySpec, ScenarioMatrix, run_batch

SEED = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_monitor.json"

#: Stacked (vectorized) failure-free cells: (n, trials, reps, ceiling).
STACKED_CELLS = ((256, 100, 3, 0.15), (1024, 100, 2, 0.15))

#: The adversary gauntlet for the columnar crash engine.
GAUNTLET_ADVERSARIES = (
    AdversarySpec.of("random", rate=0.1),
    AdversarySpec.of("targeted"),
    AdversarySpec.of("sandwich"),
    AdversarySpec.of("half-split"),
)
GAUNTLET_N = 128
GAUNTLET_TRIALS = 20
GAUNTLET_REPS = 3
GAUNTLET_CEILING = 0.35


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _time_matrix(monitor, reps, sizes, adversaries=("none",), **build):
    def run():
        matrix = ScenarioMatrix.build(
            ["balls-into-leaves"],
            sizes,
            adversaries,
            monitor=monitor,
            base_seed=SEED,
            **build,
        )
        return run_batch(matrix, executor="serial")

    return _best_of(reps, run)


# Wall-clock comparison: too flaky for the -x tier-1 gate (same policy
# as the other benches).  The bench CI job selects it with -m tier2.
@pytest.mark.tier2
def test_bench_monitor_writes_json(capsys):
    from repro.sim.vectorized import vectorized_available

    cells = []

    # Warm caches (numpy import, topology/stream-bank setup) outside the
    # timed region so the first monitor mode measured pays no setup tax.
    _time_matrix("off", 1, [64], trials=5, kernel="auto")
    if vectorized_available():
        _time_matrix("off", 1, [64], trials=5, kernel="vectorized")
        for n, trials, reps, ceiling in STACKED_CELLS:
            off_s, off = _time_matrix(
                "off", reps, [n], trials=trials, kernel="vectorized"
            )
            cheap_s, cheap = _time_matrix(
                "cheap", reps, [n], trials=trials, kernel="vectorized"
            )
            assert {t.kernel for t in cheap.trials} == {"vectorized"}
            assert {t.monitor for t in cheap.trials} == {"cheap"}
            assert all(t.violations == () for t in cheap.trials)
            assert [t.names for t in cheap.trials] == [
                t.names for t in off.trials
            ]
            cells.append(
                {
                    "workload": "stacked",
                    "kernel": "vectorized",
                    "n": n,
                    "trials": trials,
                    "adversary": "none",
                    "reps": reps,
                    "off_s": round(off_s, 6),
                    "cheap_s": round(cheap_s, 6),
                    "overhead": round(cheap_s / off_s - 1.0, 4),
                    "ceiling": ceiling,
                }
            )

    off_s, off = _time_matrix(
        "off",
        GAUNTLET_REPS,
        [GAUNTLET_N],
        GAUNTLET_ADVERSARIES,
        trials=GAUNTLET_TRIALS,
        kernel="auto",
    )
    cheap_s, cheap = _time_matrix(
        "cheap",
        GAUNTLET_REPS,
        [GAUNTLET_N],
        GAUNTLET_ADVERSARIES,
        trials=GAUNTLET_TRIALS,
        kernel="auto",
    )
    assert {t.monitor for t in cheap.trials} == {"cheap"}
    assert all(t.violations == () for t in cheap.trials)
    assert [t.names for t in cheap.trials] == [t.names for t in off.trials]
    cells.append(
        {
            "workload": "gauntlet",
            "kernel": sorted({t.kernel for t in cheap.trials}),
            "n": GAUNTLET_N,
            "trials": GAUNTLET_TRIALS,
            "adversary": [spec.key for spec in GAUNTLET_ADVERSARIES],
            "reps": GAUNTLET_REPS,
            "off_s": round(off_s, 6),
            "cheap_s": round(cheap_s, 6),
            "overhead": round(cheap_s / off_s - 1.0, 4),
            "ceiling": GAUNTLET_CEILING,
        }
    )

    payload = {
        "benchmark": "monitor",
        "workload": (
            "run_batch wall clock, monitor='off' vs monitor='cheap'; "
            "stacked = failure-free vectorized cells (StackedMonitor "
            "ufunc screens), gauntlet = certified-adversary grid on the "
            "columnar crash engine (scalar per-round predicates)"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "cells": cells,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        for cell in cells:
            print(
                f"{cell['workload']:>8} n={cell['n']:>5} "
                f"x{cell['trials']}: off {cell['off_s']:.3f}s  "
                f"cheap {cell['cheap_s']:.3f}s  "
                f"overhead {cell['overhead'] * 100:+.1f}% "
                f"(ceiling {cell['ceiling'] * 100:.0f}%)"
            )
        print(f"[written to {OUTPUT}]")

    for cell in cells:
        assert cell["overhead"] <= cell["ceiling"], cell
