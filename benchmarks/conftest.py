"""Benchmark harness helpers.

Each ``test_bench_*`` file regenerates one experiment's tables/figures
(at smoke scale, so the whole harness runs in minutes) and times it with
pytest-benchmark.  The printed report is the reproduction artifact; the
timing shows the cost of regenerating it.  Paper-scale sweeps are run
via ``python -m repro run <EXP-ID> --scale paper`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture
def run_and_report(benchmark, capsys):
    """Benchmark one experiment once and print its report."""

    def _run(experiment_id: str, scale: str = "smoke", seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            iterations=1,
            rounds=1,
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _run
