"""Regenerate EXP-MSG (message complexity) and time the regeneration."""

from __future__ import annotations


def test_bench_messages(run_and_report):
    result = run_and_report("EXP-MSG")
    assert result.tables
