"""Regenerate EXP-DET (Lemma 11) and time the regeneration."""

from __future__ import annotations


def test_bench_det(run_and_report):
    result = run_and_report("EXP-DET")
    assert result.tables or result.plots
