"""Regenerate EXP-T2 (Theorem 2) and time the regeneration."""

from __future__ import annotations


def test_bench_t2(run_and_report):
    result = run_and_report("EXP-T2")
    assert result.tables or result.plots
