"""Regenerate EXP-T4 (Theorem 4) and time the regeneration."""

from __future__ import annotations


def test_bench_t4(run_and_report):
    result = run_and_report("EXP-T4")
    assert result.tables or result.plots
