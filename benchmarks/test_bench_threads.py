"""Threads scaling curve: the seeding/twist fanout vs wall-clock.

Sweeps ``--threads`` (via :func:`repro.config.set_vec_threads`) over a
seeding-heavy vectorized cell and writes the measured curve to
``BENCH_threads.json`` at the repository root (uploaded by the CI
tier-2 job).  The fanout parallelizes the GIL-released MT19937 seeding
and twist passes only, so the curve records where that wall-clock
lever stops paying on the runner's cores.

Results are asserted byte-identical across every thread count inside
the timing loop — the thread-invariance contract (threads are
wall-clock hygiene, never a result knob) is re-proven by the benchmark
itself.  No scaling floor is asserted: shared CI runners make speedup
numbers an artifact to plot, not a gate.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.config import set_vec_threads
from repro.sim.batch import ScenarioMatrix, run_batch

SEED = 7
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_threads.json"
THREAD_COUNTS = (1, 2, 4)
N = 2048
TRIALS = 30
REPS = 2


def _best_of(reps, fn):
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _run_cell():
    matrix = ScenarioMatrix.build(
        ["balls-into-leaves"],
        [N],
        ("none",),
        trials=TRIALS,
        base_seed=SEED,
        kernel="vectorized",
    )
    return run_batch(matrix, executor="serial")


# Wall-clock sweep: too flaky for the -x tier-1 gate (same policy as
# the other benches).  The CI tier-2 job selects it with -m tier2.
@pytest.mark.tier2
def test_bench_threads_writes_json(capsys):
    from repro.sim.vectorized import vectorized_available

    if not vectorized_available():
        pytest.skip("threads fan out the vectorized kernel only")

    previous = os.environ.get("REPRO_VEC_THREADS")
    points = []
    baseline_names = None
    try:
        set_vec_threads(1)
        _run_cell()  # warm caches outside every timed region
        for threads in THREAD_COUNTS:
            set_vec_threads(threads)
            elapsed, batch = _best_of(REPS, _run_cell)
            names = [t.names for t in batch.trials]
            if baseline_names is None:
                baseline_names = names
            else:
                # Thread-invariance: the fanout may only move wall-clock.
                assert names == baseline_names
            points.append(
                {
                    "threads": threads,
                    "seconds": round(elapsed, 6),
                    "speedup": round(points[0]["seconds"] / elapsed, 4)
                    if points
                    else 1.0,
                }
            )
    finally:
        if previous is None:
            os.environ.pop("REPRO_VEC_THREADS", None)
        else:
            os.environ["REPRO_VEC_THREADS"] = previous

    payload = {
        "benchmark": "threads",
        "workload": (
            f"run_batch wall clock, vectorized failure-free cell "
            f"n={N} x{TRIALS} trials, REPRO_VEC_THREADS swept over "
            f"{list(THREAD_COUNTS)} (seeding/twist fanout only)"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "points": points,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        for point in points:
            print(
                f"threads={point['threads']}: {point['seconds']:.3f}s "
                f"(speedup x{point['speedup']:.2f})"
            )
        print(f"[written to {OUTPUT}]")
