"""Regenerate EXP-L6 (Lemma 6) and time the regeneration."""

from __future__ import annotations


def test_bench_l6(run_and_report):
    result = run_and_report("EXP-L6")
    assert result.tables or result.plots
