"""Search throughput: schedules evaluated per second, per strategy.

Times each search strategy spending a fixed trial budget on the
``balls-into-leaves n=32`` cell (every compiled schedule runs on the
columnar crash engine), serial vs the process executor, and writes
``BENCH_search.json`` at the repository root — the artifact the CI
benchmark job uploads next to ``BENCH_kernel.json``.

Throughput here is dominated by trial wall-clock, so the interesting
ratios are (a) strategy overhead above raw trial cost (genotype ops are
supposed to be noise) and (b) how well generation-sized batches feed the
worker pool.  The determinism contract is asserted inside the timing
loop: both executors must produce byte-identical evaluation histories.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.search.strategies import STRATEGIES, HuntConfig, run_hunt

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_search.json"

N = 32
BUDGET = 150
WORKERS = min(4, os.cpu_count() or 1)


def _config(seed: int = 1) -> HuntConfig:
    return HuntConfig(n=N, objective="rounds", budget=BUDGET, seed=seed)


def _timed_hunt(strategy: str, **kwargs):
    started = time.perf_counter()
    result = run_hunt(_config(), strategy, **kwargs)
    elapsed = time.perf_counter() - started
    return result, elapsed


# One artifact-writing pass, nightly/bench-job scoped like bench-kernel.
@pytest.mark.tier2
def test_bench_search_writes_artifact():
    cells = []
    for strategy in sorted(STRATEGIES):
        serial, serial_s = _timed_hunt(strategy)
        process, process_s = _timed_hunt(
            strategy, executor="process", workers=WORKERS
        )
        assert json.dumps(serial.rows()) == json.dumps(process.rows()), (
            f"{strategy}: executor changed the evaluation history"
        )
        cells.append(
            {
                "strategy": strategy,
                "n": N,
                "budget": BUDGET,
                "best_score": serial.best.score,
                "serial_s": round(serial_s, 4),
                "serial_schedules_per_s": round(BUDGET / serial_s, 2),
                f"process{WORKERS}_s": round(process_s, 4),
                f"process{WORKERS}_schedules_per_s": round(
                    BUDGET / process_s, 2
                ),
            }
        )
        assert BUDGET / serial_s > 5, (
            f"{strategy}: below 5 schedules/s serially — strategy overhead "
            "is no longer noise next to trial cost"
        )
    payload = {
        "version": __version__,
        "workload": f"balls-into-leaves n={N}, {BUDGET}-trial hunts, "
        "rounds objective",
        "workers": WORKERS,
        "cells": cells,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_hunt_smoke_for_tier1(benchmark):
    """Tier-1 guard: a tiny hunt stays interactive (and correct)."""
    result = benchmark.pedantic(
        run_hunt,
        args=(HuntConfig(n=8, objective="rounds", budget=10, seed=1), "random"),
        iterations=1,
        rounds=3,
    )
    assert len(result.evaluations) == 10
