"""Search throughput: schedules evaluated per second, per strategy.

Times each search strategy spending a fixed trial budget on the
``balls-into-leaves n=32`` cell (every compiled schedule runs on the
columnar crash engine), serial vs the process executor, and writes
``BENCH_search.json`` at the repository root — the artifact the CI
benchmark job uploads next to ``BENCH_kernel.json``.

Throughput here is dominated by trial wall-clock, so the interesting
ratios are (a) strategy overhead above raw trial cost (genotype ops are
supposed to be noise), (b) how well generation-sized batches feed the
worker pool, and (c) the *stacked multiplier*: every built-in strategy
emits same-cell generations, so the evaluator can stack a whole
generation onto the vectorized crash engine as one pass.  The stacked
and forced-per-trial variants are timed explicitly by pinning
``REPRO_VEC_CRASH_MIN_STREAMS`` to 0 and to an unreachable floor; the
default run sits between them (small generations stay per-trial, big
ones stack).  The determinism contract is asserted inside the timing
loop: every executor and stacking mode must produce byte-identical
evaluation histories.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.search.strategies import STRATEGIES, HuntConfig, run_hunt

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_search.json"

N = 32
BUDGET = 150
WORKERS = min(4, os.cpu_count() or 1)
#: The large hunt cell: generations clear the 1024-stream crash floor,
#: so the stacked crash engine carries whole generations.  Hillclimb is
#: deliberately absent — its few-neighbor generations are faster
#: per-trial at any n measured, which is exactly what the floor encodes.
BIG_N = 128
BIG_STRATEGIES = ("evolve", "random")


def _config(seed: int = 1, n: int = N) -> HuntConfig:
    return HuntConfig(n=n, objective="rounds", budget=BUDGET, seed=seed)


def _timed_hunt(strategy: str, *, n: int = N, min_streams=None, **kwargs):
    saved = os.environ.get("REPRO_VEC_CRASH_MIN_STREAMS")
    if min_streams is not None:
        os.environ["REPRO_VEC_CRASH_MIN_STREAMS"] = str(min_streams)
    try:
        started = time.perf_counter()
        result = run_hunt(_config(n=n), strategy, **kwargs)
        elapsed = time.perf_counter() - started
    finally:
        if min_streams is not None:
            if saved is None:
                del os.environ["REPRO_VEC_CRASH_MIN_STREAMS"]
            else:
                os.environ["REPRO_VEC_CRASH_MIN_STREAMS"] = saved
    return result, elapsed


# One artifact-writing pass, nightly/bench-job scoped like bench-kernel.
@pytest.mark.tier2
def test_bench_search_writes_artifact():
    cells = []
    for strategy in sorted(STRATEGIES):
        serial, serial_s = _timed_hunt(strategy)
        process, process_s = _timed_hunt(
            strategy, executor="process", workers=WORKERS
        )
        # The stacked multiplier: whole generations on the vectorized
        # crash engine (floor 0) vs forced per-trial columnar (floor
        # out of reach) — byte-identical histories either way.
        per_trial, per_trial_s = _timed_hunt(strategy, min_streams=10**9)
        stacked, stacked_s = _timed_hunt(strategy, min_streams=0)
        assert json.dumps(serial.rows()) == json.dumps(process.rows()), (
            f"{strategy}: executor changed the evaluation history"
        )
        assert json.dumps(per_trial.rows()) == json.dumps(stacked.rows()), (
            f"{strategy}: generation stacking changed the evaluation history"
        )
        assert json.dumps(serial.rows()) == json.dumps(stacked.rows()), (
            f"{strategy}: the crash-stream floor changed the evaluation "
            "history"
        )
        cells.append(
            {
                "strategy": strategy,
                "n": N,
                "budget": BUDGET,
                "best_score": serial.best.score,
                "serial_s": round(serial_s, 4),
                "serial_schedules_per_s": round(BUDGET / serial_s, 2),
                f"process{WORKERS}_s": round(process_s, 4),
                f"process{WORKERS}_schedules_per_s": round(
                    BUDGET / process_s, 2
                ),
                "per_trial_s": round(per_trial_s, 4),
                "stacked_s": round(stacked_s, 4),
                "stacked_schedules_per_s": round(BUDGET / stacked_s, 2),
                "stacked_multiplier": round(per_trial_s / stacked_s, 2),
            }
        )
        assert BUDGET / serial_s > 5, (
            f"{strategy}: below 5 schedules/s serially — strategy overhead "
            "is no longer noise next to trial cost"
        )
    # The large hunt cell: stacking engages by default (generations
    # clear the stream floor), so this is the regime the stacked crash
    # engine was built for.  Best-of-2 because each hunt is ~1s.
    big_cells = []
    for strategy in BIG_STRATEGIES:
        per_trial_s = stacked_s = None
        per_trial = stacked = None
        for _ in range(2):
            result, elapsed = _timed_hunt(strategy, n=BIG_N, min_streams=10**9)
            if per_trial_s is None or elapsed < per_trial_s:
                per_trial_s, per_trial = elapsed, result
            result, elapsed = _timed_hunt(strategy, n=BIG_N, min_streams=0)
            if stacked_s is None or elapsed < stacked_s:
                stacked_s, stacked = elapsed, result
        assert json.dumps(per_trial.rows()) == json.dumps(stacked.rows()), (
            f"{strategy} n={BIG_N}: generation stacking changed the "
            "evaluation history"
        )
        big_cells.append(
            {
                "strategy": strategy,
                "n": BIG_N,
                "budget": BUDGET,
                "best_score": stacked.best.score,
                "per_trial_s": round(per_trial_s, 4),
                "stacked_s": round(stacked_s, 4),
                "stacked_schedules_per_s": round(BUDGET / stacked_s, 2),
                "stacked_multiplier": round(per_trial_s / stacked_s, 2),
            }
        )

    payload = {
        "version": __version__,
        "workload": f"balls-into-leaves n={N}, {BUDGET}-trial hunts, "
        "rounds objective",
        "workers": WORKERS,
        "notes": (
            "stacked_multiplier = forced per-trial columnar vs whole "
            "generations stacked on the vectorized crash engine "
            "(REPRO_VEC_CRASH_MIN_STREAMS pinned to 10**9 vs 0); the "
            "default serial run sits between them — generations below "
            "the 1024-stream floor stay per-trial because small cells "
            "are faster that way.  Histories are asserted byte-identical "
            "across every executor and stacking mode."
        ),
        "cells": cells,
        "big_cells": big_cells,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    # At the large cell the stacked crash engine must not lose to the
    # per-trial path (locally ~1.3x; the floor is noise-conservative).
    for cell in big_cells:
        assert cell["stacked_multiplier"] >= 1.0, cell


def test_hunt_smoke_for_tier1(benchmark):
    """Tier-1 guard: a tiny hunt stays interactive (and correct)."""
    result = benchmark.pedantic(
        run_hunt,
        args=(HuntConfig(n=8, objective="rounds", budget=10, seed=1), "random"),
        iterations=1,
        rounds=3,
    )
    assert len(result.evaluations) == 10
